"""Benchmarks: regenerate each paper figure and the ablations."""

from __future__ import annotations

import pytest

from repro.experiments import ablations, figure3, figure6, figure7


@pytest.mark.benchmark(group="figures")
def test_bench_figure3(benchmark, ctx):
    result = benchmark(figure3.run, ctx)
    assert result.rows


@pytest.mark.benchmark(group="figures")
def test_bench_figure6(benchmark, ctx):
    result = benchmark(figure6.run, ctx)
    assert result.rows


@pytest.mark.benchmark(group="figures")
def test_bench_figure7(benchmark, ctx):
    result = benchmark(figure7.run, ctx)
    assert result.rows


@pytest.mark.benchmark(group="figures")
def test_bench_ablations(benchmark, ctx):
    result = benchmark(ablations.run, ctx)
    assert result.rows
