"""Benchmark fixtures: a shared tiny experiment context.

The per-table benchmarks time the *experiment regeneration path* at tiny
scale (pytest-benchmark needs repeatable sub-minute runs); the printed
EXPERIMENTS.md evidence is produced separately at the default scale via
``python -m repro.experiments.report``.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    context = ExperimentContext.tiny()
    # Pre-build the heavyweight shared artifacts so benchmarks time the
    # experiment logic, not one-off corpus construction.
    for name in ("bird", "spider"):
        context.pipeline(name)
        context.surrogate(name)
    return context
