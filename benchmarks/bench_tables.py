"""Benchmarks: regenerate each paper table (tiny scale).

Run: ``pytest benchmarks/ --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)


@pytest.mark.benchmark(group="tables")
def test_bench_table1(benchmark, ctx):
    result = benchmark(table1.run, ctx)
    assert result.rows


@pytest.mark.benchmark(group="tables")
def test_bench_table2(benchmark, ctx):
    result = benchmark(table2.run, ctx)
    assert result.rows


@pytest.mark.benchmark(group="tables")
def test_bench_table3(benchmark, ctx):
    result = benchmark(table3.run, ctx)
    assert result.rows


@pytest.mark.benchmark(group="tables")
def test_bench_table4(benchmark, ctx):
    result = benchmark(table4.run, ctx)
    assert result.rows


@pytest.mark.benchmark(group="tables")
def test_bench_table5(benchmark, ctx):
    result = benchmark(table5.run, ctx)
    assert result.rows


@pytest.mark.benchmark(group="tables")
def test_bench_table6(benchmark, ctx):
    result = benchmark(table6.run, ctx)
    assert result.rows


@pytest.mark.benchmark(group="tables")
def test_bench_table7(benchmark, ctx):
    result = benchmark(table7.run, ctx)
    assert result.rows


@pytest.mark.benchmark(group="tables")
def test_bench_table8(benchmark, ctx):
    result = benchmark(table8.run, ctx)
    assert result.rows


@pytest.mark.benchmark(group="tables")
def test_bench_table9(benchmark, ctx):
    result = benchmark(table9.run, ctx)
    assert result.rows
