"""Micro-benchmarks of the library's hot paths: tokenization, hidden-state
synthesis, probe training, conformal calibration, generation, execution,
the batched evaluation runtime (batch-vs-serial throughput), and
two-phase trace synthesis (vectorized vs the scalar per-token oracle,
the "trace-synthesis" group)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.conformal.split import SplitConformalBinary
from repro.core.pipeline import RTSPipeline
from repro.linking.dataset import collect_branch_dataset
from repro.llm.model import TransparentLLM
from repro.llm.tokenizer import tokenize_items
from repro.llm.trie import ItemTrie
from repro.probes.mlp import MLPClassifier, MLPConfig
from repro.runtime.cache import CachingLLM
from repro.runtime.runner import BatchRunner
from repro.sqlengine.executor import Executor


@pytest.fixture(scope="module")
def branch_data(ctx):
    bench = ctx.benchmark("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "table") for e in bench.train
    ]
    return collect_branch_dataset(ctx.llm, instances)


@pytest.mark.benchmark(group="micro")
def test_bench_tokenizer(benchmark, ctx):
    names = [
        t.name
        for pdb in ctx.benchmark("bird").databases.values()
        for t in pdb.schema.tables
    ]
    benchmark(lambda: [tokenize_items(names) for _ in range(100)])


@pytest.mark.benchmark(group="micro")
def test_bench_trie_construction(benchmark, ctx):
    names = [
        f"{t.name}.{c.name}"
        for pdb in ctx.benchmark("bird").databases.values()
        for t in pdb.schema.tables
        for c in t.columns
    ]
    benchmark(ItemTrie, names)


@pytest.mark.benchmark(group="micro")
def test_bench_hidden_state_synthesis(benchmark, ctx):
    synth = ctx.llm.hidden

    def run():
        for i in range(50):
            synth.hidden_states("bench-inst", i, "tok", "prev", 0, 0, False)

    benchmark(run)


@pytest.mark.benchmark(group="micro")
def test_bench_free_generation(benchmark, ctx):
    bench = ctx.benchmark("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "table")
        for e in bench.dev.examples[:8]
    ]
    benchmark(lambda: [ctx.llm.generate(i) for i in instances])


@pytest.mark.benchmark(group="micro")
def test_bench_teacher_forcing(benchmark, ctx):
    bench = ctx.benchmark("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "table")
        for e in bench.dev.examples[:8]
    ]
    benchmark(lambda: [ctx.llm.teacher_forced_trace(i) for i in instances])


@pytest.mark.benchmark(group="micro")
def test_bench_mlp_training(benchmark, branch_data):
    X = branch_data.layer(7)
    y = branch_data.labels.astype(float)
    benchmark(
        lambda: MLPClassifier(MLPConfig(epochs=10), seed=0).fit(X, y)
    )


@pytest.mark.benchmark(group="micro")
def test_bench_conformal_calibration(benchmark):
    rng = np.random.default_rng(0)
    p1 = rng.random(5000)
    probs = np.stack([1 - p1, p1], axis=1)
    labels = (rng.random(5000) < p1).astype(int)
    benchmark(
        lambda: SplitConformalBinary(alpha=0.1, mondrian=True).fit(probs, labels)
    )


@pytest.mark.benchmark(group="micro")
def test_bench_mbpp_inference(benchmark, ctx, branch_data):
    mbpp = ctx.pipeline("bird").mbpp("table")
    benchmark(mbpp.predict_dataset, branch_data)


@pytest.mark.benchmark(group="micro")
def test_bench_sql_execution(benchmark, ctx):
    bench = ctx.benchmark("bird")
    executor = Executor(bench.databases)
    examples = bench.dev.examples[:20]
    # Warm connections so the benchmark times query execution.
    for e in examples:
        executor.execute(e.db_id, e.gold_sql)
    benchmark(lambda: [executor.execute(e.db_id, e.gold_sql) for e in examples])


@pytest.mark.benchmark(group="micro")
def test_bench_rts_link_abstain(benchmark, ctx):
    bench = ctx.benchmark("bird")
    pipe = ctx.pipeline("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "table")
        for e in bench.dev.examples[:8]
    ]
    benchmark(lambda: [pipe.link(i, mode="abstain") for i in instances])


# -- batched evaluation runtime ----------------------------------------------
#
# Same workload (link over the dev split), three execution paths. Compare
# the "batch" group's rows: the batch runner must not be slower than the
# hand-rolled serial loop, and the threaded pool should win where numpy
# releases the GIL.


@pytest.fixture(scope="module")
def batch_workload(ctx):
    bench = ctx.benchmark("bird")
    pipe = ctx.pipeline("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "table") for e in bench.dev.examples
    ]
    return pipe, instances


@pytest.mark.benchmark(group="batch")
def test_bench_batch_serial_loop(benchmark, batch_workload):
    """Baseline: the pre-runtime hand-rolled per-example loop."""
    pipe, instances = batch_workload
    benchmark(lambda: [pipe.link(i, mode="abstain") for i in instances])


@pytest.mark.benchmark(group="batch")
def test_bench_batch_runner_serial(benchmark, batch_workload):
    pipe, instances = batch_workload
    runner = BatchRunner(pipe, workers=1)
    benchmark(lambda: runner.run_link(instances, mode="abstain"))


@pytest.mark.benchmark(group="batch")
def test_bench_batch_runner_threads(benchmark, batch_workload):
    pipe, instances = batch_workload
    runner = BatchRunner(pipe, workers=4, backend="thread")
    benchmark(lambda: runner.run_link(instances, mode="abstain"))


@pytest.mark.benchmark(group="batch")
def test_bench_generation_cache_cold_vs_warm(benchmark, ctx):
    """One cold fill, then timed warm sweeps — the cache's whole point."""
    bench = ctx.benchmark("bird")
    llm = CachingLLM(TransparentLLM(seed=11))
    instances = [
        RTSPipeline.instance_for(e, bench, "table") for e in bench.dev.examples
    ]
    for instance in instances:  # cold fill outside the timed region
        llm.generate(instance)
    benchmark(lambda: [llm.generate(i) for i in instances])
    assert llm.stats.hits > 0


# -- generation service backends ----------------------------------------------
#
# Same uncached workload (free + teacher-forced traces over the dev
# split) through every generation backend. Compare the "service" group's
# rows: at tiny scale the async scheduler's per-batch overhead (queue
# hops, wait windows, thread handoff) and the process backend's IPC
# overhead (pickle framing over pipes) dominate, so these track that
# overhead staying bounded; the coalescing / crash-isolation wins show
# up with real workloads (GIL-bound kernels, many concurrent
# submitters). Output bytes must never differ between the rows (pinned
# by tests).


@pytest.fixture(scope="module")
def service_requests(ctx):
    from repro.runtime.service import FORCED, FREE, GenerationRequest

    bench = ctx.benchmark("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "table") for e in bench.dev.examples
    ]
    return [GenerationRequest(FREE, i) for i in instances] + [
        GenerationRequest(FORCED, i) for i in instances
    ]


@pytest.mark.benchmark(group="service")
def test_bench_service_simulator_backend(benchmark, service_requests):
    from repro.runtime.service import SimulatorBackend

    backend = SimulatorBackend(TransparentLLM(seed=11))
    benchmark(lambda: backend.generate(service_requests))


@pytest.mark.benchmark(group="service")
def test_bench_service_async_batched_backend(benchmark, service_requests):
    from repro.runtime.service import AsyncBatchedBackend, SimulatorBackend

    with AsyncBatchedBackend(
        SimulatorBackend(TransparentLLM(seed=11)),
        max_batch=4,
        max_wait_ms=1.0,
        workers=4,
    ) as backend:
        benchmark(lambda: backend.generate(service_requests))


@pytest.mark.benchmark(group="service")
def test_bench_service_process_backend(benchmark, service_requests):
    from repro.runtime.remote import ProcessBackend

    with ProcessBackend(TransparentLLM(seed=11), workers=2) as backend:
        backend.ping()  # workers booted outside the timed region
        benchmark(lambda: backend.generate(service_requests))


# -- trace synthesis: scalar vs vectorized two-phase ---------------------------
#
# The same generation workload through the scalar reference oracle
# (independent per-token synthesis — the pure-function definition of the
# observables, architecturally the old per-token hot path) and through
# the vectorized two-phase fast path (symbolic walk + one batched
# observable pass). Both are bit-identical by construction (pinned in
# tests/test_trace_synthesis.py); compare the "trace-synthesis" group's
# rows — `scripts/dev.sh bench-smoke` prints the speedup ratio. The
# workload pairs the tiny corpus's column-linking dev split with
# wide-schema instances (every column of a database as a gold item),
# because the tiny test corpus under-sizes schemas relative to real
# BIRD/Spider databases and the hot path's payoff scales with trace
# length.


@pytest.fixture(scope="module")
def synthesis_instances(ctx):
    import dataclasses

    bench = ctx.benchmark("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "column") for e in bench.dev.examples
    ]
    template = instances[0]
    for name, pdb in sorted(bench.databases.items()):
        columns = tuple(
            f"{table.name}.{column.name}"
            for table in pdb.schema.tables
            for column in table.columns
        )
        instances.append(
            dataclasses.replace(
                template,
                instance_id=f"bench-wide/{name}/column",
                candidates=columns,
                gold_items=columns,
            )
        )
    return instances


@pytest.mark.benchmark(group="trace-synthesis")
def test_bench_synthesis_scalar_forced(benchmark, synthesis_instances):
    llm = TransparentLLM(seed=11)
    benchmark(
        lambda: [llm.teacher_forced_trace_scalar(i) for i in synthesis_instances]
    )


@pytest.mark.benchmark(group="trace-synthesis")
def test_bench_synthesis_vectorized_forced(benchmark, synthesis_instances):
    llm = TransparentLLM(seed=11)
    benchmark(lambda: [llm.teacher_forced_trace(i) for i in synthesis_instances])


@pytest.mark.benchmark(group="trace-synthesis")
def test_bench_synthesis_scalar_free(benchmark, synthesis_instances):
    llm = TransparentLLM(seed=11)
    benchmark(lambda: [llm.generate_scalar(i) for i in synthesis_instances])


@pytest.mark.benchmark(group="trace-synthesis")
def test_bench_synthesis_vectorized_free(benchmark, synthesis_instances):
    llm = TransparentLLM(seed=11)
    benchmark(lambda: [llm.generate(i) for i in synthesis_instances])


@pytest.mark.benchmark(group="trace-synthesis")
def test_bench_synthesis_incremental_session_forced(benchmark, synthesis_instances):
    """The third path: the inference-time session with retained streams."""

    llm = TransparentLLM(seed=11)

    def run():
        out = []
        for instance in synthesis_instances:
            session = llm.start_session(instance)
            session.run_teacher_forced()
            out.append(session.trace())
        return out

    benchmark(run)


# -- store round-trip: base64-JSON codec vs binary sidecar + mmap --------------
#
# The same wide traces written once per codec, then warm L2 reads
# (probe_disk + record_to_trace against a prebuilt store) timed per
# round. The base64 rows decode-and-copy every hidden block; the binary
# rows rehydrate `hidden_stack` as a zero-copy view over a shared mmap
# of the `.bin` sidecar. Compare the "store-roundtrip" group's warm-read
# rows — `scripts/dev.sh bench-smoke` prints the speedup ratio, and the
# acceptance bar is >= 5x. Payload bytes ride in `extra_info` so the
# JSON artifact can report MB/s.


@pytest.fixture(scope="module")
def store_traces(synthesis_instances):
    llm = TransparentLLM(seed=11)
    return [llm.teacher_forced_trace(i) for i in synthesis_instances]


@pytest.fixture(scope="module")
def store_payload_bytes(store_traces):
    return int(sum(t.hidden_matrix().nbytes for t in store_traces))


@pytest.fixture(scope="module")
def store_root(store_traces, tmp_path_factory):
    from repro.runtime.persist import PersistentGenerationCache

    root = tmp_path_factory.mktemp("bench-store")
    for codec in ("base64", "binary"):
        cache = PersistentGenerationCache(
            root / codec, namespace="bench", codec=codec
        )
        for trace in store_traces:
            cache.get_or_compute(
                (trace.instance_id, "forced"), lambda t=trace: t
            )
        cache.close()
    return root


@pytest.fixture(scope="module")
def store_readers(store_root, store_traces):
    from repro.runtime.persist import PersistentGenerationCache

    readers = {}
    for codec in ("base64", "binary"):
        cache = PersistentGenerationCache(store_root / codec, namespace="bench")
        addresses = [
            cache.address((t.instance_id, "forced")) for t in store_traces
        ]
        readers[codec] = (cache, addresses)
    yield readers
    for cache, _ in readers.values():
        cache.close()


def _warm_read_all(cache, addresses):
    out = []
    for address in addresses:
        record, tier = cache.probe_disk(address)
        assert record is not None, (address, tier)
        out.append(cache.record_to_trace(record))
    return out


@pytest.mark.benchmark(group="store-roundtrip")
def test_bench_store_encode_base64(benchmark, store_traces):
    from repro.runtime.persist import trace_to_record

    benchmark(lambda: [trace_to_record(t) for t in store_traces])


@pytest.mark.benchmark(group="store-roundtrip")
def test_bench_store_decode_base64(benchmark, store_traces):
    from repro.runtime.persist import trace_from_record, trace_to_record

    records = [trace_to_record(t) for t in store_traces]
    benchmark(lambda: [trace_from_record(r) for r in records])


@pytest.mark.benchmark(group="store-roundtrip")
def test_bench_store_warm_read_base64(
    benchmark, store_readers, store_payload_bytes
):
    cache, addresses = store_readers["base64"]
    _warm_read_all(cache, addresses)  # touch pages outside the timed region
    benchmark(lambda: _warm_read_all(cache, addresses))
    benchmark.extra_info["payload_bytes"] = store_payload_bytes
    benchmark.extra_info["traces"] = len(addresses)


@pytest.mark.benchmark(group="store-roundtrip")
def test_bench_store_warm_read_binary(
    benchmark, store_readers, store_payload_bytes
):
    cache, addresses = store_readers["binary"]
    traces = _warm_read_all(cache, addresses)  # warm the shared mmap
    assert all(
        t.hidden_stack is not None and not t.hidden_stack.flags.writeable
        for t in traces
    ), "binary warm reads must rehydrate read-only zero-copy views"
    benchmark(lambda: _warm_read_all(cache, addresses))
    benchmark.extra_info["payload_bytes"] = store_payload_bytes
    benchmark.extra_info["traces"] = len(addresses)


# -- IPC throughput: pipe vs socket vs shared-memory data plane ----------------
#
# The same wide teacher-forced workload through a one-worker
# ProcessBackend on each transport, with the shared-memory data plane on
# and off. The worker's LLM is wrapped in CachingLLM and the fleet is
# warmed with one untimed sweep, so the timed rounds are
# serialization-bound: they measure moving traces across the process
# boundary, not resynthesizing them. The inline rows pickle whole traces
# through the framed channel; the shm rows ship hidden stacks through
# the worker's arena as (offset, length, dtype, shape) descriptors and
# keep only control messages on the channel. Compare the
# "ipc-throughput" group's rows — `scripts/dev.sh bench-smoke` prints
# the shm-vs-pipe ratio and MB/s from `extra_info`.


@pytest.fixture(scope="module")
def ipc_requests(synthesis_instances):
    from repro.runtime.service import FORCED, GenerationRequest

    return [GenerationRequest(FORCED, i) for i in synthesis_instances]


@pytest.fixture(scope="module")
def ipc_payload_bytes(store_traces):
    return int(sum(t.hidden_matrix().nbytes for t in store_traces))


def _bench_ipc(benchmark, requests, payload_bytes, *, transport, shared_memory):
    from repro.runtime.remote import ProcessBackend

    with ProcessBackend(
        CachingLLM(TransparentLLM(seed=11)),
        workers=1,
        transport=transport,
        shared_memory=shared_memory,
    ) as backend:
        backend.ping()  # workers booted outside the timed region
        backend.generate(requests)  # warm the worker-side cache untimed
        benchmark(lambda: backend.generate(requests))
        stats = backend.stats
    if shared_memory:
        assert stats.n_shm_results > 0, "arena never engaged"
    else:
        assert stats.n_shm_results == 0
    benchmark.extra_info["payload_bytes"] = payload_bytes
    benchmark.extra_info["traces"] = len(requests)
    benchmark.extra_info["n_shm_results"] = stats.n_shm_results
    benchmark.extra_info["n_shm_bytes"] = stats.n_shm_bytes


@pytest.mark.benchmark(group="ipc-throughput")
def test_bench_ipc_pipe_inline(benchmark, ipc_requests, ipc_payload_bytes):
    _bench_ipc(
        benchmark,
        ipc_requests,
        ipc_payload_bytes,
        transport="pipe",
        shared_memory=False,
    )


@pytest.mark.benchmark(group="ipc-throughput")
def test_bench_ipc_pipe_shm(benchmark, ipc_requests, ipc_payload_bytes):
    _bench_ipc(
        benchmark,
        ipc_requests,
        ipc_payload_bytes,
        transport="pipe",
        shared_memory=True,
    )


@pytest.mark.benchmark(group="ipc-throughput")
def test_bench_ipc_unix_inline(benchmark, ipc_requests, ipc_payload_bytes):
    _bench_ipc(
        benchmark,
        ipc_requests,
        ipc_payload_bytes,
        transport="unix",
        shared_memory=False,
    )


@pytest.mark.benchmark(group="ipc-throughput")
def test_bench_ipc_unix_shm(benchmark, ipc_requests, ipc_payload_bytes):
    _bench_ipc(
        benchmark,
        ipc_requests,
        ipc_payload_bytes,
        transport="unix",
        shared_memory=True,
    )
