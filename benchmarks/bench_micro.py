"""Micro-benchmarks of the library's hot paths: tokenization, hidden-state
synthesis, probe training, conformal calibration, generation, execution,
the batched evaluation runtime (batch-vs-serial throughput), and
two-phase trace synthesis (vectorized vs the scalar per-token oracle,
the "trace-synthesis" group)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.conformal.split import SplitConformalBinary
from repro.core.pipeline import RTSPipeline
from repro.linking.dataset import collect_branch_dataset
from repro.llm.model import TransparentLLM
from repro.llm.tokenizer import tokenize_items
from repro.llm.trie import ItemTrie
from repro.probes.mlp import MLPClassifier, MLPConfig
from repro.runtime.cache import CachingLLM
from repro.runtime.runner import BatchRunner
from repro.sqlengine.executor import Executor


@pytest.fixture(scope="module")
def branch_data(ctx):
    bench = ctx.benchmark("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "table") for e in bench.train
    ]
    return collect_branch_dataset(ctx.llm, instances)


@pytest.mark.benchmark(group="micro")
def test_bench_tokenizer(benchmark, ctx):
    names = [
        t.name
        for pdb in ctx.benchmark("bird").databases.values()
        for t in pdb.schema.tables
    ]
    benchmark(lambda: [tokenize_items(names) for _ in range(100)])


@pytest.mark.benchmark(group="micro")
def test_bench_trie_construction(benchmark, ctx):
    names = [
        f"{t.name}.{c.name}"
        for pdb in ctx.benchmark("bird").databases.values()
        for t in pdb.schema.tables
        for c in t.columns
    ]
    benchmark(ItemTrie, names)


@pytest.mark.benchmark(group="micro")
def test_bench_hidden_state_synthesis(benchmark, ctx):
    synth = ctx.llm.hidden

    def run():
        for i in range(50):
            synth.hidden_states("bench-inst", i, "tok", "prev", 0, 0, False)

    benchmark(run)


@pytest.mark.benchmark(group="micro")
def test_bench_free_generation(benchmark, ctx):
    bench = ctx.benchmark("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "table")
        for e in bench.dev.examples[:8]
    ]
    benchmark(lambda: [ctx.llm.generate(i) for i in instances])


@pytest.mark.benchmark(group="micro")
def test_bench_teacher_forcing(benchmark, ctx):
    bench = ctx.benchmark("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "table")
        for e in bench.dev.examples[:8]
    ]
    benchmark(lambda: [ctx.llm.teacher_forced_trace(i) for i in instances])


@pytest.mark.benchmark(group="micro")
def test_bench_mlp_training(benchmark, branch_data):
    X = branch_data.layer(7)
    y = branch_data.labels.astype(float)
    benchmark(
        lambda: MLPClassifier(MLPConfig(epochs=10), seed=0).fit(X, y)
    )


@pytest.mark.benchmark(group="micro")
def test_bench_conformal_calibration(benchmark):
    rng = np.random.default_rng(0)
    p1 = rng.random(5000)
    probs = np.stack([1 - p1, p1], axis=1)
    labels = (rng.random(5000) < p1).astype(int)
    benchmark(
        lambda: SplitConformalBinary(alpha=0.1, mondrian=True).fit(probs, labels)
    )


@pytest.mark.benchmark(group="micro")
def test_bench_mbpp_inference(benchmark, ctx, branch_data):
    mbpp = ctx.pipeline("bird").mbpp("table")
    benchmark(mbpp.predict_dataset, branch_data)


@pytest.mark.benchmark(group="micro")
def test_bench_sql_execution(benchmark, ctx):
    bench = ctx.benchmark("bird")
    executor = Executor(bench.databases)
    examples = bench.dev.examples[:20]
    # Warm connections so the benchmark times query execution.
    for e in examples:
        executor.execute(e.db_id, e.gold_sql)
    benchmark(lambda: [executor.execute(e.db_id, e.gold_sql) for e in examples])


@pytest.mark.benchmark(group="micro")
def test_bench_rts_link_abstain(benchmark, ctx):
    bench = ctx.benchmark("bird")
    pipe = ctx.pipeline("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "table")
        for e in bench.dev.examples[:8]
    ]
    benchmark(lambda: [pipe.link(i, mode="abstain") for i in instances])


# -- batched evaluation runtime ----------------------------------------------
#
# Same workload (link over the dev split), three execution paths. Compare
# the "batch" group's rows: the batch runner must not be slower than the
# hand-rolled serial loop, and the threaded pool should win where numpy
# releases the GIL.


@pytest.fixture(scope="module")
def batch_workload(ctx):
    bench = ctx.benchmark("bird")
    pipe = ctx.pipeline("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "table") for e in bench.dev.examples
    ]
    return pipe, instances


@pytest.mark.benchmark(group="batch")
def test_bench_batch_serial_loop(benchmark, batch_workload):
    """Baseline: the pre-runtime hand-rolled per-example loop."""
    pipe, instances = batch_workload
    benchmark(lambda: [pipe.link(i, mode="abstain") for i in instances])


@pytest.mark.benchmark(group="batch")
def test_bench_batch_runner_serial(benchmark, batch_workload):
    pipe, instances = batch_workload
    runner = BatchRunner(pipe, workers=1)
    benchmark(lambda: runner.run_link(instances, mode="abstain"))


@pytest.mark.benchmark(group="batch")
def test_bench_batch_runner_threads(benchmark, batch_workload):
    pipe, instances = batch_workload
    runner = BatchRunner(pipe, workers=4, backend="thread")
    benchmark(lambda: runner.run_link(instances, mode="abstain"))


@pytest.mark.benchmark(group="batch")
def test_bench_generation_cache_cold_vs_warm(benchmark, ctx):
    """One cold fill, then timed warm sweeps — the cache's whole point."""
    bench = ctx.benchmark("bird")
    llm = CachingLLM(TransparentLLM(seed=11))
    instances = [
        RTSPipeline.instance_for(e, bench, "table") for e in bench.dev.examples
    ]
    for instance in instances:  # cold fill outside the timed region
        llm.generate(instance)
    benchmark(lambda: [llm.generate(i) for i in instances])
    assert llm.stats.hits > 0


# -- generation service backends ----------------------------------------------
#
# Same uncached workload (free + teacher-forced traces over the dev
# split) through every generation backend. Compare the "service" group's
# rows: at tiny scale the async scheduler's per-batch overhead (queue
# hops, wait windows, thread handoff) and the process backend's IPC
# overhead (pickle framing over pipes) dominate, so these track that
# overhead staying bounded; the coalescing / crash-isolation wins show
# up with real workloads (GIL-bound kernels, many concurrent
# submitters). Output bytes must never differ between the rows (pinned
# by tests).


@pytest.fixture(scope="module")
def service_requests(ctx):
    from repro.runtime.service import FORCED, FREE, GenerationRequest

    bench = ctx.benchmark("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "table") for e in bench.dev.examples
    ]
    return [GenerationRequest(FREE, i) for i in instances] + [
        GenerationRequest(FORCED, i) for i in instances
    ]


@pytest.mark.benchmark(group="service")
def test_bench_service_simulator_backend(benchmark, service_requests):
    from repro.runtime.service import SimulatorBackend

    backend = SimulatorBackend(TransparentLLM(seed=11))
    benchmark(lambda: backend.generate(service_requests))


@pytest.mark.benchmark(group="service")
def test_bench_service_async_batched_backend(benchmark, service_requests):
    from repro.runtime.service import AsyncBatchedBackend, SimulatorBackend

    with AsyncBatchedBackend(
        SimulatorBackend(TransparentLLM(seed=11)),
        max_batch=4,
        max_wait_ms=1.0,
        workers=4,
    ) as backend:
        benchmark(lambda: backend.generate(service_requests))


@pytest.mark.benchmark(group="service")
def test_bench_service_process_backend(benchmark, service_requests):
    from repro.runtime.remote import ProcessBackend

    with ProcessBackend(TransparentLLM(seed=11), workers=2) as backend:
        backend.ping()  # workers booted outside the timed region
        benchmark(lambda: backend.generate(service_requests))


# -- trace synthesis: scalar vs vectorized two-phase ---------------------------
#
# The same generation workload through the scalar reference oracle
# (independent per-token synthesis — the pure-function definition of the
# observables, architecturally the old per-token hot path) and through
# the vectorized two-phase fast path (symbolic walk + one batched
# observable pass). Both are bit-identical by construction (pinned in
# tests/test_trace_synthesis.py); compare the "trace-synthesis" group's
# rows — `scripts/dev.sh bench-smoke` prints the speedup ratio. The
# workload pairs the tiny corpus's column-linking dev split with
# wide-schema instances (every column of a database as a gold item),
# because the tiny test corpus under-sizes schemas relative to real
# BIRD/Spider databases and the hot path's payoff scales with trace
# length.


@pytest.fixture(scope="module")
def synthesis_instances(ctx):
    import dataclasses

    bench = ctx.benchmark("bird")
    instances = [
        RTSPipeline.instance_for(e, bench, "column") for e in bench.dev.examples
    ]
    template = instances[0]
    for name, pdb in sorted(bench.databases.items()):
        columns = tuple(
            f"{table.name}.{column.name}"
            for table in pdb.schema.tables
            for column in table.columns
        )
        instances.append(
            dataclasses.replace(
                template,
                instance_id=f"bench-wide/{name}/column",
                candidates=columns,
                gold_items=columns,
            )
        )
    return instances


@pytest.mark.benchmark(group="trace-synthesis")
def test_bench_synthesis_scalar_forced(benchmark, synthesis_instances):
    llm = TransparentLLM(seed=11)
    benchmark(
        lambda: [llm.teacher_forced_trace_scalar(i) for i in synthesis_instances]
    )


@pytest.mark.benchmark(group="trace-synthesis")
def test_bench_synthesis_vectorized_forced(benchmark, synthesis_instances):
    llm = TransparentLLM(seed=11)
    benchmark(lambda: [llm.teacher_forced_trace(i) for i in synthesis_instances])


@pytest.mark.benchmark(group="trace-synthesis")
def test_bench_synthesis_scalar_free(benchmark, synthesis_instances):
    llm = TransparentLLM(seed=11)
    benchmark(lambda: [llm.generate_scalar(i) for i in synthesis_instances])


@pytest.mark.benchmark(group="trace-synthesis")
def test_bench_synthesis_vectorized_free(benchmark, synthesis_instances):
    llm = TransparentLLM(seed=11)
    benchmark(lambda: [llm.generate(i) for i in synthesis_instances])


@pytest.mark.benchmark(group="trace-synthesis")
def test_bench_synthesis_incremental_session_forced(benchmark, synthesis_instances):
    """The third path: the inference-time session with retained streams."""

    llm = TransparentLLM(seed=11)

    def run():
        out = []
        for instance in synthesis_instances:
            session = llm.start_session(instance)
            session.run_teacher_forced()
            out.append(session.trace())
        return out

    benchmark(run)
