"""Reliability report: the coverage/EAR trade-off across error levels.

Sweeps the conformal error level alpha, re-calibrating the trained
probes, and prints the Figure 6 trade-off table plus the conformal
guarantee each row must (and does) satisfy — an operator's view of "how
often will RTS interrupt me, and what do I get for it".

    python examples/reliability_report.py
"""

from repro.conformal import majority_guarantee
from repro.corpus import BirdBuilder, CorpusScale
from repro.core import RTSConfig, RTSPipeline, build_report
from repro.linking import collect_branch_dataset
from repro.llm import TransparentLLM
from repro.probes import evaluate_bpp
from repro.utils import render_table


def main() -> None:
    scale = CorpusScale(n_databases=8, train_per_db=48, dev_per_db=12, test_per_db=4)
    bench = BirdBuilder(seed=7, scale=scale).build()
    llm = TransparentLLM(seed=11)
    pipeline = RTSPipeline(llm, RTSConfig(seed=3)).fit_benchmark(bench, tasks=("table",))
    instances = [RTSPipeline.instance_for(e, bench, "table") for e in bench.dev]
    dataset = collect_branch_dataset(llm, instances)
    base = pipeline.mbpp("table")

    rows = []
    for alpha in (0.02, 0.05, 0.10, 0.20, 0.30):
        mbpp = base.with_alpha(alpha)
        ev = evaluate_bpp(mbpp, dataset)
        # Instance-level consequences at this alpha:
        saved = pipeline._mbpps["table"]
        pipeline._mbpps["table"] = mbpp
        report = build_report([pipeline.link(i, mode="abstain") for i in instances])
        pipeline._mbpps["table"] = saved
        rows.append(
            [
                alpha,
                majority_guarantee(alpha),
                ev.coverage,
                ev.ear,
                report.as_row()[0],
                report.abstention_rate * 100,
            ]
        )
    print(
        render_table(
            ["alpha", "guarantee", "coverage", "token EAR", "EM answered (%)", "abstention (%)"],
            rows,
            title="RTS reliability sweep (BIRD table linking)",
            float_fmt="{:.3f}",
        )
    )


if __name__ == "__main__":
    main()
