"""Human-in-the-loop linking: watch RTS ask questions and repair itself.

Replays the paper's Figure 2 interaction on generated BIRD questions:
when the mBPP flags a branching point, Algorithm 2 traces it back to the
suspect table, the (simulated) human confirms or corrects, and
generation continues. Prints a transcript of every interaction.

    python examples/interactive_linking.py
"""

from repro.abstention import EXPERT, HumanOracle, trace_back
from repro.corpus import BirdBuilder, CorpusScale
from repro.core import RTSConfig, RTSPipeline
from repro.llm import TransparentLLM
from repro.llm.tokenizer import tokenize_items


def link_with_transcript(pipeline, instance, human):
    """The pipeline's HUMAN mode, instrumented to print the dialogue."""
    mbpp = pipeline.mbpp(instance.task)
    session = pipeline.llm.start_session(instance)
    gold_stream = tokenize_items(instance.gold_items)
    questions = 0
    while not session.done:
        step = session.propose()
        if not mbpp.is_branching(step.hidden, key=(instance.instance_id, step.position)):
            session.commit()
            continue
        result = trace_back(session)
        questions += 1
        print(f'  RTS: I am unsure about {list(result.items)!r} — relevant? ')
        answer = human.confirm_relevance(instance, result.items, questions)
        if answer:
            print("  User: yes, keep it.")
            session.commit()
            continue
        print("  User: no — the correct continuation is", instance.gold_items)
        if session.aligned and session.n_committed < len(gold_stream):
            session.force_token(gold_stream[session.n_committed])
        else:
            session.commit()
    return session.trace().items, questions


def main() -> None:
    bench = BirdBuilder(seed=7, scale=CorpusScale.tiny()).build()
    llm = TransparentLLM(seed=11)
    pipeline = RTSPipeline(llm, RTSConfig(seed=3)).fit_benchmark(bench, tasks=("table",))
    human = HumanOracle(EXPERT, seed=9)

    shown = 0
    for example in bench.dev:
        instance = RTSPipeline.instance_for(example, bench, "table")
        unassisted = llm.generate(instance).items
        if set(unassisted) == set(instance.gold_items):
            continue  # only show the interesting (erroneous) cases
        print(f"\nQ: {example.question}")
        print(f"  (unassisted linking would answer {list(unassisted)!r})")
        items, n_questions = link_with_transcript(pipeline, instance, human)
        verdict = "correct" if set(items) == set(instance.gold_items) else "wrong"
        print(f"  => final linking: {list(items)!r} [{verdict}, "
              f"{n_questions} question(s) asked; gold {list(instance.gold_items)!r}]")
        shown += 1
        if shown >= 4:
            break
    if not shown:
        print("No erroneous generations in this tiny sample — rerun with a new seed.")


if __name__ == "__main__":
    main()
