"""Quickstart: build a benchmark, train RTS, link with abstention.

Runs in under a minute::

    python examples/quickstart.py
"""

from repro.corpus import BirdBuilder, CorpusScale
from repro.core import RTSConfig, RTSPipeline, build_report
from repro.llm import TransparentLLM


def main() -> None:
    # 1. A BIRD-like benchmark: dirty schemas, external knowledge,
    #    questions with gold SQL and gold schema links.
    scale = CorpusScale(n_databases=8, train_per_db=48, dev_per_db=12, test_per_db=4)
    bench = BirdBuilder(seed=7, scale=scale).build()
    print("benchmark:", bench.card())

    # 2. The transparent schema-linking LLM (simulated; see DESIGN.md)
    #    and the RTS pipeline: collect D_branch by teacher forcing,
    #    train per-layer probes, calibrate conformal thresholds.
    llm = TransparentLLM(seed=11)
    pipeline = RTSPipeline(llm, RTSConfig(alpha=0.1, k=5, seed=3))
    pipeline.fit_benchmark(bench, tasks=("table",))
    mbpp = pipeline.mbpp("table")
    print(f"mBPP trained: layers={mbpp.layers} mean AUC={mbpp.mean_auc:.3f}")

    # 3. Link every dev question, abstaining on detected branching points.
    outcomes = [
        pipeline.link(RTSPipeline.instance_for(e, bench, "table"), mode="abstain")
        for e in bench.dev
    ]
    report = build_report(outcomes)
    em, tar, far = report.as_row()
    print(
        f"dev: EM (answered) = {em:.1f}%  TAR = {tar:.1f}%  FAR = {far:.1f}%  "
        f"({report.n_answered}/{report.n} answered)"
    )

    # 4. Inspect one abstention.
    for outcome in outcomes:
        if outcome.abstained:
            print("\nexample abstention:")
            print("  question:", outcome.instance.question)
            print("  unassisted prediction:", outcome.unassisted)
            print("  gold:", outcome.instance.gold_items)
            break


if __name__ == "__main__":
    main()
