"""Bring your own database: plug a custom schema + questions into RTS.

Shows the full integration path a downstream adopter follows:

1. describe a schema with ``repro.schema`` (here: a tiny e-commerce DB),
2. write questions as gold SQL ASTs (what your query log would hold),
3. build linking instances, fit the RTS pipeline on the training half,
4. link the held-out half with abstention, and execute the downstream
   SQL against real SQLite.

    python examples/custom_database.py
"""

import numpy as np

from repro.corpus.generator import PopulatedDatabase
from repro.corpus.dataset import Example
from repro.corpus.questions import compute_features
from repro.corpus.sqlast import ColumnRef, Condition, SelectItem, SelectQuery
from repro.core import RTSConfig, RTSPipeline, build_report
from repro.linking import SchemaLinkingInstance
from repro.llm import TransparentLLM
from repro.schema import Column, ColumnType, Database, ForeignKey, Table
from repro.sqlengine import Executor


def build_schema() -> Database:
    customers = Table(
        name="customers",
        semantic_words=("customers",),
        columns=(
            Column("customer_id", ColumnType.INTEGER, ("customer", "id"),
                   is_primary=True, value_pool="serial"),
            Column("customer_name", ColumnType.TEXT, ("customer", "name"),
                   value_pool="person_last"),
            Column("city", ColumnType.TEXT, ("city",), value_pool="city"),
        ),
    )
    orders = Table(
        name="orders",
        semantic_words=("orders",),
        columns=(
            Column("order_id", ColumnType.INTEGER, ("order", "id"),
                   is_primary=True, value_pool="serial"),
            Column("customer_id", ColumnType.INTEGER, ("customer", "id"),
                   value_pool="serial"),
            Column("total_amount", ColumnType.REAL, ("total", "amount"),
                   description="order total in dollars", value_pool="real:5..500"),
        ),
        foreign_keys=(ForeignKey("customer_id", "customers", "customer_id"),),
    )
    refunds = Table(
        name="refunds",
        semantic_words=("refunds",),
        columns=(
            Column("refund_id", ColumnType.INTEGER, ("refund", "id"),
                   is_primary=True, value_pool="serial"),
            Column("order_id", ColumnType.INTEGER, ("order", "id"),
                   value_pool="serial"),
            Column("refund_amount", ColumnType.REAL, ("refund", "amount"),
                   value_pool="real:1..200"),
        ),
        foreign_keys=(ForeignKey("order_id", "orders", "order_id"),),
    )
    return Database(name="shop", tables=(customers, orders, refunds))


def populate(db: Database, rng: np.random.Generator) -> PopulatedDatabase:
    rows = {
        "customers": [(i + 1, name, city) for i, (name, city) in enumerate(
            zip(["Ng", "Silva", "Okafor", "Petrov", "Brown", "Haddad"],
                ["Austin", "Lyon", "Osaka", "Prague", "Denver", "Lima"]))],
        "orders": [
            (i + 1, int(rng.integers(1, 7)), round(float(rng.uniform(5, 500)), 2))
            for i in range(30)
        ],
    }
    rows["refunds"] = [
        (i + 1, int(rng.integers(1, 31)), round(float(rng.uniform(1, 200)), 2))
        for i in range(8)
    ]
    return PopulatedDatabase(schema=db, rows=rows)


def make_examples(db: Database, n: int) -> list[Example]:
    """Questions your users would ask, with the gold SQL your log holds."""
    templates = [
        (
            "List the customer name of every customers record.",
            SelectQuery(
                select=(SelectItem(col=ColumnRef("customers", "customer_name")),),
                tables=("customers",),
            ),
        ),
        (
            "What is the average total amount across all orders records?",
            SelectQuery(
                select=(SelectItem(col=ColumnRef("orders", "total_amount"), agg="AVG"),),
                tables=("orders",),
            ),
        ),
        (
            "How many refunds records have a refund amount greater than 100?",
            SelectQuery(
                select=(SelectItem(col=None, agg="COUNT"),),
                tables=("refunds",),
                where=(Condition(ColumnRef("refunds", "refund_amount"), ">", 100),),
            ),
        ),
    ]
    examples = []
    for i in range(n):
        question, query = templates[i % len(templates)]
        examples.append(
            Example(
                example_id=f"shop_{i:03d}",
                db_id="shop",
                question=question,
                query=query,
                difficulty="simple" if i % 3 < 2 else "moderate",
                features=compute_features(db, query, needs_knowledge=False),
            )
        )
    return examples


def main() -> None:
    db = build_schema()
    pdb = populate(db, np.random.default_rng(0))
    examples = make_examples(db, 480)
    train, held_out = examples[:460], examples[460:]

    llm = TransparentLLM(seed=11)
    pipeline = RTSPipeline(llm, RTSConfig(seed=3, alpha=0.25))
    pipeline.fit_task(
        "table", [SchemaLinkingInstance.for_tables(e, db) for e in train]
    )

    outcomes = [
        pipeline.link(SchemaLinkingInstance.for_tables(e, db), mode="abstain")
        for e in held_out
    ]
    report = build_report(outcomes)
    em, tar, far = report.as_row()
    print(f"held-out linking: EM={em:.1f}% TAR={tar:.1f}% FAR={far:.1f}%")

    # Execute the gold SQL of answered questions against the real DB.
    executor = Executor({"shop": pdb})
    for outcome in outcomes:
        if outcome.predicted is None:
            print(f"  [abstained] {outcome.instance.question}")
            continue
        example = next(e for e in held_out
                       if outcome.instance.instance_id.startswith(e.example_id))
        result = executor.execute("shop", example.gold_sql)
        print(f"  linked {list(outcome.predicted)!r} -> {len(result.rows)} row(s)")
    executor.close()


if __name__ == "__main__":
    main()
