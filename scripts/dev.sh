#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — the same gates, the same
# commands, so "works on my machine" and "works in CI" are one claim.
#
#   scripts/dev.sh lint          # ruff check + format gate
#   scripts/dev.sh test          # tier-1 pytest suite
#   scripts/dev.sh docs-check    # README/docs code-block flags vs --help
#   scripts/dev.sh lint-invariants # repro-lint: AST invariant checkers
#                                # (determinism, lock discipline, lifecycle,
#                                # IPC protocol, exception hygiene)
#   scripts/dev.sh bench-smoke   # micro-benchmarks once each + JSON artifact
#   scripts/dev.sh sweep-smoke   # sharded sweep + warm-cache + merge identity
#   scripts/dev.sh service-smoke # simulator/async/process byte identity,
#                                # kill-one-worker crash recovery, compacted
#                                # SQLite-indexed warm run with zero misses,
#                                # legacy base64 store read + migrate in place
#   scripts/dev.sh serve-smoke   # repro-serve over two unix-socket workers
#                                # with deadlines + fleet/bearer tokens:
#                                # deadline 503s without duplicates, HTTP
#                                # answers byte-identical to repro-run,
#                                # duplicate-query cache hits, SIGKILL one
#                                # worker mid-load and assert clean recovery,
#                                # SIGTERM-drain one worker mid-burst with
#                                # zero requeues, latency histograms populated
#   scripts/dev.sh all           # everything, in CI order (the default)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

lint() {
  command -v ruff >/dev/null || {
    echo "scripts/dev.sh: ruff not found — pip install 'ruff>=0.4'" >&2
    exit 3
  }
  ruff check src tests benchmarks examples scripts/check_docs_flags.py
  # New subsystems hold the line on formatting; legacy files migrate over time.
  ruff format --check src/repro/runtime src/repro/analysis scripts/check_docs_flags.py tests/test_runtime.py tests/test_sweep.py tests/test_service.py tests/test_remote.py tests/test_serve.py tests/test_backend_spec.py tests/test_docs.py tests/test_lint.py tests/helpers.py
}

tier1() {
  python -m pytest -x -q
}

docs_check() {
  python scripts/check_docs_flags.py
}

lint_invariants() {
  # Same entry point as the installed `repro-lint` console script. The
  # checked-in baseline is empty on purpose: new findings either get
  # fixed or carry a reasoned `# repro-lint: ignore[...]` in the diff.
  python -c 'import sys; from repro.analysis.cli import main_lint; sys.exit(main_lint(sys.argv[1:]))' \
    src/repro --baseline .repro-lint-baseline.json
}

bench_smoke() {
  mkdir -p out
  python -m pytest benchmarks/bench_micro.py -q \
    --benchmark-min-rounds=1 --benchmark-warmup=off --benchmark-max-time=0.1 \
    --benchmark-json=out/bench-smoke.json

  # Surface the headline ratios (vectorized trace synthesis, binary
  # store warm reads, shared-memory IPC) in the job log so regressions
  # are visible without opening the JSON artifact.
  python - out/bench-smoke.json <<'PY'
import json
import sys

benchmarks = json.load(open(sys.argv[1]))["benchmarks"]
rows = {bench["name"]: bench["stats"]["mean"] for bench in benchmarks}
extra = {bench["name"]: bench.get("extra_info", {}) for bench in benchmarks}

for mode in ("forced", "free"):
    scalar = rows.get(f"test_bench_synthesis_scalar_{mode}")
    fast = rows.get(f"test_bench_synthesis_vectorized_{mode}")
    if scalar and fast:
        print(f"trace-synthesis {mode}: {scalar / fast:.1f}x "
              f"(scalar {scalar * 1e3:.1f}ms -> vectorized {fast * 1e3:.1f}ms)")

b64 = rows.get("test_bench_store_warm_read_base64")
raw = rows.get("test_bench_store_warm_read_binary")
if b64 and raw:
    nbytes = extra["test_bench_store_warm_read_binary"].get("payload_bytes", 0)
    print(f"store-roundtrip warm read: {b64 / raw:.1f}x "
          f"(base64 {b64 * 1e3:.1f}ms -> binary mmap {raw * 1e3:.1f}ms, "
          f"{nbytes / raw / 1e6:.0f} MB/s)")

pipe = rows.get("test_bench_ipc_pipe_inline")
shm = rows.get("test_bench_ipc_pipe_shm")
if pipe and shm:
    nbytes = extra["test_bench_ipc_pipe_shm"].get("payload_bytes", 0)
    traces = extra["test_bench_ipc_pipe_shm"].get("traces", 0)
    print(f"ipc-throughput pipe: {pipe / shm:.1f}x "
          f"(inline {pipe * 1e3:.1f}ms -> shm {shm * 1e3:.1f}ms, "
          f"{nbytes / shm / 1e6:.0f} MB/s, {traces / shm:.0f} traces/s)")
PY
}

sweep_smoke() {
  local out=out/sweep-smoke
  rm -rf "$out"
  mkdir -p "$out"
  local axes=(--benchmarks bird --splits dev --tasks table --modes abstain human
              --seeds 3 --scale tiny --limit 4 --workers 1)
  # Same entry point as the installed `repro-sweep` console script.
  sweep() {
    python -c 'import sys; from repro.runtime.cli import main_sweep; sys.exit(main_sweep(sys.argv[1:]))' "$@"
  }

  # Cold 2-shard sweep: shards share one persistent generation cache.
  sweep run "${axes[@]}" --shard-index 0 --shard-count 2 \
    --out "$out/sharded-cold" --cache-dir "$out/gen-cache" > "$out/cold-shard-0.json"
  sweep run "${axes[@]}" --shard-index 1 --shard-count 2 \
    --out "$out/sharded-cold" --cache-dir "$out/gen-cache" > "$out/cold-shard-1.json"
  sweep merge --out "$out/sharded-cold" > "$out/merge-sharded-cold.json"

  # The same 2-shard sweep again, warm: every generation must come from
  # the persistent cache (zero misses per shard).
  sweep run "${axes[@]}" --shard-index 0 --shard-count 2 \
    --out "$out/sharded-warm" --cache-dir "$out/gen-cache" > "$out/warm-shard-0.json"
  sweep run "${axes[@]}" --shard-index 1 --shard-count 2 \
    --out "$out/sharded-warm" --cache-dir "$out/gen-cache" > "$out/warm-shard-1.json"
  sweep merge --out "$out/sharded-warm" > "$out/merge-sharded-warm.json"

  # Unsharded reference run against the same cache.
  sweep run "${axes[@]}" --out "$out/unsharded" --cache-dir "$out/gen-cache" \
    > "$out/unsharded.json"
  sweep merge --out "$out/unsharded" > "$out/merge-unsharded.json"

  # Merges must be byte-identical however the sweep was sharded.
  cmp "$out/sharded-cold/sweep-summary.json" "$out/unsharded/sweep-summary.json"
  cmp "$out/sharded-warm/sweep-summary.json" "$out/unsharded/sweep-summary.json"

  # Warm runs must report ~100% cache hits and zero new LLM generations.
  python - "$out/warm-shard-0.json" "$out/warm-shard-1.json" "$out/unsharded.json" <<'PY'
import json
import sys

for path in sys.argv[1:]:
    stats = json.load(open(path))["runtime"]["generation_cache"]
    assert stats["misses"] == 0, f"{path}: warm run recomputed generations: {stats}"
    assert stats["hit_rate"] == 1.0, f"{path}: warm hit rate not 100%: {stats}"
    print(f"sweep-smoke OK {path}: {stats}")
PY
  echo "sweep-smoke passed: byte-identical merges, warm cache fully hit"
}

service_smoke() {
  local out=out/service-smoke
  rm -rf "$out"
  mkdir -p "$out"
  local axes=(--benchmark bird --split dev --task table --mode abstain
              --scale tiny --limit 4 --workers 2)
  # Same entry points as the installed console scripts.
  run() {
    python -c 'import sys; from repro.runtime.cli import main; sys.exit(main(sys.argv[1:]))' "$@"
  }
  cache() {
    python -c 'import sys; from repro.runtime.cli import main_cache; sys.exit(main_cache(sys.argv[1:]))' "$@"
  }

  # One unit under each generation backend, independent cold caches.
  run "${axes[@]}" --backend simulator --artifact "$out/sim.jsonl" \
    --cache-dir "$out/gen-sim" > "$out/sim.json"
  run "${axes[@]}" --backend async --max-batch 4 --max-wait-ms 2 \
    --artifact "$out/async.jsonl" --cache-dir "$out/gen-async" > "$out/async.json"
  run "${axes[@]}" --backend process --worker-log-dir "$out/worker-logs" \
    --artifact "$out/process.jsonl" --cache-dir "$out/gen-process" \
    > "$out/process.json"

  # The backend axis must not change a single summary byte.
  cmp "$out/sim.jsonl.summary.json" "$out/async.jsonl.summary.json"
  cmp "$out/sim.jsonl.summary.json" "$out/process.jsonl.summary.json"

  # Crash recovery: SIGKILL one worker mid-batch; the run must still
  # complete with traces bit-identical to the simulator's, the victim
  # replaced, and its in-flight requests requeued (never lost or run
  # twice). Worker stderr lands in worker-logs/ for the CI artifact.
  REPRO_WORKER_CHAOS_DELAY_MS=40 python - "$out/worker-logs" <<'PY'
import os
import signal
import sys
import threading

from repro.core.pipeline import RTSPipeline
from repro.corpus.bird import BirdBuilder
from repro.corpus.generator import CorpusScale
from repro.llm.model import TransparentLLM
from repro.runtime.remote import ProcessBackend
from repro.runtime.service import FORCED, FREE, GenerationRequest, SimulatorBackend

bench = BirdBuilder(seed=7, scale=CorpusScale.tiny()).build()
instances = [RTSPipeline.instance_for(e, bench, "table") for e in bench.dev.examples]
requests = [GenerationRequest(FREE, i) for i in instances]
requests += [GenerationRequest(FORCED, i) for i in instances]
reference = SimulatorBackend(TransparentLLM(seed=11)).generate(requests)

with ProcessBackend(TransparentLLM(seed=11), workers=2, log_dir=sys.argv[1]) as backend:
    victim = backend.ping()[0]
    threading.Timer(0.2, os.kill, (victim, signal.SIGKILL)).start()
    traces = backend.generate(requests)
    stats = backend.stats

assert len(traces) == len(reference), "a generation was lost"
for a, b in zip(reference, traces):
    assert a.instance_id == b.instance_id
    assert a.hidden_matrix().tobytes() == b.hidden_matrix().tobytes()
    assert [s.proposed for s in a.steps] == [s.proposed for s in b.steps]
assert stats.n_restarts >= 1, f"victim never replaced: {stats}"
assert stats.n_requeued >= 1, f"in-flight work never requeued: {stats}"
assert stats.n_duplicate_results == 0, f"a generation resolved twice: {stats}"
print(f"kill-one-worker recovery OK: {stats}")
PY

  # Compact the async store (builds the SQLite index tier), then a warm
  # re-run against it: byte-identical summary, zero new generations.
  cache stats --cache-dir "$out/gen-async" > "$out/cache-stats-before.json"
  cache compact --cache-dir "$out/gen-async" > "$out/cache-compact.json"
  cache stats --cache-dir "$out/gen-async" > "$out/cache-stats-after.json"
  run "${axes[@]}" --backend async --artifact "$out/warm.jsonl" \
    --cache-dir "$out/gen-async" > "$out/warm.json"
  cmp "$out/sim.jsonl.summary.json" "$out/warm.jsonl.summary.json"

  python - "$out" <<'PY'
import json
import sys
from pathlib import Path

out = Path(sys.argv[1])
warm = json.loads((out / "warm.json").read_text())["generation_cache"]
assert warm["misses"] == 0, f"warm run recomputed generations: {warm}"
assert warm["hit_rate"] == 1.0, f"warm hit rate not 100%: {warm}"
stats = json.loads((out / "cache-stats-after.json").read_text())["namespaces"]
(namespace,) = stats
assert stats[namespace]["indexed"], f"compaction built no index: {stats}"
assert stats[namespace]["segments"] == 1, f"compaction left segments: {stats}"
print(f"service-smoke OK: warm={warm} store={stats[namespace]}")
PY

  # Legacy-store migration: a cold run writes with the legacy base64
  # codec, the current code reads it warm (byte-identical summary,
  # zero misses), `repro-cache migrate` transcodes every record to the
  # binary layout, and a final warm run against the migrated store is
  # still fully hit and byte-identical.
  REPRO_STORE_CODEC=base64 run "${axes[@]}" --backend simulator \
    --artifact "$out/legacy-cold.jsonl" --cache-dir "$out/gen-legacy" \
    > "$out/legacy-cold.json"
  cmp "$out/sim.jsonl.summary.json" "$out/legacy-cold.jsonl.summary.json"
  run "${axes[@]}" --backend simulator --artifact "$out/legacy-warm.jsonl" \
    --cache-dir "$out/gen-legacy" > "$out/legacy-warm.json"
  cmp "$out/sim.jsonl.summary.json" "$out/legacy-warm.jsonl.summary.json"
  cache stats --cache-dir "$out/gen-legacy" > "$out/legacy-stats-before.json"
  cache migrate --cache-dir "$out/gen-legacy" > "$out/legacy-migrate.json"
  cache stats --cache-dir "$out/gen-legacy" > "$out/legacy-stats-after.json"
  run "${axes[@]}" --backend simulator --artifact "$out/migrated-warm.jsonl" \
    --cache-dir "$out/gen-legacy" > "$out/migrated-warm.json"
  cmp "$out/sim.jsonl.summary.json" "$out/migrated-warm.jsonl.summary.json"

  python - "$out" <<'PY'
import json
import sys
from pathlib import Path

out = Path(sys.argv[1])
before = json.loads((out / "legacy-stats-before.json").read_text())["namespaces"]
(namespace,) = before
codecs = before[namespace]["codecs"]
assert set(codecs) == {"base64"}, f"legacy store not pure base64: {codecs}"
migrate = json.loads((out / "legacy-migrate.json").read_text())["compacted"]
transcoded = migrate[namespace]["transcoded"]
assert transcoded > 0, f"migrate transcoded nothing: {migrate}"
after = json.loads((out / "legacy-stats-after.json").read_text())["namespaces"]
codecs = after[namespace]["codecs"]
assert set(codecs) == {"binary"}, f"migration left legacy records: {codecs}"
for path in ("legacy-warm.json", "migrated-warm.json"):
    warm = json.loads((out / path).read_text())["generation_cache"]
    assert warm["misses"] == 0, f"{path}: warm run recomputed generations: {warm}"
print(f"legacy-store migration OK: {transcoded} records transcoded, "
      f"store now {codecs}")
PY
  echo "service-smoke passed: backends byte-identical (incl. process)," \
       "kill-one-worker recovery clean, compacted+indexed warm run fully hit," \
       "legacy base64 store read+migrated in place with summaries unchanged"
}

serve_smoke() {
  local out=out/serve-smoke
  rm -rf "$out"
  mkdir -p "$out"
  run() {
    python -c 'import sys; from repro.runtime.cli import main; sys.exit(main(sys.argv[1:]))' "$@"
  }

  # Offline reference artifacts: the lines repro-serve's records must
  # byte-match for the same (benchmark, example, task, mode).
  local axes=(--benchmark bird --split dev --mode abstain --scale tiny --workers 2)
  run "${axes[@]}" --task table --artifact "$out/offline-table.jsonl" \
    --cache-dir "$out/gen-offline" > "$out/offline-table.json"
  run "${axes[@]}" --task column --artifact "$out/offline-column.jsonl" \
    --cache-dir "$out/gen-offline" > "$out/offline-column.json"

  # The server: two unix-socket workers, chaos-delayed generations so
  # the mid-load SIGKILL below reliably lands on in-flight requests —
  # and the full SLO surface on: a default request deadline, a fleet
  # token on the worker socket, a bearer token on /v1/*.
  REPRO_WORKER_CHAOS_DELAY_MS=40 \
  REPRO_FLEET_TOKEN=smoke-fleet-token \
  REPRO_SERVE_TOKEN=smoke-serve-token \
  python -c \
    'import sys; from repro.runtime.serve import main_serve; sys.exit(main_serve(sys.argv[1:]))' \
    --benchmark bird --scale tiny --backend process --transport unix \
    --gen-workers 2 --request-timeout-s 30 \
    --worker-log-dir "$out/worker-logs" \
    > "$out/serve-ready.json" 2> "$out/serve.log" &
  local server_pid=$!
  trap 'kill "$server_pid" 2>/dev/null || true' RETURN

  for _ in $(seq 1 240); do
    [ -s "$out/serve-ready.json" ] && break
    kill -0 "$server_pid" 2>/dev/null || {
      echo "serve-smoke: server died before ready (see $out/serve.log)" >&2
      exit 1
    }
    sleep 0.5
  done
  [ -s "$out/serve-ready.json" ] || {
    echo "serve-smoke: server never printed its ready line" >&2
    exit 1
  }

  python - "$out" <<'PY'
import json
import os
import signal
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

out = Path(sys.argv[1])
ready = json.loads((out / "serve-ready.json").read_text())
base = f"http://{ready['host']}:{ready['port']}"
assert ready["transport"] == "unix" and len(ready["worker_pids"]) == 2, ready
BEARER = {"Authorization": "Bearer smoke-serve-token"}


def get(path, headers=BEARER):
    request = urllib.request.Request(base + path, headers=headers)
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def query(payload, headers=BEARER):
    request = urllib.request.Request(
        base + "/v1/query",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **headers},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def expect_status(status, fn, *args, **kwargs):
    try:
        fn(*args, **kwargs)
    except urllib.error.HTTPError as exc:
        assert exc.code == status, f"expected {status}, got {exc.code}"
        return json.loads(exc.read())
    raise AssertionError(f"expected HTTP {status}, request succeeded")


def offline(task):
    return {
        record["instance_id"].split("/")[0]: record
        for record in map(
            json.loads, (out / f"offline-{task}.jsonl").read_text().splitlines()
        )
        if "instance_id" in record
    }


def check(task, response, reference):
    got = json.dumps(response["record"], sort_keys=True)
    want = json.dumps(reference, sort_keys=True)
    assert got == want, f"{task} record drifted from offline:\n {got}\n {want}"


health = get("/healthz", headers={})  # liveness never needs credentials
assert health["status"] == "ok" and health["workers_alive"] == 2, health
assert health["workers_draining"] == 0, health

# Phase 0a: the bearer gate — unauthenticated /v1/* is 401, /healthz open.
some_example = next(iter(offline("table")))
unauthorized = expect_status(
    401, query, {"example_id": some_example, "task": "table"}, headers={}
)
assert unauthorized["error_type"] == "unauthorized", unauthorized
expect_status(401, get, "/v1/stats", headers={})

# Phase 0b: a chaos-delayed query with a tight per-request deadline is
# a 503 with the documented body; the generation is disowned, never
# duplicated (the same example answers byte-identically in phase 1).
deadline = expect_status(
    503, query, {"example_id": some_example, "task": "table", "timeout_s": 0.01}
)
assert deadline["error_type"] == "deadline_exceeded", deadline
assert deadline["retryable"] is True and deadline["timeout_s"] == 0.01, deadline
stats = get("/v1/stats")
assert stats["requests"]["n_deadline_exceeded"] >= 1, stats["requests"]
assert stats["supervisor"]["n_deadline_exceeded"] >= 1, stats["supervisor"]
assert stats["supervisor"]["n_duplicate_results"] == 0, stats["supervisor"]

# Phase 1: every table answer byte-matches the offline artifact; the
# same queries again (concurrently) must be L1 cache hits.
table = offline("table")
assert table, "offline table artifact is empty"
for example_id, reference in table.items():
    check("table", query({"example_id": example_id, "task": "table"}), reference)
with ThreadPoolExecutor(max_workers=8) as pool:
    repeats = list(
        pool.map(lambda i: query({"example_id": i, "task": "table"}), table)
    )
for response in repeats:
    check("table", response, table[response["example_id"]])
    tier = response["diagnostics"]["cache_tier"]
    assert tier == "memory", f"duplicate query missed L1: {tier!r}"

# Phase 2: SIGKILL one socket worker while a concurrent burst of
# uncached column queries is in flight; every answer must still
# byte-match the offline artifact.
column = offline("column")
assert column, "offline column artifact is empty"
victim = get("/v1/stats")["worker_pids"][0]
threading.Timer(0.1, os.kill, (victim, signal.SIGKILL)).start()
with ThreadPoolExecutor(max_workers=8) as pool:
    burst = list(
        pool.map(lambda i: query({"example_id": i, "task": "column"}), column)
    )
for response in burst:
    check("column", response, column[response["example_id"]])

stats = get("/v1/stats")
supervisor = stats["supervisor"]
assert supervisor["n_restarts"] >= 1, f"victim never replaced: {supervisor}"
assert supervisor["n_requeued"] >= 1, f"in-flight work never requeued: {supervisor}"
assert supervisor["n_duplicate_results"] == 0, f"a result resolved twice: {supervisor}"
assert stats["tiers"]["memory"]["hits"] >= len(table), f"no L1 hits: {stats['tiers']}"
assert stats["requests"]["n_queries"] >= 2 * len(table) + len(column), stats["requests"]

# Phase 3: SIGTERM one worker mid-burst — a graceful drain. It must
# finish in-flight work, deregister with zero additional requeues, and
# its replacement must keep capacity level.
requeued_before = supervisor["n_requeued"]
victim = stats["worker_pids"][0]
threading.Timer(0.1, os.kill, (victim, signal.SIGTERM)).start()
with ThreadPoolExecutor(max_workers=8) as pool:
    drain_burst = list(
        pool.map(lambda i: query({"example_id": i, "task": "column"}), column)
    )
for response in drain_burst:
    check("column", response, column[response["example_id"]])
for _ in range(200):
    supervisor = get("/v1/stats")["supervisor"]
    if supervisor["n_drained"] >= 1 and supervisor["n_alive"] == 2:
        break
    time.sleep(0.05)
assert supervisor["n_drained"] >= 1, f"SIGTERM never drained: {supervisor}"
assert supervisor["n_alive"] == 2, f"drained capacity not replaced: {supervisor}"
assert supervisor["n_requeued"] == requeued_before, (
    f"a drain requeued work (SIGTERM behaved like a crash): {supervisor}"
)
assert supervisor["n_duplicate_results"] == 0, supervisor

# The latency histograms regressed against by the traffic-replay
# benchmark: non-empty buckets and finite percentiles per endpoint.
stats = get("/v1/stats")
for endpoint in ("query", "healthz", "stats"):
    histogram = stats["latency"]["endpoints"][endpoint]
    assert histogram["count"] >= 1, f"{endpoint}: empty histogram"
    assert sum(histogram["bucket_counts"]) == histogram["count"], histogram
    for quantile in ("p50_ms", "p95_ms", "p99_ms"):
        assert histogram[quantile] is not None, f"{endpoint}: {quantile} missing"
assert "memory" in stats["latency"]["tiers"], stats["latency"]["tiers"]
print(
    f"serve-smoke OK: {stats['requests']['n_queries']} queries byte-identical "
    f"to offline, deadline 503s={stats['requests']['n_deadline_exceeded']}, "
    f"drained={supervisor['n_drained']}, supervisor={supervisor}, "
    f"query p95={stats['latency']['endpoints']['query']['p95_ms']}ms"
)
PY

  kill "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
  echo "serve-smoke passed: deadline 503s without duplicates, auth gates hold," \
       "HTTP answers byte-identical to repro-run, duplicate queries hit L1," \
       "SIGKILLed worker recovered and SIGTERMed worker drained with zero requeues"
}

case "${1:-all}" in
  lint) lint ;;
  test) tier1 ;;
  docs-check) docs_check ;;
  lint-invariants) lint_invariants ;;
  bench-smoke) bench_smoke ;;
  sweep-smoke) sweep_smoke ;;
  service-smoke) service_smoke ;;
  serve-smoke) serve_smoke ;;
  all) lint; lint_invariants; tier1; docs_check; bench_smoke; sweep_smoke; service_smoke; serve_smoke ;;
  *) echo "usage: scripts/dev.sh [lint|lint-invariants|test|docs-check|bench-smoke|sweep-smoke|service-smoke|serve-smoke|all]" >&2; exit 2 ;;
esac
