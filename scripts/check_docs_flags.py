"""The docs-vs-``--help`` gate: documented flags must exist.

Scans fenced code blocks in README.md and docs/*.md for invocations of
the repro CLIs and fails if any ``--flag`` they show is not reported by
that CLI's ``--help`` (i.e. registered on its argparse parser,
subcommands included). Prose can say anything; code blocks are promises.

Run directly (``python scripts/check_docs_flags.py``) or via
``scripts/dev.sh docs-check``; CI runs it next to the tier-1 suite.
Exit status: 0 clean, 1 on violations (each printed as
``path:line: message``), 2 when a scanned doc is missing.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

FENCE = re.compile(r"^(`{3,}|~{3,})")
FLAG = re.compile(r"(?<![\w-])--[a-zA-Z0-9][\w-]*")


def parser_builders() -> dict:
    """name -> zero-arg builder for every installed console script."""
    from repro.analysis.cli import build_lint_parser
    from repro.runtime.cli import build_cache_parser, build_parser, build_sweep_parser
    from repro.runtime.remote import build_worker_parser
    from repro.runtime.serve import build_serve_parser

    return {
        "repro-run": build_parser,
        "repro-sweep": build_sweep_parser,
        "repro-cache": build_cache_parser,
        "repro-serve": build_serve_parser,
        "repro-worker": build_worker_parser,
        "repro-lint": build_lint_parser,
    }


def collect_flags(parser: argparse.ArgumentParser) -> "set[str]":
    """Every ``--flag`` the parser (and its subparsers) reports."""
    flags: "set[str]" = set()
    stack = [parser]
    while stack:
        current = stack.pop()
        for action in current._actions:
            flags.update(o for o in action.option_strings if o.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):
                stack.extend(action.choices.values())
    return flags


def code_block_lines(text: str) -> "list[tuple[int, str]]":
    """(line_number, line) for every line inside a fenced code block."""
    lines: "list[tuple[int, str]]" = []
    fence: "str | None" = None
    for number, line in enumerate(text.splitlines(), start=1):
        match = FENCE.match(line.strip())
        if match:
            marker = match.group(1)[0] * 3
            if fence is None:
                fence = marker
            elif line.strip().startswith(fence):
                fence = None
            continue
        if fence is not None:
            lines.append((number, line))
    return lines


def logical_commands(lines) -> "list[tuple[int, str]]":
    """Join backslash-continued lines into one logical command each."""
    joined: "list[tuple[int, str]]" = []
    buffer = ""
    start = 0
    for number, line in lines:
        if not buffer:
            start = number
        buffer += line.rstrip()
        if buffer.endswith("\\"):
            buffer = buffer[:-1] + " "
            continue
        joined.append((start, buffer))
        buffer = ""
    if buffer:
        joined.append((start, buffer))
    return joined


def check_file(path: Path, known: "dict[str, set[str]]") -> "list[str]":
    violations: "list[str]" = []
    relative = path.relative_to(REPO) if path.is_relative_to(REPO) else path
    for number, command in logical_commands(code_block_lines(path.read_text())):
        cli = next((name for name in known if name in command), None)
        if cli is None:
            continue  # not a repro invocation (curl, kill, dev.sh, ...)
        for flag in FLAG.findall(command):
            if flag not in known[cli]:
                violations.append(
                    f"{relative}:{number}: {cli} --help does not report "
                    f"{flag!r} (documented in a code block)"
                )
    return violations


def scan(paths: "list[Path] | None" = None) -> "list[str]":
    if paths is None:
        paths = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    known = {
        name: collect_flags(builder()) for name, builder in parser_builders().items()
    }
    violations: "list[str]" = []
    for path in paths:
        if not path.is_file():
            violations.append(f"{path}: documented file is missing")
            continue
        violations.extend(check_file(path, known))
    return violations


def main() -> int:
    expected = [REPO / "README.md", REPO / "docs" / "architecture.md",
                REPO / "docs" / "operations.md", REPO / "docs" / "http-api.md",
                REPO / "docs" / "static-analysis.md"]
    missing = [path for path in expected if not path.is_file()]
    if missing:
        for path in missing:
            print(f"docs-check: missing {path.relative_to(REPO)}", file=sys.stderr)
        return 2
    violations = scan()
    for violation in violations:
        print(f"docs-check: {violation}", file=sys.stderr)
    if violations:
        return 1
    scanned = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    print(
        f"docs-check OK: {len(scanned)} docs, every code-block flag "
        "reported by --help"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
