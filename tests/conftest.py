"""Shared fixtures: tiny benchmarks, a simulated LLM, hand-built schemas.

Expensive artifacts (benchmarks, fitted pipelines) are session-scoped;
tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro.abstention.surrogate import SurrogateFilter
from repro.corpus.bird import BirdBuilder
from repro.corpus.dataset import InstanceFeatures
from repro.corpus.generator import CorpusScale
from repro.corpus.spider import SpiderBuilder
from repro.core.config import RTSConfig
from repro.core.pipeline import RTSPipeline
from repro.linking.instance import SchemaLinkingInstance
from repro.llm.model import TransparentLLM
from repro.schema.column import Column, ColumnType
from repro.schema.database import Database
from repro.schema.table import ForeignKey, Table


def make_column(name: str, ctype=ColumnType.INTEGER, pk=False, words=None, pool="generic"):
    return Column(
        name=name,
        ctype=ctype,
        semantic_words=tuple(words or name.split("_")),
        is_primary=pk,
        value_pool=pool,
    )


def make_racing_db() -> Database:
    """A hand-built 4-table schema used across LLM/session tests."""
    races = Table(
        name="races",
        semantic_words=("races",),
        columns=(
            make_column("race_id", pk=True, pool="serial"),
            make_column("race_name", ColumnType.TEXT, words=["race", "name"], pool="word"),
            make_column("season_year", pool="year:2000..2020"),
        ),
    )
    drivers = Table(
        name="drivers",
        semantic_words=("drivers",),
        columns=(
            make_column("driver_id", pk=True, pool="serial"),
            make_column("surname", ColumnType.TEXT, words=["surname"], pool="person_last"),
        ),
    )
    lap_times = Table(
        name="lap_times",
        semantic_words=("lap", "times"),
        columns=(
            make_column("lap_id", pk=True, pool="serial"),
            make_column("race_id", pool="serial"),
            make_column("driver_id", pool="serial"),
            make_column("lap_milliseconds", words=["lap", "milliseconds"], pool="int:60000..120000"),
        ),
        foreign_keys=(
            ForeignKey("race_id", "races", "race_id"),
            ForeignKey("driver_id", "drivers", "driver_id"),
        ),
    )
    pit_stops = Table(
        name="pit_stops",
        semantic_words=("pit", "stops"),
        columns=(
            make_column("stop_id", pk=True, pool="serial"),
            make_column("race_id", pool="serial"),
            make_column("stop_milliseconds", words=["stop", "milliseconds"], pool="int:19000..40000"),
        ),
        foreign_keys=(ForeignKey("race_id", "races", "race_id"),),
    )
    return Database(name="racing_test", tables=(races, drivers, lap_times, pit_stops))


def make_instance(
    db: Database,
    gold: tuple[str, ...],
    task: str = "table",
    instance_id: str = "t1/table",
    difficulty: str = "simple",
) -> SchemaLinkingInstance:
    features = InstanceFeatures(
        table_ambiguity=0.0,
        column_ambiguity=0.0,
        dirty_gap=0.0,
        needs_knowledge=False,
        n_tables=len(db.tables),
        n_gold_tables=len(gold),
        n_gold_columns=2,
    )
    return SchemaLinkingInstance(
        instance_id=instance_id,
        db=db,
        question="test question",
        features=features,
        task=task,
        candidates=tuple(t.name for t in db.tables) if task == "table" else gold,
        gold_items=gold,
        difficulty=difficulty,
    )


@pytest.fixture(scope="session")
def racing_db() -> Database:
    return make_racing_db()


@pytest.fixture(scope="session")
def llm() -> TransparentLLM:
    return TransparentLLM(seed=11)


@pytest.fixture(scope="session")
def bird_tiny():
    return BirdBuilder(seed=7, scale=CorpusScale.tiny()).build()


@pytest.fixture(scope="session")
def spider_tiny():
    return SpiderBuilder(seed=7, scale=CorpusScale.tiny()).build()


@pytest.fixture(scope="session")
def fitted_pipeline(llm, bird_tiny) -> RTSPipeline:
    pipe = RTSPipeline(llm, RTSConfig(seed=3))
    pipe.fit_benchmark(bird_tiny)
    return pipe


@pytest.fixture(scope="session")
def surrogate_tiny(bird_tiny) -> SurrogateFilter:
    return SurrogateFilter(seed=5).fit(list(bird_tiny.train), bird_tiny.databases)
