"""Shared fixtures: tiny benchmarks, a simulated LLM, hand-built schemas.

Schema/instance builders live in :mod:`helpers` (importable without
fixture machinery); this conftest wires them into session-scoped
fixtures. Expensive artifacts (benchmarks, fitted pipelines) are
session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import pytest
from hypothesis import settings

from helpers import make_racing_db

from repro.abstention.surrogate import SurrogateFilter
from repro.corpus.bird import BirdBuilder
from repro.corpus.generator import CorpusScale
from repro.corpus.spider import SpiderBuilder
from repro.core.config import RTSConfig
from repro.core.pipeline import RTSPipeline
from repro.llm.model import TransparentLLM
from repro.schema.database import Database

# Property tests must be reproducible in CI: statistical assertions (e.g.
# empirical conformal coverage) have seed-dependent tails, and a fresh
# random draw per run turns those tails into flakes.
settings.register_profile("ci", derandomize=True)
settings.load_profile("ci")


@pytest.fixture(scope="session")
def racing_db() -> Database:
    return make_racing_db()


@pytest.fixture(scope="session")
def llm() -> TransparentLLM:
    return TransparentLLM(seed=11)


@pytest.fixture(scope="session")
def bird_tiny():
    return BirdBuilder(seed=7, scale=CorpusScale.tiny()).build()


@pytest.fixture(scope="session")
def spider_tiny():
    return SpiderBuilder(seed=7, scale=CorpusScale.tiny()).build()


@pytest.fixture(scope="session")
def fitted_pipeline(llm, bird_tiny) -> RTSPipeline:
    pipe = RTSPipeline(llm, RTSConfig(seed=3))
    pipe.fit_benchmark(bird_tiny)
    return pipe


@pytest.fixture(scope="session")
def surrogate_tiny(bird_tiny) -> SurrogateFilter:
    return SurrogateFilter(seed=5).fit(list(bird_tiny.train), bird_tiny.databases)
