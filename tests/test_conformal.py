"""Tests for conformal prediction: coverage guarantees and the paper's
aggregation theorems (property-based where the math allows)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conformal.aggregate import (
    majority_guarantee,
    majority_size_bound,
    majority_vote,
    random_permutation,
)
from repro.conformal.nonconformity import one_minus_true_prob
from repro.conformal.nonexchangeable import NonexchangeableConformalBinary
from repro.conformal.split import SplitConformalBinary


def synthetic_binary(n, seed, separation=2.0):
    """A well-specified binary problem with imperfect class probabilities."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    scores = labels * separation + rng.normal(size=n)
    p1 = 1.0 / (1.0 + np.exp(-(scores - separation / 2)))
    probs = np.stack([1 - p1, p1], axis=1)
    features = np.stack([scores, rng.normal(size=n)], axis=1)
    return features, probs, labels


class TestNonconformity:
    def test_correct_class_low_score(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        scores = one_minus_true_prob(probs, np.array([0, 1]))
        np.testing.assert_allclose(scores, [0.1, 0.2])

    def test_label_out_of_range(self):
        with pytest.raises(ValueError):
            one_minus_true_prob(np.array([[0.5, 0.5]]), np.array([2]))

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            one_minus_true_prob(np.array([0.5, 0.5]), np.array([0, 1]))


class TestSplitConformal:
    @given(st.integers(0, 10_000), st.sampled_from([0.05, 0.1, 0.2]))
    @settings(max_examples=20, deadline=None)
    def test_marginal_coverage_property(self, seed, alpha):
        """Empirical coverage >= 1 - alpha (within binomial tolerance)."""
        features, probs, labels = synthetic_binary(1200, seed)
        calib, test = slice(0, 600), slice(600, 1200)
        model = SplitConformalBinary(alpha=alpha, mondrian=False).fit(
            probs[calib], labels[calib]
        )
        sets = model.prediction_sets(probs[test])
        covered = np.mean([labels[test][i] in s for i, s in enumerate(sets)])
        assert covered >= 1 - alpha - 0.05  # 3-sigma-ish slack on n=600

    def test_mondrian_class_conditional_coverage(self):
        features, probs, labels = synthetic_binary(4000, 7)
        calib, test = slice(0, 2000), slice(2000, 4000)
        model = SplitConformalBinary(alpha=0.1, mondrian=True).fit(
            probs[calib], labels[calib]
        )
        sets = model.prediction_sets(probs[test])
        for cls in (0, 1):
            mask = labels[test] == cls
            covered = np.mean([cls in s for s, m in zip(sets, mask) if m])
            assert covered >= 0.85

    def test_smaller_alpha_larger_sets(self):
        _f, probs, labels = synthetic_binary(1000, 3)
        tight = SplitConformalBinary(alpha=0.3, mondrian=False).fit(probs, labels)
        loose = SplitConformalBinary(alpha=0.02, mondrian=False).fit(probs, labels)
        sizes_tight = sum(len(s) for s in tight.prediction_sets(probs[:200]))
        sizes_loose = sum(len(s) for s in loose.prediction_sets(probs[:200]))
        assert sizes_loose >= sizes_tight

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SplitConformalBinary(alpha=0.1).prediction_set(np.array([0.5, 0.5]))

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            SplitConformalBinary(alpha=0.1).fit(np.ones((3, 3)), np.zeros(3))


class TestNonexchangeable:
    def test_coverage_on_iid_data(self):
        features, probs, labels = synthetic_binary(1500, 11)
        calib, test = slice(0, 1000), slice(1000, 1500)
        model = NonexchangeableConformalBinary(alpha=0.1, k_neighbors=80, tau=4.0).fit(
            features[calib], probs[calib], labels[calib]
        )
        sets = model.prediction_sets(features[test], probs[test])
        covered = np.mean([labels[test][i] in s for i, s in enumerate(sets)])
        assert covered >= 0.85

    def test_far_test_point_gets_full_set(self):
        features, probs, labels = synthetic_binary(200, 5)
        model = NonexchangeableConformalBinary(alpha=0.1, tau=0.5).fit(
            features, probs, labels
        )
        outlier = np.array([500.0, -500.0])
        s = model.prediction_set(outlier, np.array([0.5, 0.5]))
        assert s == frozenset({0, 1})

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NonexchangeableConformalBinary(alpha=0.1).prediction_set(
                np.zeros(2), np.array([0.5, 0.5])
            )


set_strategy = st.sets(st.sampled_from([0, 1]), min_size=0, max_size=2).map(frozenset)


class TestAggregation:
    def test_majority_hand_case(self):
        sets = [frozenset({1}), frozenset({1}), frozenset({0})]
        assert majority_vote(sets, theta=0.5) == frozenset({1})

    def test_majority_theta_zero_is_union_like(self):
        sets = [frozenset({0}), frozenset({1})]
        assert majority_vote(sets, theta=0.0) == frozenset({0, 1})

    def test_empty_sets_rejected(self):
        with pytest.raises(ValueError):
            majority_vote([], 0.5)
        with pytest.raises(ValueError):
            random_permutation([], np.random.default_rng(0))

    @given(st.lists(set_strategy, min_size=1, max_size=9), st.integers(0, 1 << 30))
    @settings(max_examples=120, deadline=None)
    def test_theorem3_permutation_subset_of_majority(self, sets, seed):
        """|C_pi| <= |C_theta(1/2, non-strict)| — Theorem 3's size claim."""
        rng = np.random.default_rng(seed)
        c_pi = random_permutation(sets, rng)
        c_majority = majority_vote(sets, theta=0.5, strict=False)
        assert c_pi <= c_majority

    @given(st.lists(set_strategy, min_size=1, max_size=9))
    @settings(max_examples=80, deadline=None)
    def test_theorem2_size_bound(self, sets):
        c = majority_vote(sets, theta=0.5)
        bound = majority_size_bound([len(s) for s in sets], theta=0.5)
        assert len(c) <= bound + 1e-9

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_theorem1_coverage_bound_monte_carlo(self, seed):
        """Aggregated coverage >= 1 - 2 alpha when each set covers 1-alpha."""
        rng = np.random.default_rng(seed)
        alpha, n_sets, n_trials = 0.1, 7, 800
        misses = 0
        for _ in range(n_trials):
            true_label = int(rng.integers(0, 2))
            sets = []
            for _k in range(n_sets):
                s = {true_label} if rng.random() > alpha else {1 - true_label}
                sets.append(frozenset(s))
            agg = majority_vote(sets, theta=0.5)
            misses += true_label not in agg
        assert 1 - misses / n_trials >= majority_guarantee(alpha, 0.5) - 0.04

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_theorem3_coverage_bound_monte_carlo(self, seed):
        rng = np.random.default_rng(seed)
        alpha, n_sets, n_trials = 0.1, 7, 800
        misses = 0
        for t in range(n_trials):
            true_label = int(rng.integers(0, 2))
            sets = [
                frozenset({true_label} if rng.random() > alpha else {1 - true_label})
                for _ in range(n_sets)
            ]
            agg = random_permutation(sets, np.random.default_rng(t))
            misses += true_label not in agg
        assert 1 - misses / n_trials >= 1 - 2 * alpha - 0.04

    def test_guarantee_formula(self):
        assert majority_guarantee(0.1, 0.5) == pytest.approx(0.8)
        assert majority_guarantee(0.6, 0.5) == 0.0
        with pytest.raises(ValueError):
            majority_guarantee(0.1, 1.0)

    def test_size_bound_formula(self):
        assert majority_size_bound([2, 2], theta=0.5) == pytest.approx(4.0)
        assert majority_size_bound([1], theta=0.0) == float("inf")
