"""Tests for the MLP probe, sBPP, layer selection, and the mBPP."""

import numpy as np
import pytest

from repro.core.pipeline import RTSPipeline
from repro.linking.dataset import collect_branch_dataset
from repro.probes.mbpp import MultiLayerBPP
from repro.probes.metrics import coverage_and_ear, evaluate_bpp
from repro.probes.mlp import MLPClassifier, MLPConfig
from repro.probes.sbpp import SingleLayerBPP
from repro.probes.selection import rank_layers


class TestMLP:
    def test_learns_linearly_separable(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 4))
        y = (X[:, 0] + X[:, 1] > 0).astype(float)
        clf = MLPClassifier(MLPConfig(epochs=40), seed=1).fit(X, y)
        acc = (clf.predict(X) == y).mean()
        assert acc > 0.95

    def test_learns_xor(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(600, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)
        clf = MLPClassifier(MLPConfig(epochs=200, hidden_units=12), seed=2).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9

    def test_handles_class_imbalance(self):
        rng = np.random.default_rng(2)
        n_pos = 30
        X = np.vstack([rng.normal(3, 1, size=(n_pos, 3)), rng.normal(0, 1, size=(970, 3))])
        y = np.concatenate([np.ones(n_pos), np.zeros(970)])
        clf = MLPClassifier(seed=3).fit(X, y)
        recall = clf.predict(X[:n_pos]).mean()
        assert recall > 0.8

    def test_probabilities_valid(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(50, 2))
        y = (X[:, 0] > 0).astype(float)
        clf = MLPClassifier(MLPConfig(epochs=5), seed=0).fit(X, y)
        probs = clf.predict_proba(X)
        assert probs.shape == (50, 2)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        single = clf.predict_proba(X[0])
        assert single.shape == (2,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict_proba(np.zeros((1, 2)))

    def test_deterministic_training(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(float)
        a = MLPClassifier(seed=7).fit(X, y).decision_function(X)
        b = MLPClassifier(seed=7).fit(X, y).decision_function(X)
        np.testing.assert_array_equal(a, b)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MLPConfig(hidden_units=0)


class TestSelection:
    def test_top_k(self):
        assert rank_layers([0.5, 0.9, 0.7, 0.8], 2) == [1, 3]

    def test_nan_ranks_last(self):
        assert rank_layers([float("nan"), 0.6], 1) == [1]

    def test_tie_prefers_deeper(self):
        assert rank_layers([0.9, 0.9, 0.5], 1) == [1]

    def test_k_validated(self):
        with pytest.raises(ValueError):
            rank_layers([0.5], 0)


@pytest.fixture(scope="module")
def branch_data(llm, bird_tiny):
    instances = [
        RTSPipeline.instance_for(e, bird_tiny, "table") for e in bird_tiny.train
    ]
    return collect_branch_dataset(llm, instances)


class TestSBPPAndMBPP:
    def test_sbpp_fit_and_sets(self, branch_data):
        rng = np.random.default_rng(0)
        calib, train = branch_data.split_by_group(0.5, rng)
        probe = SingleLayerBPP(layer_index=7, alpha=0.1, seed=1).fit(train, calib)
        assert 0.5 < probe.auc <= 1.0
        s = probe.prediction_set(branch_data.hidden[0])
        assert s <= {0, 1}

    def test_sbpp_with_alpha_changes_thresholds(self, branch_data):
        rng = np.random.default_rng(0)
        calib, train = branch_data.split_by_group(0.5, rng)
        probe = SingleLayerBPP(layer_index=7, alpha=0.1, seed=1).fit(train, calib)
        loose = probe.with_alpha(0.02)
        # Smaller alpha -> (weakly) larger sets for the same tokens.
        for i in range(0, branch_data.n_tokens, 37):
            assert probe.prediction_set(branch_data.hidden[i]) <= loose.prediction_set(
                branch_data.hidden[i]
            )

    def test_sbpp_invalid_mode(self):
        with pytest.raises(ValueError):
            SingleLayerBPP(0, conformal_mode="quantum")

    def test_mbpp_train_selects_k(self, branch_data):
        mbpp = MultiLayerBPP.train(branch_data, alpha=0.1, k=3, seed=0)
        assert len(mbpp.sbpps) == 3
        assert len(mbpp.all_probes) == branch_data.n_layers
        assert mbpp.layers == sorted(mbpp.layers)

    def test_mbpp_selects_high_gain_layers(self, branch_data):
        """Top-k selection should land on the mid-late gain peak."""
        mbpp = MultiLayerBPP.train(branch_data, alpha=0.1, k=5, seed=0)
        assert all(3 <= layer <= 10 for layer in mbpp.layers)

    def test_mbpp_predict_dataset_matches_tokenwise(self, branch_data):
        mbpp = MultiLayerBPP.train(branch_data, alpha=0.1, k=3, seed=0)
        batch = mbpp.predict_dataset(branch_data)
        for i in range(0, branch_data.n_tokens, 29):
            single = mbpp.is_branching(
                branch_data.hidden[i], key=("ds", int(branch_data.groups[i]), i)
            )
            assert single == batch[i]

    def test_mbpp_subset_and_method_switch(self, branch_data):
        mbpp = MultiLayerBPP.train(branch_data, alpha=0.1, k=5, seed=0)
        small = mbpp.subset(2, method="majority")
        assert len(small.sbpps) == 2
        assert small.method == "majority"

    def test_mbpp_coverage_respects_guarantee(self, branch_data, llm, bird_tiny):
        mbpp = MultiLayerBPP.train(branch_data, alpha=0.1, k=5, seed=0)
        dev = [
            RTSPipeline.instance_for(e, bird_tiny, "table") for e in bird_tiny.dev
        ]
        dataset = collect_branch_dataset(llm, dev)
        ev = evaluate_bpp(mbpp, dataset)
        # 1 - 2*alpha guarantee with slack for the small dev sample.
        if ev.n_branching >= 5:
            assert ev.coverage >= 0.8 - 0.15

    def test_invalid_aggregation_method(self, branch_data):
        with pytest.raises(ValueError):
            MultiLayerBPP(sbpps=[], method="majority")


class TestMetrics:
    def test_coverage_and_ear_hand_case(self):
        labels = np.array([1, 1, 0, 0, 0], dtype=bool)
        preds = np.array([1, 0, 1, 0, 0], dtype=bool)
        coverage, ear = coverage_and_ear(labels, preds)
        assert coverage == 0.5
        assert ear == 0.2

    def test_no_positives_nan_coverage(self):
        import math

        coverage, ear = coverage_and_ear(np.zeros(4, dtype=bool), np.zeros(4, dtype=bool))
        assert math.isnan(coverage)
        assert ear == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            coverage_and_ear(np.zeros(3, dtype=bool), np.zeros(4, dtype=bool))
