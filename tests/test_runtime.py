"""Tests for the batched evaluation runtime (pool / cache / artifacts / runner)."""

from __future__ import annotations

import json

import pytest

from repro.core.config import RTSConfig
from repro.core.pipeline import RTSPipeline
from repro.llm.model import TransparentLLM
from repro.runtime.artifacts import (
    RunArtifact,
    link_outcome_from_record,
    link_record,
    summarize_link,
)
from repro.runtime.cache import CachingLLM, GenerationCache, instance_key
from repro.runtime.pool import PROCESS, THREAD, WorkerPool
from repro.runtime.runner import BatchRunner


@pytest.fixture(scope="module")
def caching_pipeline(bird_tiny):
    """A pipeline over a caching LLM, fitted once for the module."""
    llm = CachingLLM(TransparentLLM(seed=11))
    pipe = RTSPipeline(llm, RTSConfig(seed=3))
    pipe.fit_benchmark(bird_tiny)
    return pipe


@pytest.fixture(scope="module")
def dev_instances(bird_tiny):
    return [
        RTSPipeline.instance_for(e, bird_tiny, "table") for e in bird_tiny.dev
    ]


# -- worker pool --------------------------------------------------------------


def test_pool_serial_fallback_and_order():
    pool = WorkerPool(workers=1, backend=THREAD)
    assert pool.is_serial
    assert pool.map_ordered(lambda x: x * x, range(7)) == [0, 1, 4, 9, 16, 25, 36]


def test_pool_thread_preserves_input_order():
    pool = WorkerPool(workers=4, backend=THREAD)
    items = list(range(50))
    assert pool.map_ordered(lambda x: -x, items) == [-x for x in items]


def test_pool_rejects_bad_config():
    with pytest.raises(ValueError):
        WorkerPool(workers=2, backend="gpu")
    with pytest.raises(ValueError):
        WorkerPool(workers=0)


def test_pool_empty_input():
    assert WorkerPool(workers=4, backend=THREAD).map_ordered(abs, []) == []


# -- generation cache ---------------------------------------------------------


def test_cache_hit_accounting():
    cache = GenerationCache()
    calls = []
    for _ in range(3):
        cache.get_or_compute("k", lambda: calls.append(1) or "v")
    assert calls == [1]
    assert cache.stats.hits == 2 and cache.stats.misses == 1
    assert cache.stats.hit_rate == pytest.approx(2 / 3)


def test_caching_llm_returns_identical_traces(dev_instances):
    plain = TransparentLLM(seed=11)
    caching = CachingLLM(TransparentLLM(seed=11))
    inst = dev_instances[0]
    first = caching.generate(inst)
    second = caching.generate(inst)
    assert first is second  # memoized, not recomputed
    assert first.items == plain.generate(inst).items
    assert caching.teacher_forced_trace(inst).committed_tokens == (
        plain.teacher_forced_trace(inst).committed_tokens
    )
    assert caching.stats.hits >= 1


def test_instance_key_distinguishes_candidate_universes(bird_tiny):
    """Joint linking builds same-id column instances with different candidates."""
    from repro.linking.instance import SchemaLinkingInstance

    example = bird_tiny.dev.examples[0]
    db = bird_tiny.database(example.db_id).schema
    full = SchemaLinkingInstance.for_columns(example, db)
    restricted = SchemaLinkingInstance.for_columns(
        example, db, restrict_tables=example.gold_tables
    )
    assert full.instance_id == restricted.instance_id
    assert instance_key(full) != instance_key(restricted)


def test_cache_hits_on_joint_sweep(caching_pipeline, bird_tiny):
    runner = BatchRunner(caching_pipeline)
    examples = list(bird_tiny.dev)
    runner.run_joint(examples, bird_tiny, mode="abstain")
    before = caching_pipeline.llm.stats
    runner.run_joint(examples, bird_tiny, mode="abstain")
    after = caching_pipeline.llm.stats
    assert after.hits > before.hits  # repeated generations served from cache
    assert after.misses == before.misses


# -- serial vs parallel determinism -------------------------------------------


@pytest.mark.parametrize("backend", [THREAD, PROCESS])
def test_link_parallel_matches_serial(caching_pipeline, dev_instances, backend):
    serial = BatchRunner(caching_pipeline, workers=1).run_link(dev_instances)
    parallel = BatchRunner(caching_pipeline, workers=4, backend=backend).run_link(
        dev_instances
    )
    # Byte-identical aggregate metrics, per the determinism contract.
    assert json.dumps(serial.summary, sort_keys=True) == json.dumps(
        parallel.summary, sort_keys=True
    )
    assert serial.records == parallel.records


def test_joint_parallel_matches_serial(caching_pipeline, bird_tiny):
    from repro.abstention.human import HumanOracle

    examples = list(bird_tiny.dev)
    serial = BatchRunner(caching_pipeline, workers=1).run_joint(
        examples, bird_tiny, human=HumanOracle(seed=9)
    )
    threaded = BatchRunner(caching_pipeline, workers=4, backend=THREAD).run_joint(
        examples, bird_tiny, human=HumanOracle(seed=9)
    )
    assert serial.records == threaded.records
    assert serial.summary == threaded.summary


def test_branch_dataset_parallel_matches_serial(caching_pipeline, dev_instances):
    import numpy as np

    serial = BatchRunner(caching_pipeline, workers=1).branch_dataset(dev_instances)
    threaded = BatchRunner(caching_pipeline, workers=4, backend=THREAD).branch_dataset(
        dev_instances
    )
    assert np.array_equal(serial.hidden, threaded.hidden)
    assert np.array_equal(serial.labels, threaded.labels)
    assert np.array_equal(serial.groups, threaded.groups)


# -- artifacts: records, checkpoints, resume ----------------------------------


def test_link_record_roundtrip(caching_pipeline, dev_instances):
    outcome = caching_pipeline.link(dev_instances[0])
    record = json.loads(json.dumps(link_record(outcome)))
    restored = link_outcome_from_record(record, dev_instances[0])
    assert restored.predicted == outcome.predicted
    assert restored.unassisted == outcome.unassisted
    assert restored.abstained == outcome.abstained
    assert restored.flags == outcome.flags
    with pytest.raises(ValueError):
        link_outcome_from_record(record, dev_instances[1])


def test_artifact_streams_and_summarizes(caching_pipeline, dev_instances, tmp_path):
    path = tmp_path / "run.jsonl"
    runner = BatchRunner(caching_pipeline, artifact=str(path))
    result = runner.run_link(dev_instances)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == len(dev_instances)
    summary = json.loads(RunArtifact(str(path)).summary_path.read_text())
    assert summary["n"] == result.summary["n"]
    assert summary["tar"] == pytest.approx(result.summary["tar"])


def test_resume_from_truncated_artifact(caching_pipeline, dev_instances, tmp_path):
    path = tmp_path / "run.jsonl"
    full = BatchRunner(caching_pipeline, artifact=str(path)).run_link(dev_instances)
    assert full.n_resumed == 0 and full.n_evaluated == len(dev_instances)

    # Simulate a hard kill: keep 3 complete records, then half a line.
    lines = path.read_text().splitlines(keepends=True)
    path.write_text("".join(lines[:3]) + lines[3][: len(lines[3]) // 2])

    resumed = BatchRunner(caching_pipeline, artifact=str(path)).run_link(dev_instances)
    assert resumed.n_resumed == 3
    assert resumed.n_evaluated == len(dev_instances) - 3
    # The resumed run is bit-identical to the uninterrupted one.
    assert json.dumps(resumed.summary, sort_keys=True) == json.dumps(
        full.summary, sort_keys=True
    )
    assert resumed.records == full.records
    assert len(path.read_text().strip().splitlines()) == len(dev_instances)


def test_checkpoints_stream_before_batch_completes(
    caching_pipeline, dev_instances, tmp_path
):
    """A crash mid-sweep must leave earlier outcomes checkpointed."""
    path = tmp_path / "crash.jsonl"
    boom_id = dev_instances[3].instance_id
    real_link = caching_pipeline.link

    class Exploding:
        def __getattr__(self, name):
            return getattr(caching_pipeline, name)

        def link(self, instance, **kwargs):
            if instance.instance_id == boom_id:
                raise RuntimeError("simulated crash")
            return real_link(instance, **kwargs)

    with pytest.raises(RuntimeError, match="simulated crash"):
        BatchRunner(Exploding(), artifact=str(path)).run_link(dev_instances)
    assert len(path.read_text().strip().splitlines()) == 3  # streamed, not batched

    # And the healthy runner resumes on top of the partial artifact.
    resumed = BatchRunner(caching_pipeline, artifact=str(path)).run_link(dev_instances)
    assert resumed.n_resumed == 3
    assert resumed.n_evaluated == len(dev_instances) - 3


def test_resume_keys_include_run_fingerprint(caching_pipeline, dev_instances, tmp_path):
    """Records from a different-seed run must not be silently reused."""
    path = tmp_path / "fp.jsonl"
    BatchRunner(caching_pipeline, artifact=str(path)).run_link(dev_instances)
    other_llm = CachingLLM(TransparentLLM(seed=99))
    other = RTSPipeline(other_llm, RTSConfig(seed=3))
    other._mbpps = caching_pipeline._mbpps  # reuse probes; only the LLM differs
    result = BatchRunner(other, artifact=str(path)).run_link(dev_instances)
    assert result.n_resumed == 0  # llm seed changed -> full re-evaluation


def test_artifact_tolerates_corrupt_tail(tmp_path):
    path = tmp_path / "part.jsonl"
    good = json.dumps({"key": "a", "x": 1})
    path.write_text(good + "\n" + '{"key": "b", "x"')
    artifact = RunArtifact(str(path))
    records = artifact.load_records()
    assert list(records) == ["a"]
    # The corrupt tail was truncated away so appends start clean.
    assert path.read_text() == good + "\n"


def test_summarize_link_counts(caching_pipeline, dev_instances):
    outcomes = [caching_pipeline.link(i) for i in dev_instances]
    summary = summarize_link(outcomes)
    assert summary["n"] == len(dev_instances)
    assert 0.0 <= summary["tar"] + summary["far"] <= 1.0
    assert summary["n_abstained"] == sum(1 for o in outcomes if o.abstained)


# -- CLI ----------------------------------------------------------------------


def test_cli_runs_and_writes_artifact(tmp_path, capsys):
    from repro.runtime.cli import main

    artifact = tmp_path / "cli.jsonl"
    code = main(
        [
            "--benchmark", "bird",
            "--split", "dev",
            "--task", "table",
            "--scale", "tiny",
            "--workers", "2",
            "--limit", "4",
            "--artifact", str(artifact),
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["n"] == 4
    assert payload["generation_cache"]["misses"] > 0
    assert artifact.exists()
