"""Tests for the batched evaluation runtime (pool / cache / artifacts / runner)."""

from __future__ import annotations

import json

import pytest

from repro.core.config import RTSConfig
from repro.core.pipeline import RTSPipeline
from repro.llm.model import TransparentLLM
from repro.runtime.artifacts import (
    RunArtifact,
    link_outcome_from_record,
    link_record,
    summarize_link,
)
from repro.runtime.cache import CachingLLM, GenerationCache, instance_key
from repro.runtime.pool import PROCESS, THREAD, WorkerPool
from repro.runtime.runner import BatchRunner


@pytest.fixture(scope="module")
def caching_pipeline(bird_tiny):
    """A pipeline over a caching LLM, fitted once for the module."""
    llm = CachingLLM(TransparentLLM(seed=11))
    pipe = RTSPipeline(llm, RTSConfig(seed=3))
    pipe.fit_benchmark(bird_tiny)
    return pipe


@pytest.fixture(scope="module")
def dev_instances(bird_tiny):
    return [
        RTSPipeline.instance_for(e, bird_tiny, "table") for e in bird_tiny.dev
    ]


# -- worker pool --------------------------------------------------------------


def test_pool_serial_fallback_and_order():
    pool = WorkerPool(workers=1, backend=THREAD)
    assert pool.is_serial
    assert pool.map_ordered(lambda x: x * x, range(7)) == [0, 1, 4, 9, 16, 25, 36]


def test_pool_thread_preserves_input_order():
    pool = WorkerPool(workers=4, backend=THREAD)
    items = list(range(50))
    assert pool.map_ordered(lambda x: -x, items) == [-x for x in items]


def test_pool_rejects_bad_config():
    with pytest.raises(ValueError):
        WorkerPool(workers=2, backend="gpu")
    with pytest.raises(ValueError):
        WorkerPool(workers=0)


def test_pool_empty_input():
    assert WorkerPool(workers=4, backend=THREAD).map_ordered(abs, []) == []


# -- generation cache ---------------------------------------------------------


def test_cache_hit_accounting():
    cache = GenerationCache()
    calls = []
    for _ in range(3):
        cache.get_or_compute("k", lambda: calls.append(1) or "v")
    assert calls == [1]
    assert cache.stats.hits == 2 and cache.stats.misses == 1
    assert cache.stats.hit_rate == pytest.approx(2 / 3)


def test_caching_llm_returns_identical_traces(dev_instances):
    plain = TransparentLLM(seed=11)
    caching = CachingLLM(TransparentLLM(seed=11))
    inst = dev_instances[0]
    first = caching.generate(inst)
    second = caching.generate(inst)
    assert first is second  # memoized, not recomputed
    assert first.items == plain.generate(inst).items
    assert caching.teacher_forced_trace(inst).committed_tokens == (
        plain.teacher_forced_trace(inst).committed_tokens
    )
    assert caching.stats.hits >= 1


def test_instance_key_distinguishes_candidate_universes(bird_tiny):
    """Joint linking builds same-id column instances with different candidates."""
    from repro.linking.instance import SchemaLinkingInstance

    example = bird_tiny.dev.examples[0]
    db = bird_tiny.database(example.db_id).schema
    full = SchemaLinkingInstance.for_columns(example, db)
    restricted = SchemaLinkingInstance.for_columns(
        example, db, restrict_tables=example.gold_tables
    )
    assert full.instance_id == restricted.instance_id
    assert instance_key(full) != instance_key(restricted)


def test_cache_hits_on_joint_sweep(caching_pipeline, bird_tiny):
    runner = BatchRunner(caching_pipeline)
    examples = list(bird_tiny.dev)
    runner.run_joint(examples, bird_tiny, mode="abstain")
    before = caching_pipeline.llm.stats
    runner.run_joint(examples, bird_tiny, mode="abstain")
    after = caching_pipeline.llm.stats
    assert after.hits > before.hits  # repeated generations served from cache
    assert after.misses == before.misses


# -- serial vs parallel determinism -------------------------------------------


@pytest.mark.parametrize("backend", [THREAD, PROCESS])
def test_link_parallel_matches_serial(caching_pipeline, dev_instances, backend):
    serial = BatchRunner(caching_pipeline, workers=1).run_link(dev_instances)
    parallel = BatchRunner(caching_pipeline, workers=4, backend=backend).run_link(
        dev_instances
    )
    # Byte-identical aggregate metrics, per the determinism contract.
    assert json.dumps(serial.summary, sort_keys=True) == json.dumps(
        parallel.summary, sort_keys=True
    )
    assert serial.records == parallel.records


def test_joint_parallel_matches_serial(caching_pipeline, bird_tiny):
    from repro.abstention.human import HumanOracle

    examples = list(bird_tiny.dev)
    serial = BatchRunner(caching_pipeline, workers=1).run_joint(
        examples, bird_tiny, human=HumanOracle(seed=9)
    )
    threaded = BatchRunner(caching_pipeline, workers=4, backend=THREAD).run_joint(
        examples, bird_tiny, human=HumanOracle(seed=9)
    )
    assert serial.records == threaded.records
    assert serial.summary == threaded.summary


def test_branch_dataset_parallel_matches_serial(caching_pipeline, dev_instances):
    import numpy as np

    serial = BatchRunner(caching_pipeline, workers=1).branch_dataset(dev_instances)
    threaded = BatchRunner(caching_pipeline, workers=4, backend=THREAD).branch_dataset(
        dev_instances
    )
    assert np.array_equal(serial.hidden, threaded.hidden)
    assert np.array_equal(serial.labels, threaded.labels)
    assert np.array_equal(serial.groups, threaded.groups)


# -- artifacts: records, checkpoints, resume ----------------------------------


def test_link_record_roundtrip(caching_pipeline, dev_instances):
    outcome = caching_pipeline.link(dev_instances[0])
    record = json.loads(json.dumps(link_record(outcome)))
    restored = link_outcome_from_record(record, dev_instances[0])
    assert restored.predicted == outcome.predicted
    assert restored.unassisted == outcome.unassisted
    assert restored.abstained == outcome.abstained
    assert restored.flags == outcome.flags
    with pytest.raises(ValueError):
        link_outcome_from_record(record, dev_instances[1])


def test_artifact_streams_and_summarizes(caching_pipeline, dev_instances, tmp_path):
    path = tmp_path / "run.jsonl"
    runner = BatchRunner(caching_pipeline, artifact=str(path))
    result = runner.run_link(dev_instances)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == len(dev_instances)
    summary = json.loads(RunArtifact(str(path)).summary_path.read_text())
    assert summary["n"] == result.summary["n"]
    assert summary["tar"] == pytest.approx(result.summary["tar"])


def test_resume_from_truncated_artifact(caching_pipeline, dev_instances, tmp_path):
    path = tmp_path / "run.jsonl"
    full = BatchRunner(caching_pipeline, artifact=str(path)).run_link(dev_instances)
    assert full.n_resumed == 0 and full.n_evaluated == len(dev_instances)

    # Simulate a hard kill: keep 3 complete records, then half a line.
    lines = path.read_text().splitlines(keepends=True)
    path.write_text("".join(lines[:3]) + lines[3][: len(lines[3]) // 2])

    resumed = BatchRunner(caching_pipeline, artifact=str(path)).run_link(dev_instances)
    assert resumed.n_resumed == 3
    assert resumed.n_evaluated == len(dev_instances) - 3
    # The resumed run is bit-identical to the uninterrupted one.
    assert json.dumps(resumed.summary, sort_keys=True) == json.dumps(
        full.summary, sort_keys=True
    )
    assert resumed.records == full.records
    assert len(path.read_text().strip().splitlines()) == len(dev_instances)


def test_checkpoints_stream_before_batch_completes(
    caching_pipeline, dev_instances, tmp_path
):
    """A crash mid-sweep must leave earlier outcomes checkpointed."""
    path = tmp_path / "crash.jsonl"
    boom_id = dev_instances[3].instance_id
    real_link = caching_pipeline.link

    class Exploding:
        def __getattr__(self, name):
            return getattr(caching_pipeline, name)

        def link(self, instance, **kwargs):
            if instance.instance_id == boom_id:
                raise RuntimeError("simulated crash")
            return real_link(instance, **kwargs)

    with pytest.raises(RuntimeError, match="simulated crash"):
        BatchRunner(Exploding(), artifact=str(path)).run_link(dev_instances)
    assert len(path.read_text().strip().splitlines()) == 3  # streamed, not batched

    # And the healthy runner resumes on top of the partial artifact.
    resumed = BatchRunner(caching_pipeline, artifact=str(path)).run_link(dev_instances)
    assert resumed.n_resumed == 3
    assert resumed.n_evaluated == len(dev_instances) - 3


def test_resume_keys_include_run_fingerprint(caching_pipeline, dev_instances, tmp_path):
    """Records from a different-seed run must not be silently reused."""
    path = tmp_path / "fp.jsonl"
    BatchRunner(caching_pipeline, artifact=str(path)).run_link(dev_instances)
    other_llm = CachingLLM(TransparentLLM(seed=99))
    other = RTSPipeline(other_llm, RTSConfig(seed=3))
    other._mbpps = caching_pipeline._mbpps  # reuse probes; only the LLM differs
    result = BatchRunner(other, artifact=str(path)).run_link(dev_instances)
    assert result.n_resumed == 0  # llm seed changed -> full re-evaluation


def test_artifact_tolerates_corrupt_tail(tmp_path):
    path = tmp_path / "part.jsonl"
    good = json.dumps({"key": "a", "x": 1})
    path.write_text(good + "\n" + '{"key": "b", "x"')
    artifact = RunArtifact(str(path))
    records = artifact.load_records()
    assert list(records) == ["a"]
    # The corrupt tail was truncated away so appends start clean.
    assert path.read_text() == good + "\n"


# -- resume hardening: CRLF mangling + hard-kill truncation, every kind -------
#
# The \r\n hazard noted in artifacts.py: load_records must count exact
# *byte* offsets, or truncating back to "the last complete record" on a
# CRLF-mangled file (a checkout or editor rewrote line endings) cuts
# into a valid record and corrupts the checkpoint it resumes from.


def crlf_mangle(path) -> None:
    path.write_bytes(path.read_bytes().replace(b"\n", b"\r\n"))


def test_load_records_on_a_crlf_mangled_artifact(tmp_path):
    path = tmp_path / "crlf.jsonl"
    artifact = RunArtifact(str(path))
    for key in ("a", "b", "c"):
        artifact.append({"key": key, "x": key * 2})
    artifact.close()
    crlf_mangle(path)
    size = path.stat().st_size
    records = RunArtifact(str(path)).load_records()
    assert list(records) == ["a", "b", "c"]
    assert path.stat().st_size == size  # complete file: nothing truncated


def test_crlf_artifact_with_truncated_tail_resumes_cleanly(tmp_path):
    """Byte-exact truncation on a CRLF file must never cut a valid record."""
    path = tmp_path / "crlf-tail.jsonl"
    artifact = RunArtifact(str(path))
    for key in ("a", "b", "c"):
        artifact.append({"key": key, "x": key * 2})
    artifact.close()
    crlf_mangle(path)
    mangled = path.read_bytes()
    # Hard kill mid-append: the final record loses its terminator.
    path.write_bytes(mangled[:-3])
    artifact = RunArtifact(str(path))
    assert list(artifact.load_records()) == ["a", "b"]
    # Truncated exactly back to the end of record "b" — with its \r\n
    # intact, so the next append starts on a fresh line.
    kept = path.read_bytes()
    assert kept == mangled[: len(kept)]
    assert kept.endswith(b'"b"}\r\n'[-2:])
    artifact.append({"key": "c2", "x": "cc"})
    artifact.close()
    assert list(RunArtifact(str(path)).load_records()) == ["a", "b", "c2"]


@pytest.mark.parametrize("cut", [1, 2, 5, 11])
def test_every_truncation_point_keeps_a_loadable_prefix(tmp_path, cut):
    """Whatever byte a hard kill lands on, resume sees only complete
    records and the file is rewound to a clean append point."""
    path = tmp_path / "cut.jsonl"
    artifact = RunArtifact(str(path))
    for key in ("a", "b"):
        artifact.append({"key": key, "x": key * 3})
    artifact.close()
    whole = path.read_bytes()
    path.write_bytes(whole[: len(whole) - cut])
    records = RunArtifact(str(path)).load_records()
    assert list(records) in (["a"], ["a", "b"])
    remaining = path.read_bytes()
    assert whole.startswith(remaining)
    assert remaining == b"" or remaining.endswith(b"\n")


def test_link_and_joint_records_survive_truncated_tails(
    caching_pipeline, bird_tiny, dev_instances, tmp_path
):
    """The hard-kill tolerance holds for every record kind the runner
    writes — link sweeps and joint table->column runs alike."""
    examples = bird_tiny.dev.examples
    runs = {
        "link": lambda art: BatchRunner(caching_pipeline, artifact=art).run_link(
            dev_instances
        ),
        "joint": lambda art: BatchRunner(caching_pipeline, artifact=art).run_joint(
            examples, bird_tiny, mode="abstain"
        ),
    }
    for kind, run in runs.items():
        path = tmp_path / f"{kind}.jsonl"
        full = run(str(path))
        pristine = path.read_bytes()
        n_records = len(pristine.strip().splitlines())
        # Hard kill: the last record is torn mid-line.
        path.write_bytes(pristine[: len(pristine) - 7])
        resumed = run(str(path))
        assert resumed.n_resumed == n_records - 1, kind
        assert resumed.n_evaluated == 1, kind
        assert json.dumps(resumed.summary, sort_keys=True) == json.dumps(
            full.summary, sort_keys=True
        ), kind
        assert path.read_bytes() == pristine, kind  # byte-identical rebuild


def test_joint_artifact_crlf_resume(caching_pipeline, bird_tiny, tmp_path):
    """CRLF mangling + truncation on joint records resumes bit-exactly."""
    examples = bird_tiny.dev.examples
    path = tmp_path / "joint-crlf.jsonl"
    full = BatchRunner(caching_pipeline, artifact=str(path)).run_joint(
        examples, bird_tiny, mode="abstain"
    )
    crlf_mangle(path)
    mangled = path.read_bytes()
    path.write_bytes(mangled[:-4])  # tear the final record
    resumed = BatchRunner(caching_pipeline, artifact=str(path)).run_joint(
        examples, bird_tiny, mode="abstain"
    )
    assert resumed.n_resumed == len(examples) - 1
    assert resumed.n_evaluated == 1
    assert json.dumps(resumed.summary, sort_keys=True) == json.dumps(
        full.summary, sort_keys=True
    )


def test_summarize_link_counts(caching_pipeline, dev_instances):
    outcomes = [caching_pipeline.link(i) for i in dev_instances]
    summary = summarize_link(outcomes)
    assert summary["n"] == len(dev_instances)
    assert 0.0 <= summary["tar"] + summary["far"] <= 1.0
    assert summary["n_abstained"] == sum(1 for o in outcomes if o.abstained)


# -- CLI ----------------------------------------------------------------------


def test_cli_runs_and_writes_artifact(tmp_path, capsys):
    from repro.runtime.cli import main

    artifact = tmp_path / "cli.jsonl"
    code = main(
        [
            "--benchmark", "bird",
            "--split", "dev",
            "--task", "table",
            "--scale", "tiny",
            "--workers", "2",
            "--limit", "4",
            "--artifact", str(artifact),
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["n"] == 4
    assert payload["generation_cache"]["misses"] > 0
    assert artifact.exists()
