"""Tests for repro.utils.stats (AUC, conformal quantile, intervals)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.stats import (
    auc_score,
    binomial_ci,
    bootstrap_ci,
    conformal_quantile,
    histogram,
)


class TestAuc:
    def test_perfect_separation(self):
        assert auc_score(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_inverted(self):
        assert auc_score(np.array([1, 1, 0, 0]), np.array([0.1, 0.2, 0.8, 0.9])) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=4000).astype(bool)
        scores = rng.random(4000)
        assert abs(auc_score(labels, scores) - 0.5) < 0.03

    def test_ties_get_half_credit(self):
        # All scores equal: AUC must be exactly 0.5 under mid-ranks.
        assert auc_score(np.array([0, 1, 0, 1]), np.ones(4)) == 0.5

    def test_single_class_is_nan(self):
        assert math.isnan(auc_score(np.zeros(5, dtype=bool), np.arange(5.0)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            auc_score(np.zeros(3), np.zeros(4))

    @given(st.integers(10, 60), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_auc_invariant_under_monotone_transform(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=n).astype(bool)
        scores = rng.normal(size=n)
        if labels.all() or not labels.any():
            return
        a = auc_score(labels, scores)
        b = auc_score(labels, np.exp(scores))  # strictly monotone
        assert abs(a - b) < 1e-12


class TestConformalQuantile:
    def test_matches_formula_small(self):
        scores = np.array([0.1, 0.2, 0.3, 0.4, 0.5])
        # n=5, alpha=0.5 -> level ceil(6*0.5)/5 = 0.6 -> 3rd of 5 sorted
        assert conformal_quantile(scores, 0.5) == pytest.approx(0.3)

    def test_small_alpha_returns_inf_when_unachievable(self):
        scores = np.array([0.1, 0.2])
        # n=2, alpha=0.1 -> ceil(3*0.9)/2 = 1.35 > 1 -> inf
        assert conformal_quantile(scores, 0.1) == float("inf")

    def test_empty_scores_inf(self):
        assert conformal_quantile(np.array([]), 0.1) == float("inf")

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            conformal_quantile(np.array([1.0]), 0.0)

    @given(
        st.lists(st.floats(0, 1, allow_nan=False), min_size=20, max_size=200),
        st.floats(0.05, 0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_quantile_dominates_1_minus_alpha_mass(self, values, alpha):
        scores = np.asarray(values)
        q = conformal_quantile(scores, alpha)
        if math.isinf(q):
            return
        # At least ceil((n+1)(1-alpha)) calibration scores lie at or below q.
        needed = math.ceil((len(scores) + 1) * (1 - alpha))
        assert (scores <= q).sum() >= min(needed, len(scores))


class TestIntervals:
    def test_bootstrap_contains_mean_roughly(self):
        rng = np.random.default_rng(1)
        values = rng.normal(10.0, 1.0, size=400)
        lo, hi = bootstrap_ci(values, rng)
        assert lo < 10.0 < hi

    def test_bootstrap_empty(self):
        lo, hi = bootstrap_ci(np.array([]), np.random.default_rng(0))
        assert math.isnan(lo) and math.isnan(hi)

    def test_binomial_ci_bounds(self):
        lo, hi = binomial_ci(50, 100)
        assert 0.0 <= lo < 0.5 < hi <= 1.0

    def test_binomial_ci_degenerate(self):
        lo, hi = binomial_ci(0, 0)
        assert math.isnan(lo) and math.isnan(hi)


class TestHistogram:
    def test_counts_sum_to_n(self):
        h = histogram(np.array([0.1, 0.2, 0.9]), bins=4, lo=0.0, hi=1.0)
        assert sum(h.counts) == 3

    def test_fractions_normalized(self):
        h = histogram(np.linspace(0, 1, 50), bins=5)
        assert sum(h.fractions) == pytest.approx(1.0)

    def test_empty_histogram(self):
        h = histogram(np.array([]), bins=3)
        assert sum(h.counts) == 0
        assert all(f == 0.0 for f in h.fractions)

    def test_as_rows_shape(self):
        h = histogram(np.array([1.0, 2.0]), bins=2)
        rows = h.as_rows()
        assert len(rows) == 2
        assert len(rows[0]) == 3
