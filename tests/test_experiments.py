"""Smoke + shape tests for every experiment runner (tiny scale)."""

import math

import pytest

from repro.experiments import (
    ablations,
    figure3,
    figure6,
    figure7,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.experiments.common import ExperimentContext

ALL_MODULES = [
    table1, figure3, table2, table3, table4, table5,
    table6, table7, table8, table9, figure6, figure7,
]


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.tiny()


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__.split(".")[-1])
def test_runner_produces_rows(ctx, module):
    result = module.run(ctx)
    assert result.rows
    for row in result.rows:
        assert len(row) == len(result.headers)
    rendered = result.render()
    assert result.experiment_id in rendered
    markdown = result.to_markdown()
    assert markdown.startswith("###")


def test_table1_golden_beats_full(ctx):
    rows = {r[0]: r[1] for r in table1.run(ctx).rows}
    assert rows["Correct tables + Correct columns"] >= rows["Full tables + Full columns"]


def test_figure3_overconfidence_shape(ctx):
    rows = {r[0]: r[1] for r in figure3.run(ctx).rows}
    assert rows["mean max-prob (correct tokens)"] > 0.9
    assert rows["mean max-prob (branching tokens)"] > 0.85


def test_table2_metrics_in_range(ctx):
    for row in table2.run(ctx).rows:
        _type, _ds, em, p, r = row
        assert 0 <= em <= 100 and 0 <= p <= 100 and 0 <= r <= 100


def test_table5_em_exceeds_table2(ctx):
    """Abstention must raise EM over the non-abstaining baseline."""
    base = {
        (r[0], r[1]): r[2] for r in table2.run(ctx).rows
    }  # (type, dataset) -> EM
    for row in table5.run(ctx).rows:
        method, label, dataset, em, _tar, _far = row
        if method == "mBPP-Abstention" and not math.isnan(em):
            assert em >= base[(label, dataset)] - 1e-9


def test_figure6_ear_decreases_with_alpha(ctx):
    rows = [r for r in figure6.run(ctx).rows if r[0] == "Table"]
    ears = [r[3] for r in rows]
    assert ears[0] >= ears[-1]  # alpha 0.02 vs 0.30


def test_figure7_permutation_never_larger_ear_at_full_depth(ctx):
    rows = figure7.run(ctx).rows
    perm = {r[1]: r[3] for r in rows if r[0] == "Random Permutation"}
    maj = {r[1]: r[3] for r in rows if r[0] == "Majority Vote"}
    deepest = max(perm)
    assert perm[deepest] <= maj[deepest] + 1e-9


def test_context_memoizes(ctx):
    assert ctx.benchmark("bird") is ctx.benchmark("bird")
    assert ctx.pipeline("bird") is ctx.pipeline("bird")
    assert ctx.surrogate("bird") is ctx.surrogate("bird")


def test_ablations_runner(ctx):
    result = ablations.run(ctx)
    labels = [r[0] for r in result.rows]
    assert any("Mondrian" in label for label in labels)
    assert any("layer" in label for label in labels)
    assert any("Logit-threshold" in label for label in labels)


def test_calibrate_runner(ctx):
    from repro.experiments import calibrate

    result = calibrate.run(ctx)
    assert len(result.rows) == 6
    for row in result.rows:
        assert 0.0 <= row[8] <= 1.0  # mean propensity is a probability
