"""Tests for the unified :class:`BackendSpec` configuration surface.

Pins down the api_redesign guarantees:

* one spec value describes every backend — validation happens at
  construction, an address names (and wins over) its transport, and the
  accept-only ``workers=0`` form is legal only where it means something;
* the CLI round-trip is exact: ``to_args`` emits an argv fragment that
  parses back (through the shared ``add_arguments`` flags) to an equal
  spec, for *any* valid spec (property-based), and pickling a spec is
  the identity;
* ``from_args`` resolves the worker count through the documented
  fallback chain (``--gen-workers`` → explicit override → ``workers``
  attribute → dataclass default);
* the deprecation shims: ``GenerationService.build(backend=...)`` warns
  but still works, the legacy keyword surface folds into a spec
  silently, and mixing an explicit spec with legacy keywords is an
  error everywhere that accepts both.
"""

from __future__ import annotations

import argparse
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.common import ExperimentContext
from repro.llm.model import TransparentLLM
from repro.runtime.service import (
    ASYNC,
    GEN_BACKENDS,
    PIPE_TRANSPORT,
    PROCESS,
    SIMULATOR,
    TCP_TRANSPORT,
    TRANSPORTS,
    UNIX_TRANSPORT,
    AsyncBatchedBackend,
    BackendSpec,
    GenerationService,
    SimulatorBackend,
)
from repro.runtime.sweep import SweepRunner, SweepSpec

SWEEP = SweepSpec(
    benchmarks=("bird",),
    splits=("dev",),
    tasks=("table",),
    modes=("abstain",),
    seeds=(3,),
    scale="tiny",
    limit=2,
)


def parse(argv: "list[str]", defaults: "BackendSpec | None" = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser()
    BackendSpec.add_arguments(parser, defaults=defaults)
    return parser.parse_args(argv)


# -- validation ---------------------------------------------------------------


def test_defaults_are_a_valid_simulator_spec():
    spec = BackendSpec()
    assert spec.kind == SIMULATOR
    assert spec.transport == PIPE_TRANSPORT
    assert spec.workers >= 1


@pytest.mark.parametrize(
    "kwargs",
    [
        {"kind": "llama.cpp"},
        {"transport": "carrier-pigeon"},
        {"address": "ipx:whatever"},
        {"workers": 0},  # accept-only needs process + socket
        {"kind": PROCESS, "workers": 0},  # pipe transport still spawns
        {"kind": PROCESS, "transport": UNIX_TRANSPORT, "workers": -1},
        {"max_batch": 0},
        {"max_wait_ms": -1.0},
        {"max_pending": 0},
        {"max_restarts": -1},
        {"request_timeout_s": 0.0},
        {"request_timeout_s": -1.5},
        {"fleet_token": ""},
    ],
)
def test_invalid_specs_fail_at_construction(kwargs):
    with pytest.raises(ValueError):
        BackendSpec(**kwargs)


def test_accept_only_socket_supervisor_is_legal():
    spec = BackendSpec(kind=PROCESS, transport=UNIX_TRANSPORT, workers=0)
    assert spec.workers == 0


def test_address_names_and_wins_over_the_transport():
    spec = BackendSpec(kind=PROCESS, address="tcp:127.0.0.1:7431")
    assert spec.transport == TCP_TRANSPORT
    unix = BackendSpec(
        kind=PROCESS, transport=TCP_TRANSPORT, address="unix:/tmp/sup.sock"
    )
    assert unix.transport == UNIX_TRANSPORT


def test_worker_log_dir_coerces_to_str(tmp_path):
    spec = BackendSpec(worker_log_dir=tmp_path)
    assert spec.worker_log_dir == str(tmp_path)


# -- round-trips --------------------------------------------------------------

addresses = st.one_of(
    st.none(),
    st.just("unix:/tmp/repro-sup/supervisor.sock"),
    st.just("tcp:127.0.0.1:7431"),
    st.just("tcp:0.0.0.0:9000"),
)


@st.composite
def specs(draw) -> BackendSpec:
    kind = draw(st.sampled_from(GEN_BACKENDS))
    transport = draw(st.sampled_from(TRANSPORTS)) if kind == PROCESS else PIPE_TRANSPORT
    address = draw(addresses) if kind == PROCESS else None
    accept_only = kind == PROCESS and (
        transport != PIPE_TRANSPORT or (address is not None)
    )
    return BackendSpec(
        kind=kind,
        workers=draw(st.integers(0 if accept_only else 1, 8)),
        max_batch=draw(st.integers(1, 32)),
        max_wait_ms=float(draw(st.integers(0, 50))),
        max_pending=draw(st.integers(1, 512)),
        max_restarts=draw(st.one_of(st.none(), st.integers(0, 9))),
        worker_log_dir=draw(st.one_of(st.none(), st.just("out/worker-logs"))),
        transport=transport,
        address=address,
        request_timeout_s=draw(st.sampled_from([None, 0.05, 0.5, 30.0])),
        fleet_token=draw(st.one_of(st.none(), st.just("s3cret"))),
        shared_memory=draw(st.booleans()),
    )


@given(spec=specs())
@settings(max_examples=150, deadline=None)
def test_cli_round_trip_is_exact(spec):
    """to_args → add_arguments/parse → from_args reproduces any spec."""
    assert BackendSpec.from_args(parse(spec.to_args())) == spec


@given(spec=specs())
@settings(max_examples=50, deadline=None)
def test_pickle_round_trip_is_exact(spec):
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_from_args_worker_fallback_chain():
    # --gen-workers wins outright.
    args = parse(["--gen-workers", "7"])
    args.workers = 3
    assert BackendSpec.from_args(args, workers=5).workers == 7
    # Then the explicit override a CLI passes.
    args = parse([])
    args.workers = 3
    assert BackendSpec.from_args(args, workers=5).workers == 5
    # Then the namespace's own workers attribute.
    assert BackendSpec.from_args(args).workers == 3
    # Then the dataclass default.
    assert BackendSpec.from_args(parse([])).workers == BackendSpec.workers


def test_add_arguments_defaults_customize_without_forking_flags():
    args = parse([], defaults=BackendSpec(kind=ASYNC, max_batch=16))
    spec = BackendSpec.from_args(args)
    assert spec.kind == ASYNC
    assert spec.max_batch == 16
    # Worker counts resolve through from_args' fallback chain instead
    # (CLIs pass their own --workers), so defaults=... leaves them alone.
    assert spec.workers == BackendSpec.workers


# -- construction -------------------------------------------------------------


def test_make_backend_dispatches_on_kind():
    llm = TransparentLLM(seed=11)
    assert isinstance(BackendSpec().make_backend(llm), SimulatorBackend)
    backend = BackendSpec(kind=ASYNC, max_batch=4, workers=2).make_backend(llm)
    assert isinstance(backend, AsyncBatchedBackend)
    assert backend.max_batch == 4 and backend.workers == 2
    from repro.runtime.remote import ProcessBackend

    process = BackendSpec(
        kind=PROCESS, workers=1, transport=UNIX_TRANSPORT, max_restarts=3
    ).make_backend(llm)
    assert isinstance(process, ProcessBackend)
    assert process.transport == UNIX_TRANSPORT
    assert process.max_restarts == 3
    process.close()


def test_fleet_token_env_resolves_at_make_backend_not_from_args(monkeypatch):
    """$REPRO_FLEET_TOKEN is a deploy-time fallback: it must not leak
    into the spec (which round-trips through CLI args exactly), only
    into the backend it builds."""
    from repro.runtime.remote import ProcessBackend
    from repro.runtime.service import FLEET_TOKEN_ENV

    monkeypatch.setenv(FLEET_TOKEN_ENV, "env-fleet-token")
    spec = BackendSpec.from_args(parse(["--backend", PROCESS]))
    assert spec.fleet_token is None  # CLI round-trip stays env-independent
    backend = spec.make_backend(TransparentLLM(seed=11))
    try:
        assert isinstance(backend, ProcessBackend)
        assert backend.fleet_token == "env-fleet-token"
    finally:
        backend.close()
    # An explicit --fleet-token wins over the environment.
    explicit = BackendSpec.from_args(
        parse(["--backend", PROCESS, "--fleet-token", "cli-token"])
    )
    assert explicit.fleet_token == "cli-token"


def test_request_timeout_flows_into_both_backends():
    llm = TransparentLLM(seed=11)
    async_backend = BackendSpec(kind=ASYNC, request_timeout_s=2.5).make_backend(llm)
    assert async_backend.request_timeout_s == 2.5
    from repro.runtime.remote import ProcessBackend

    process = BackendSpec(kind=PROCESS, request_timeout_s=0.25).make_backend(llm)
    try:
        assert isinstance(process, ProcessBackend)
        assert process.request_timeout_s == 0.25
    finally:
        process.close()


def test_spec_build_wires_a_service():
    with BackendSpec().build(TransparentLLM(seed=11)) as service:
        assert isinstance(service, GenerationService)
        assert isinstance(service.backend, SimulatorBackend)


# -- deprecation shims --------------------------------------------------------


def test_build_backend_kwarg_warns_but_works():
    with pytest.warns(DeprecationWarning, match="backend=.*deprecated"):
        service = GenerationService.build(TransparentLLM(seed=11), backend=ASYNC)
    with service:
        assert isinstance(service.backend, AsyncBatchedBackend)


def test_build_legacy_kwargs_fold_into_a_spec_silently(recwarn):
    service = GenerationService.build(
        TransparentLLM(seed=11), gen_backend=ASYNC, max_batch=4, workers=2
    )
    with service:
        assert isinstance(service.backend, AsyncBatchedBackend)
        assert service.backend.max_batch == 4
    assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]


def test_build_rejects_spec_plus_legacy_kwargs():
    with pytest.raises(ValueError, match="not alongside"):
        GenerationService.build(
            TransparentLLM(seed=11), spec=BackendSpec(), gen_backend=ASYNC
        )


def test_experiment_context_rejects_spec_plus_legacy_kwargs():
    with pytest.raises(ValueError, match="not alongside"):
        ExperimentContext.tiny(spec=BackendSpec(), gen_backend=ASYNC)


def test_experiment_context_folds_legacy_kwargs_and_aliases_gen_backend():
    with ExperimentContext.tiny(gen_backend=ASYNC, max_batch=4) as ctx:
        assert ctx.spec.kind == ASYNC
        assert ctx.spec.max_batch == 4
        assert ctx.gen_backend == ASYNC  # the pre-spec read surface


def test_sweep_runner_accepts_a_spec_and_aliases_gen_backend(tmp_path):
    runner = SweepRunner(
        SWEEP, tmp_path, backend_spec=BackendSpec(kind=ASYNC, max_batch=4)
    )
    assert runner.gen_backend == ASYNC
    with pytest.raises(ValueError, match="not alongside"):
        SweepRunner(SWEEP, tmp_path, backend_spec=BackendSpec(), gen_backend=ASYNC)
