"""Tests for JSON serialization helpers."""

from dataclasses import dataclass

import numpy as np

from repro.utils.serialize import dump_json, load_json, to_jsonable


@dataclass
class Inner:
    values: np.ndarray


@dataclass
class Outer:
    name: str
    count: np.int64
    ratio: np.float64
    flag: np.bool_
    inner: Inner


def test_to_jsonable_dataclass_tree():
    obj = Outer(
        name="x",
        count=np.int64(3),
        ratio=np.float64(0.5),
        flag=np.bool_(True),
        inner=Inner(values=np.array([1, 2])),
    )
    out = to_jsonable(obj)
    assert out == {
        "name": "x",
        "count": 3,
        "ratio": 0.5,
        "flag": True,
        "inner": {"values": [1, 2]},
    }


def test_roundtrip_through_file(tmp_path):
    path = tmp_path / "sub" / "data.json"
    dump_json({"a": [1, 2], "b": (3, 4)}, path)
    assert load_json(path) == {"a": [1, 2], "b": [3, 4]}


def test_plain_values_pass_through():
    assert to_jsonable("s") == "s"
    assert to_jsonable(None) is None
    assert to_jsonable({1: "a"}) == {"1": "a"}
