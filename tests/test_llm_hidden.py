"""Tests for hidden-state synthesis and the overconfident softmax."""

import numpy as np
import pytest

from repro.llm.hidden import HiddenConfig, HiddenStateSynthesizer


@pytest.fixture(scope="module")
def synth():
    return HiddenStateSynthesizer(seed=2)


class TestHiddenStates:
    def test_shape(self, synth):
        h = synth.hidden_states("i1", 0, "tok", "<bos>", 0, 0, False)
        assert h.shape == (synth.config.n_layers, synth.config.dim)

    def test_deterministic(self, synth):
        a = synth.hidden_states("i1", 3, "tok", "prev", 1, 0, True)
        b = synth.hidden_states("i1", 3, "tok", "prev", 1, 0, True)
        np.testing.assert_array_equal(a, b)

    def test_differs_by_position(self, synth):
        a = synth.hidden_states("i1", 0, "tok", "p", 0, 0, False)
        b = synth.hidden_states("i1", 1, "tok", "p", 0, 0, False)
        assert not np.allclose(a, b)

    def test_branching_adds_signal_along_direction(self, synth):
        # Branching and non-branching stacks at the same position differ
        # by a multiple of the per-layer uncertainty direction (plus the
        # same noise, which cancels in the difference).
        a = synth.hidden_states("i2", 5, "tok", "p", 0, 0, True)
        b = synth.hidden_states("i2", 5, "tok", "p", 0, 0, False)
        diff = a - b
        gains = np.asarray(synth.config.layer_gains)
        peak = int(np.argmax(gains))
        trough = int(np.argmin(gains))
        assert np.linalg.norm(diff[peak]) > np.linalg.norm(diff[trough])

    def test_gain_profile_validated(self):
        with pytest.raises(ValueError):
            HiddenConfig(n_layers=4, layer_gains=(1.0, 1.0))


class TestSignalStrength:
    def test_branching_signal_positive(self, synth):
        strengths = [
            synth.signal_strength("x", i, True) for i in range(100)
        ]
        assert all(s > 0 for s in strengths)

    def test_spurious_rate_respects_decision_points(self, synth):
        non_decision = [
            synth.signal_strength("y", i, False, decision_point=False, nervousness=0.5)
            for i in range(300)
        ]
        assert all(s == 0.0 for s in non_decision)

    def test_spurious_rate_grows_with_nervousness(self, synth):
        calm = sum(
            synth.signal_strength(f"c{i}", 0, False, True, nervousness=0.02) > 0
            for i in range(3000)
        )
        nervous = sum(
            synth.signal_strength(f"c{i}", 0, False, True, nervousness=0.5) > 0
            for i in range(3000)
        )
        assert nervous > calm

    def test_spurious_decays_with_item_index(self, synth):
        early = sum(
            synth.signal_strength(f"d{i}", 0, False, True, 0.3, item_index=0) > 0
            for i in range(3000)
        )
        late = sum(
            synth.signal_strength(f"d{i}", 0, False, True, 0.3, item_index=4) > 0
            for i in range(3000)
        )
        assert late < early


class TestOverconfidence:
    """The Figure 3a phenomenon, asserted statistically."""

    def test_both_classes_concentrate_near_one(self, synth):
        correct = np.array([synth.max_prob(f"a{i}", 0, False) for i in range(800)])
        branching = np.array([synth.max_prob(f"a{i}", 0, True) for i in range(800)])
        assert correct.mean() > 0.95
        assert branching.mean() > 0.90
        assert (correct > 0.9).mean() > 0.9
        assert (branching > 0.9).mean() > 0.75

    def test_probability_thresholding_cannot_separate(self, synth):
        """No threshold achieves both recall>=0.8 and FPR<=0.2 (the
        paper's argument for abandoning logit-based detection)."""
        correct = np.array([synth.max_prob(f"b{i}", 0, False) for i in range(2000)])
        branching = np.array([synth.max_prob(f"b{i}", 0, True) for i in range(2000)])
        ok = False
        for thr in np.linspace(0.85, 1.0, 60):
            recall = (branching < thr).mean()
            fpr = (correct < thr).mean()
            if recall >= 0.8 and fpr <= 0.2:
                ok = True
        assert not ok
