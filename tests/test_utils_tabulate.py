"""Tests for ASCII table rendering."""

import pytest

from repro.utils.tabulate import format_cell, render_table


def test_basic_alignment():
    out = render_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
    lines = out.splitlines()
    assert lines[0].startswith("a ")
    assert "2.50" in out and "3.25" in out


def test_title_rendered():
    out = render_table(["x"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_row_width_mismatch_raises():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [[1]])


def test_format_cell_float_fmt():
    assert format_cell(3.14159, "{:.1f}") == "3.1"
    assert format_cell(True) == "True"
    assert format_cell("s") == "s"


def test_custom_float_format_applies_to_table():
    out = render_table(["v"], [[0.123456]], float_fmt="{:.4f}")
    assert "0.1235" in out
