"""Importable test helpers: hand-built schemas and instances.

These used to live in ``tests/conftest.py``, but test modules importing
them via ``from conftest import ...`` resolved *whichever* conftest got
onto ``sys.path`` first — ``benchmarks/conftest.py`` when both trees
were collected — and collection exploded. A plainly-named module keeps
the import unambiguous; ``conftest.py`` re-exports the same builders as
fixtures.
"""

from __future__ import annotations

from repro.corpus.dataset import InstanceFeatures
from repro.linking.instance import SchemaLinkingInstance
from repro.schema.column import Column, ColumnType
from repro.schema.database import Database
from repro.schema.table import ForeignKey, Table

__all__ = [
    "make_column",
    "make_racing_db",
    "make_instance",
    "make_trace",
    "assert_traces_equal",
]


def make_column(name: str, ctype=ColumnType.INTEGER, pk=False, words=None, pool="generic"):
    return Column(
        name=name,
        ctype=ctype,
        semantic_words=tuple(words or name.split("_")),
        is_primary=pk,
        value_pool=pool,
    )


def make_racing_db() -> Database:
    """A hand-built 4-table schema used across LLM/session tests."""
    races = Table(
        name="races",
        semantic_words=("races",),
        columns=(
            make_column("race_id", pk=True, pool="serial"),
            make_column("race_name", ColumnType.TEXT, words=["race", "name"], pool="word"),
            make_column("season_year", pool="year:2000..2020"),
        ),
    )
    drivers = Table(
        name="drivers",
        semantic_words=("drivers",),
        columns=(
            make_column("driver_id", pk=True, pool="serial"),
            make_column("surname", ColumnType.TEXT, words=["surname"], pool="person_last"),
        ),
    )
    lap_times = Table(
        name="lap_times",
        semantic_words=("lap", "times"),
        columns=(
            make_column("lap_id", pk=True, pool="serial"),
            make_column("race_id", pool="serial"),
            make_column("driver_id", pool="serial"),
            make_column("lap_milliseconds", words=["lap", "milliseconds"], pool="int:60000..120000"),
        ),
        foreign_keys=(
            ForeignKey("race_id", "races", "race_id"),
            ForeignKey("driver_id", "drivers", "driver_id"),
        ),
    )
    pit_stops = Table(
        name="pit_stops",
        semantic_words=("pit", "stops"),
        columns=(
            make_column("stop_id", pk=True, pool="serial"),
            make_column("race_id", pool="serial"),
            make_column("stop_milliseconds", words=["stop", "milliseconds"], pool="int:19000..40000"),
        ),
        foreign_keys=(ForeignKey("race_id", "races", "race_id"),),
    )
    return Database(name="racing_test", tables=(races, drivers, lap_times, pit_stops))


def make_instance(
    db: Database,
    gold: tuple[str, ...],
    task: str = "table",
    instance_id: str = "t1/table",
    difficulty: str = "simple",
) -> SchemaLinkingInstance:
    features = InstanceFeatures(
        table_ambiguity=0.0,
        column_ambiguity=0.0,
        dirty_gap=0.0,
        needs_knowledge=False,
        n_tables=len(db.tables),
        n_gold_tables=len(gold),
        n_gold_columns=2,
    )
    return SchemaLinkingInstance(
        instance_id=instance_id,
        db=db,
        question="test question",
        features=features,
        task=task,
        candidates=tuple(t.name for t in db.tables) if task == "table" else gold,
        gold_items=gold,
        difficulty=difficulty,
    )


# -- synthetic generation traces (persist/service tests) ----------------------


def make_trace(tag: str, n_steps: int = 2):
    """A tiny synthetic trace; values vary with ``tag`` but are exact."""
    import numpy as np

    from repro.llm.model import GenerationStep, GenerationTrace

    rng = np.random.default_rng(abs(hash(tag)) % (2**32))
    return GenerationTrace(
        instance_id=f"inst-{tag}",
        steps=[
            GenerationStep(
                position=i,
                proposed=f"tok-{tag}-{i}",
                hidden=rng.standard_normal((3, 4)),
                max_prob=float(rng.random()),
                item_index=i,
                within_index=0,
                is_branching=bool(i % 2),
                committed=f"tok-{tag}-{i}" if i % 2 == 0 else None,
                forced=False,
            )
            for i in range(n_steps)
        ],
        aborted=False,
    )


def assert_traces_equal(a, b) -> None:
    """Bit-exact trace equality (hidden states compared exactly)."""
    import numpy as np

    assert a.instance_id == b.instance_id
    assert a.aborted == b.aborted
    assert len(a.steps) == len(b.steps)
    for sa, sb in zip(a.steps, b.steps):
        assert sa.proposed == sb.proposed
        assert sa.committed == sb.committed
        assert sa.position == sb.position
        assert sa.max_prob == sb.max_prob  # exact, not approx
        assert sa.is_branching == sb.is_branching
        assert sa.forced == sb.forced
        assert sa.hidden.dtype == sb.hidden.dtype
        assert np.array_equal(sa.hidden, sb.hidden)
