"""Tests for the end-to-end RTS pipeline and the TAR/FAR accounting."""

import pytest

from repro.abstention.human import EXPERT, HumanOracle
from repro.core.config import RTSConfig
from repro.core.pipeline import RTSPipeline
from repro.core.results import build_report


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = RTSConfig()
        assert cfg.alpha == 0.1
        assert cfg.k == 5
        assert cfg.aggregation == "permutation"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"k": 0},
            {"calib_fraction": 1.0},
            {"train_fraction": 0.0},
            {"aggregation": "vibes"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RTSConfig(**kwargs)


class TestFitting:
    def test_unfitted_raises(self, llm):
        pipe = RTSPipeline(llm)
        with pytest.raises(RuntimeError):
            pipe.mbpp("table")

    def test_fit_benchmark_both_tasks(self, fitted_pipeline):
        assert fitted_pipeline.mbpp("table") is not None
        assert fitted_pipeline.mbpp("column") is not None

    def test_train_fraction_reduces_dataset(self, llm, bird_tiny):
        full = RTSPipeline(llm, RTSConfig(seed=3)).fit_benchmark(
            bird_tiny, tasks=("table",)
        )
        frac = RTSPipeline(llm, RTSConfig(seed=3, train_fraction=0.5)).fit_benchmark(
            bird_tiny, tasks=("table",)
        )
        assert (
            frac.branch_dataset("table").n_tokens
            < full.branch_dataset("table").n_tokens
        )


class TestLinkModes:
    def test_abstain_mode_outcomes(self, fitted_pipeline, bird_tiny):
        outcomes = [
            fitted_pipeline.link(
                RTSPipeline.instance_for(e, bird_tiny, "table"), mode="abstain"
            )
            for e in bird_tiny.dev
        ]
        for o in outcomes:
            assert o.abstained == (o.predicted is None)
            if o.abstained:
                assert o.flags >= 1
        report = build_report(outcomes)
        assert report.tar + report.far == pytest.approx(
            sum(o.signalled for o in outcomes) / len(outcomes)
        )

    def test_surrogate_mode_reduces_abstentions(
        self, fitted_pipeline, bird_tiny, surrogate_tiny
    ):
        insts = [
            RTSPipeline.instance_for(e, bird_tiny, "table") for e in bird_tiny.dev
        ]
        abstain = [fitted_pipeline.link(i, mode="abstain") for i in insts]
        surrogate = [
            fitted_pipeline.link(i, mode="surrogate", surrogate=surrogate_tiny)
            for i in insts
        ]
        assert sum(o.abstained for o in surrogate) <= sum(o.abstained for o in abstain)

    def test_human_mode_always_answers(self, fitted_pipeline, bird_tiny):
        human = HumanOracle(EXPERT, seed=9)
        outcomes = [
            fitted_pipeline.link(
                RTSPipeline.instance_for(e, bird_tiny, "table"),
                mode="human",
                human=human,
            )
            for e in bird_tiny.dev
        ]
        assert all(o.predicted is not None for o in outcomes)

    def test_human_mode_beats_unassisted(self, fitted_pipeline, bird_tiny):
        human = HumanOracle(EXPERT, seed=9)
        outcomes = [
            fitted_pipeline.link(
                RTSPipeline.instance_for(e, bird_tiny, "table"),
                mode="human",
                human=human,
            )
            for e in bird_tiny.dev
        ]
        assisted = sum(o.correct for o in outcomes)
        unassisted = sum(o.unassisted_correct for o in outcomes)
        assert assisted >= unassisted

    def test_mode_validation(self, fitted_pipeline, bird_tiny):
        inst = RTSPipeline.instance_for(bird_tiny.dev.examples[0], bird_tiny, "table")
        with pytest.raises(ValueError):
            fitted_pipeline.link(inst, mode="nope")
        with pytest.raises(ValueError):
            fitted_pipeline.link(inst, mode="surrogate")
        with pytest.raises(ValueError):
            fitted_pipeline.link(inst, mode="human")


class TestJoint:
    def test_joint_outcome_consistency(self, fitted_pipeline, bird_tiny):
        human = HumanOracle(EXPERT, seed=9)
        for example in bird_tiny.dev.examples[:6]:
            j = fitted_pipeline.link_joint(example, bird_tiny, mode="human", human=human)
            assert j.example_id == example.example_id
            if j.tables is not None:
                assert all(bird_tiny.database(example.db_id).schema.has_table(t)
                           or True for t in j.tables)
            # Gold columns are qualified items.
            assert all("." in c for c in j.gold_columns)

    def test_joint_columns_require_tables(self, fitted_pipeline, bird_tiny):
        human = HumanOracle(EXPERT, seed=9)
        j = fitted_pipeline.link_joint(
            bird_tiny.dev.examples[0], bird_tiny, mode="human", human=human
        )
        if j.columns is not None:
            tables = {t.lower() for t in (j.tables or ())}
            for item in j.columns:
                assert item.split(".")[0].lower() in tables


class TestReportAccounting:
    def test_report_identities(self, fitted_pipeline, bird_tiny):
        outcomes = [
            fitted_pipeline.link(
                RTSPipeline.instance_for(e, bird_tiny, "table"), mode="abstain"
            )
            for e in bird_tiny.dev
        ]
        report = build_report(outcomes)
        assert 0.0 <= report.tar <= 1.0
        assert 0.0 <= report.far <= 1.0
        assert report.n == len(outcomes)
        assert report.n_answered == sum(1 for o in outcomes if o.answered)

    def test_empty_report(self):
        import math

        report = build_report([])
        assert report.n == 0
        assert math.isnan(report.em)
