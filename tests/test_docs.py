"""Tests for the docs-vs-``--help`` gate (scripts/check_docs_flags.py).

The operator docs promise CLI invocations in their code blocks; the
gate fails CI whenever a documented flag is not reported by that CLI's
``--help``. These tests pin the gate itself: the shipped docs are
clean, a fabricated flag is caught, non-repro commands are ignored,
and subcommand flags count as documented.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_docs_flags", REPO / "scripts" / "check_docs_flags.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_all_four_docs_exist():
    for name in ("README.md", "docs/architecture.md", "docs/operations.md",
                 "docs/http-api.md"):
        assert (REPO / name).is_file(), f"{name} is missing"


def test_shipped_docs_pass_the_gate(gate):
    assert gate.scan() == []


def test_fabricated_flag_is_caught(gate, tmp_path):
    doc = tmp_path / "bad.md"
    doc.write_text(
        "# Bad\n\n```bash\nrepro-serve --port 8080 --turbo-mode full\n```\n"
    )
    violations = gate.scan([doc])
    assert len(violations) == 1
    assert "--turbo-mode" in violations[0] and "repro-serve" in violations[0]


def test_backslash_continuations_resolve_to_one_command(gate, tmp_path):
    doc = tmp_path / "cont.md"
    doc.write_text(
        "```bash\nrepro-run --benchmark bird \\\n    --no-such-flag 1\n```\n"
    )
    (violation,) = gate.scan([doc])
    assert "--no-such-flag" in violation and "repro-run" in violation


def test_non_repro_commands_and_prose_are_ignored(gate, tmp_path):
    doc = tmp_path / "ok.md"
    doc.write_text(
        "Prose may mention --whatever-it-likes freely.\n\n"
        "```bash\ncurl --fail-with-body http://x/healthz\n"
        "kill -TERM 123\n```\n"
    )
    assert gate.scan([doc]) == []


def test_subcommand_flags_count(gate, tmp_path):
    doc = tmp_path / "sub.md"
    doc.write_text("```bash\nrepro-cache compact --cache-dir out/gen --force\n```\n")
    assert gate.scan([doc]) == []  # --force lives on the compact subparser


def test_missing_doc_is_a_violation(gate, tmp_path):
    violations = gate.scan([tmp_path / "ghost.md"])
    assert violations and "missing" in violations[0]
