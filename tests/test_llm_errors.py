"""Tests for the error process: propensity, event planning, distractors."""

import pytest

from repro.corpus.dataset import InstanceFeatures
from repro.llm.errors import (
    ErrorEvent,
    ErrorModelConfig,
    INSERT,
    OMIT,
    SUBSTITUTE,
    error_propensity,
    plan_errors,
)

from helpers import make_instance, make_racing_db


def features(**overrides) -> InstanceFeatures:
    base = dict(
        table_ambiguity=0.0,
        column_ambiguity=0.0,
        dirty_gap=0.0,
        needs_knowledge=False,
        n_tables=5,
        n_gold_tables=1,
        n_gold_columns=2,
    )
    base.update(overrides)
    return InstanceFeatures(**base)


class TestPropensity:
    def test_monotone_in_dirty_gap(self):
        lo = error_propensity(features(dirty_gap=0.0), "table", "simple")
        hi = error_propensity(features(dirty_gap=0.8), "table", "simple")
        assert hi > lo

    def test_monotone_in_difficulty(self):
        p = [
            error_propensity(features(), "table", d)
            for d in ("simple", "moderate", "challenging")
        ]
        assert p[0] < p[1] < p[2]

    def test_column_task_harder(self):
        t = error_propensity(features(), "table", "simple")
        c = error_propensity(features(), "column", "simple")
        assert c > t

    def test_capped(self):
        cfg = ErrorModelConfig(max_propensity=0.3)
        p = error_propensity(
            features(dirty_gap=1.0, needs_knowledge=True), "column", "challenging", cfg
        )
        assert p <= 0.3

    def test_bounded_probability(self):
        p = error_propensity(features(), "table", "simple")
        assert 0.0 < p < 1.0


class TestEventValidation:
    def test_payload_required(self):
        with pytest.raises(ValueError):
            ErrorEvent(slot=0, kind=SUBSTITUTE)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            ErrorEvent(slot=0, kind="explode")

    def test_omit_needs_no_payload(self):
        assert ErrorEvent(slot=1, kind=OMIT).payload is None


class TestPlanning:
    def test_deterministic(self):
        db = make_racing_db()
        inst = make_instance(db, ("races", "lap_times"), instance_id="e1/table")
        assert plan_errors(inst, 11) == plan_errors(inst, 11)

    def test_empty_gold_yields_no_events(self):
        db = make_racing_db()
        inst = make_instance(db, (), instance_id="e2/table")
        assert plan_errors(inst, 11) == []

    def test_never_plans_empty_generation(self):
        db = make_racing_db()
        # Sweep many instances; whenever events exist, at least one
        # planned item must remain.
        for i in range(120):
            inst = make_instance(
                db, ("races",), instance_id=f"g{i}/table", difficulty="challenging"
            )
            events = plan_errors(inst, 11)
            omits = sum(1 for e in events if e.kind == OMIT)
            assert omits < max(1, len(inst.gold_items)) or any(
                e.kind == INSERT for e in events
            )

    def test_payloads_never_gold(self):
        db = make_racing_db()
        for i in range(200):
            inst = make_instance(
                db,
                ("races", "drivers"),
                instance_id=f"p{i}/table",
                difficulty="challenging",
            )
            for event in plan_errors(inst, 11):
                if event.payload is not None:
                    assert event.payload not in inst.gold_items

    def test_error_rate_tracks_propensity(self):
        db = make_racing_db()
        hard = sum(
            bool(
                plan_errors(
                    make_instance(db, ("races",), instance_id=f"h{i}/table",
                                  difficulty="challenging"),
                    11,
                )
            )
            for i in range(300)
        )
        easy = sum(
            bool(
                plan_errors(
                    make_instance(db, ("races",), instance_id=f"h{i}/table",
                                  difficulty="simple"),
                    11,
                )
            )
            for i in range(300)
        )
        assert hard > easy

    def test_shared_hardness_couples_tasks(self):
        # Same example id -> the table-task error implies an elevated
        # chance of a column-task error (comonotone coupling).
        db = make_racing_db()
        both = table_only = 0
        for i in range(400):
            t_inst = make_instance(db, ("races",), instance_id=f"c{i}/table",
                                   difficulty="moderate")
            c_inst = make_instance(
                db, ("races",), task="table",  # same candidates; simulate column id
                instance_id=f"c{i}/column", difficulty="moderate",
            )
            t_err = bool(plan_errors(t_inst, 11))
            c_err = bool(plan_errors(c_inst, 11))
            if t_err and c_err:
                both += 1
            elif t_err:
                table_only += 1
        # With shared hardness, table errors should mostly co-occur with
        # column errors (column propensity >= table propensity).
        assert both > table_only
