"""Tests for corpus generation: values, databases, questions, benchmarks."""

import numpy as np
import pytest

from repro.corpus.dataset import DIFFICULTIES
from repro.corpus.generator import CorpusScale, DatabaseFactory
from repro.corpus.questions import QuestionFactory
from repro.corpus.spider import SpiderBuilder
from repro.corpus.values import draw_value, pool_values
from repro.schema.naming import NamingStyle
from repro.sqlengine.executor import Executor


class TestValues:
    def test_choice_pool(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert draw_value("choice:a|b", rng) in ("a", "b")

    def test_int_range(self):
        rng = np.random.default_rng(0)
        values = [draw_value("int:3..5", rng) for _ in range(50)]
        assert set(values) <= {3, 4, 5}
        assert len(set(values)) == 3

    def test_real_range_rounded(self):
        rng = np.random.default_rng(0)
        v = draw_value("real:0..1", rng)
        assert 0 <= v <= 1
        assert round(v, 2) == v

    def test_date_format(self):
        rng = np.random.default_rng(0)
        v = draw_value("date", rng)
        assert len(v) == 10 and v[4] == "-" and v[7] == "-"

    def test_named_pool(self):
        rng = np.random.default_rng(0)
        assert draw_value("city", rng) in pool_values("city")

    def test_unknown_pool_raises(self):
        with pytest.raises(KeyError):
            draw_value("nope", np.random.default_rng(0))

    def test_pool_values_for_choice(self):
        assert pool_values("choice:x|y") == ("x", "y")
        assert pool_values("int:1..2") is None


class TestDatabaseFactory:
    @pytest.fixture(scope="class")
    def factory(self):
        return DatabaseFactory(seed=3, style=NamingStyle.SNAKE, scale=CorpusScale.tiny())

    def test_deterministic(self, factory):
        a = factory.build_database(0)
        b = factory.build_database(0)
        assert a.schema.table_names == b.schema.table_names
        assert a.rows == b.rows

    def test_fk_values_exist_in_parent(self, factory):
        pdb = factory.build_database(0)
        db = pdb.schema
        for table in db.tables:
            for fk in table.foreign_keys:
                parent = db.table(fk.ref_table)
                parent_idx = [c.name for c in parent.columns].index(fk.ref_column)
                parent_values = {r[parent_idx] for r in pdb.rows[parent.name]}
                child_idx = [c.name for c in table.columns].index(fk.column)
                for row in pdb.rows[table.name]:
                    if row[child_idx] is not None:
                        assert row[child_idx] in parent_values

    def test_primary_keys_unique(self, factory):
        pdb = factory.build_database(1)
        for table in pdb.schema.tables:
            pk = table.primary_key
            if not pk:
                continue
            idx = [c.name for c in table.columns].index(pk[0])
            values = [r[idx] for r in pdb.rows[table.name]]
            assert len(values) == len(set(values))

    def test_style_override(self, factory):
        dirty = factory.build_database(0, style=NamingStyle.DIRTY)
        assert dirty.schema.dirty

    def test_column_values_deduplicated(self, factory):
        pdb = factory.build_database(0)
        table = pdb.schema.tables[0]
        col = table.columns[0]
        values = pdb.column_values(table.name, col.name)
        assert len(values) == len(set(values))


class TestQuestions:
    @pytest.fixture(scope="class")
    def pdb(self):
        factory = DatabaseFactory(seed=3, style=NamingStyle.SNAKE, scale=CorpusScale.tiny())
        return factory.build_database(0)

    def test_examples_have_consistent_gold(self, pdb):
        qf = QuestionFactory(pdb, np.random.default_rng(0))
        for example in qf.build(20, "t"):
            # Gold tables are exactly the tables the gold SQL references.
            assert set(example.gold_tables) == set(example.query.tables_used())
            for t in example.gold_tables:
                assert pdb.schema.has_table(t)

    def test_difficulty_mix_all_present(self, pdb):
        qf = QuestionFactory(pdb, np.random.default_rng(1))
        difficulties = {e.difficulty for e in qf.build(60, "t")}
        assert difficulties == set(DIFFICULTIES)

    def test_question_text_uses_surfaces(self, pdb):
        qf = QuestionFactory(pdb, np.random.default_rng(2))
        example = qf.build_one("q1")
        assert example.question.strip()
        assert example.question[0].isupper() or example.question[0].isdigit()

    def test_features_in_range(self, pdb):
        qf = QuestionFactory(pdb, np.random.default_rng(3))
        for e in qf.build(20, "t"):
            f = e.features
            assert 0 <= f.table_ambiguity <= 1
            assert 0 <= f.column_ambiguity <= 1
            assert 0 <= f.dirty_gap <= 1
            assert f.n_gold_tables == len(e.gold_tables)


class TestBenchmarks:
    def test_gold_sql_executes_everywhere(self, bird_tiny, spider_tiny):
        for bench in (bird_tiny, spider_tiny):
            executor = Executor(bench.databases)
            for split in ("train", "dev", "test"):
                for example in bench.split(split):
                    result = executor.execute(example.db_id, example.gold_sql)
                    assert result.ok, (example.gold_sql, result.error)
            executor.close()

    def test_bird_is_dirty_spider_is_clean(self, bird_tiny, spider_tiny):
        assert any(p.schema.dirty for p in bird_tiny.databases.values())
        assert not any(p.schema.dirty for p in spider_tiny.databases.values())

    def test_bird_has_knowledge_spider_does_not(self, bird_tiny, spider_tiny):
        assert any(e.knowledge for e in bird_tiny.dev)
        assert not any(e.knowledge for e in spider_tiny.dev)

    def test_bird_measures_harder_than_spider(self, bird_tiny, spider_tiny):
        bird_gap = np.mean([e.features.dirty_gap for e in bird_tiny.dev])
        spider_gap = np.mean([e.features.dirty_gap for e in spider_tiny.dev])
        assert bird_gap > spider_gap

    def test_builders_deterministic(self):
        a = SpiderBuilder(seed=5, scale=CorpusScale.tiny()).build()
        b = SpiderBuilder(seed=5, scale=CorpusScale.tiny()).build()
        assert [e.gold_sql for e in a.dev] == [e.gold_sql for e in b.dev]
        assert [e.question for e in a.dev] == [e.question for e in b.dev]

    def test_card_counts(self, bird_tiny):
        card = bird_tiny.card()
        assert card["train"] == len(bird_tiny.train)
        assert card["databases"] == len(bird_tiny.databases)

    def test_split_lookup(self, bird_tiny):
        assert bird_tiny.split("dev") is bird_tiny.dev
        with pytest.raises(KeyError):
            bird_tiny.split("nope")

    def test_example_ids_unique(self, bird_tiny):
        ids = [e.example_id for s in ("train", "dev", "test") for e in bird_tiny.split(s)]
        assert len(ids) == len(set(ids))
