"""Tests for repro.utils.text identifier handling."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.text import (
    abbreviate,
    normalize_ws,
    split_identifier,
    to_camel_case,
    to_pascal_case,
    to_snake_case,
    words_of,
)


@pytest.mark.parametrize(
    "name,expected",
    [
        ("lapTimes", ["lap", "times"]),
        ("lap_times", ["lap", "times"]),
        ("T_BIL", ["t", "bil"]),
        ("raceId", ["race", "id"]),
        ("EdOps", ["ed", "ops"]),
        ("HTTPServer", ["http", "server"]),
        ("kebab-case-name", ["kebab", "case", "name"]),
        ("", []),
        ("x", ["x"]),
    ],
)
def test_split_identifier(name, expected):
    assert split_identifier(name) == expected


def test_case_conversions_roundtrip_words():
    words = ["lap", "times"]
    assert to_snake_case(words) == "lap_times"
    assert to_camel_case(words) == "lapTimes"
    assert to_pascal_case(words) == "LapTimes"


def test_case_conversions_from_string():
    assert to_snake_case("lapTimes") == "lap_times"
    assert to_camel_case("lap_times") == "lapTimes"


def test_camel_of_empty():
    assert to_camel_case([]) == ""


def test_abbreviate_canonical():
    assert abbreviate("education") == "ed"
    assert abbreviate("number") == "num"
    assert abbreviate("bilirubin") == "bil"


def test_abbreviate_vowel_strip():
    assert abbreviate("grade") == "grd"
    assert abbreviate("cat") == "cat"  # short words unchanged


def test_words_of_strips_punctuation():
    assert words_of("What is the lap-time, please?") == [
        "what", "is", "the", "lap", "time", "please",
    ]


def test_normalize_ws():
    assert normalize_ws("  a \n b\t c ") == "a b c"


@given(st.lists(st.text(alphabet="abcdefgh", min_size=1, max_size=6), min_size=1, max_size=4))
def test_snake_case_splits_back(words):
    assert split_identifier(to_snake_case(words)) == [w.lower() for w in words]
