"""Tests for the generation session: divergence, teacher forcing,
realignment — driven by hand-constructed error events."""

import numpy as np
import pytest

from repro.llm.errors import ErrorEvent
from repro.llm.model import GenerationSession, TransparentLLM
from repro.llm.tokenizer import EOS, SEP, tokenize_items

from helpers import make_instance, make_racing_db


@pytest.fixture(scope="module")
def db():
    return make_racing_db()


def session_with(llm, db, gold, events, instance_id="s1/table"):
    instance = make_instance(db, gold, instance_id=instance_id)
    return GenerationSession(llm, instance, events)


class TestCleanGeneration:
    def test_emits_gold_stream(self, llm, db):
        s = session_with(llm, db, ("races", "drivers"), [])
        s.run_to_completion()
        assert s.committed_tokens == tokenize_items(["races", "drivers"])
        assert s.decoded_items() == ["races", "drivers"]
        assert s.trace().n_branching == 0
        assert s.aligned

    def test_steps_have_hidden_states(self, llm, db):
        s = session_with(llm, db, ("races",), [])
        s.run_to_completion()
        for step in s.steps:
            assert step.hidden.shape == (llm.n_layers, llm.config.hidden.dim)
            assert 0.0 <= step.max_prob <= 1.0

    def test_propose_is_cached_until_commit(self, llm, db):
        s = session_with(llm, db, ("races",), [])
        a = s.propose()
        b = s.propose()
        assert a is b

    def test_deterministic_traces(self, db):
        llm = TransparentLLM(seed=5)
        inst = make_instance(db, ("races",), instance_id="det/table")
        t1 = llm.generate(inst)
        t2 = llm.generate(inst)
        assert t1.committed_tokens == t2.committed_tokens
        np.testing.assert_array_equal(t1.hidden_matrix(), t2.hidden_matrix())


class TestSubstitution:
    def test_free_run_emits_distractor(self, llm, db):
        events = [ErrorEvent(0, "substitute", "pit_stops")]
        s = session_with(llm, db, ("races",), events)
        s.run_to_completion()
        assert s.decoded_items() == ["pit_stops"]
        assert s.trace().n_branching == 1  # first divergence only

    def test_teacher_forcing_repairs(self, llm, db):
        events = [ErrorEvent(0, "substitute", "pit_stops")]
        inst = make_instance(db, ("races",), instance_id="tf1/table")
        s = GenerationSession(llm, inst, events)
        gold = tokenize_items(["races"])
        while not s.done:
            step = s.propose()
            if step.is_branching:
                s.force_token(gold[s.n_committed])
            else:
                s.commit()
        assert s.decoded_items() == ["races"]
        assert sum(1 for st in s.steps if st.forced) == 1

    def test_shared_prefix_divergence_mid_item(self, llm, db):
        # lap_times vs pit_stops share nothing; use drivers vs races to
        # get immediate divergence; the mid-item case uses lap_times gold
        # and a constructed same-prefix table through the racing schema:
        # 'lap_times' vs 'lap_...': not available, so assert the general
        # invariant instead: the branching position is the first token
        # where streams differ.
        events = [ErrorEvent(0, "substitute", "lap_times")]
        s = session_with(llm, db, ("drivers",), events)
        gold = tokenize_items(["drivers"])
        step = s.propose()
        assert step.is_branching
        assert step.proposed != gold[0]


class TestOmission:
    def test_free_run_drops_item(self, llm, db):
        events = [ErrorEvent(0, "omit")]
        s = session_with(llm, db, ("races", "drivers"), events)
        s.run_to_completion()
        assert s.decoded_items() == ["drivers"]

    def test_trailing_omission_diverges_at_sep(self, llm, db):
        events = [ErrorEvent(1, "omit")]
        s = session_with(llm, db, ("races", "drivers"), events)
        # Walk until the divergence: proposal EOS where gold wants SEP.
        while True:
            step = s.propose()
            if step.is_branching:
                assert step.proposed == EOS
                break
            s.commit()

    def test_teacher_forcing_restores_omitted_item(self, llm, db):
        events = [ErrorEvent(1, "omit")]
        inst = make_instance(db, ("races", "drivers"), instance_id="om1/table")
        s = GenerationSession(llm, inst, events)
        gold = tokenize_items(["races", "drivers"])
        while not s.done:
            step = s.propose()
            if step.is_branching:
                s.force_token(gold[s.n_committed])
            else:
                s.commit()
        assert s.decoded_items() == ["races", "drivers"]


class TestInsertion:
    def test_free_run_adds_spurious_item(self, llm, db):
        events = [ErrorEvent(1, "insert", "pit_stops")]
        s = session_with(llm, db, ("races", "drivers"), events)
        s.run_to_completion()
        assert s.decoded_items() == ["races", "pit_stops", "drivers"]

    def test_insert_at_eos(self, llm, db):
        events = [ErrorEvent(1, "insert", "pit_stops")]
        s = session_with(llm, db, ("races",), events)
        s.run_to_completion()
        assert s.decoded_items() == ["races", "pit_stops"]
        # Divergence was at the SEP where gold says EOS.
        branching = [st for st in s.steps if st.is_branching]
        assert branching[0].proposed == SEP

    def test_teacher_forcing_suppresses_insert(self, llm, db):
        events = [ErrorEvent(1, "insert", "pit_stops")]
        inst = make_instance(db, ("races",), instance_id="in1/table")
        s = GenerationSession(llm, inst, events)
        gold = tokenize_items(["races"])
        while not s.done:
            step = s.propose()
            if step.is_branching:
                s.force_token(gold[s.n_committed])
            else:
                s.commit()
        assert s.decoded_items() == ["races"]


class TestMultipleEvents:
    def test_two_events_two_branchings_under_forcing(self, llm, db):
        events = [
            ErrorEvent(0, "substitute", "pit_stops"),
            ErrorEvent(2, "insert", "lap_times"),
        ]
        inst = make_instance(db, ("races", "drivers"), instance_id="m1/table")
        TransparentLLM.teacher_forced_trace.__get__(llm)(inst)  # clean llm path
        # Constructed session instead (explicit events):
        s = GenerationSession(llm, inst, events)
        gold = tokenize_items(["races", "drivers"])
        n_forced = 0
        while not s.done:
            step = s.propose()
            if step.is_branching:
                s.force_token(gold[s.n_committed])
                n_forced += 1
            else:
                s.commit()
        assert s.decoded_items() == ["races", "drivers"]
        assert n_forced == 2

    def test_branching_counts_match_events_in_forced_mode(self, llm, db):
        events = [
            ErrorEvent(0, "omit"),
            ErrorEvent(1, "substitute", "pit_stops"),
        ]
        inst = make_instance(db, ("races", "drivers"), instance_id="m2/table")
        s = GenerationSession(llm, inst, events)
        gold = tokenize_items(["races", "drivers"])
        forced = 0
        while not s.done:
            step = s.propose()
            if step.is_branching:
                s.force_token(gold[s.n_committed])
                forced += 1
            else:
                s.commit()
        assert s.decoded_items() == ["races", "drivers"]
        assert forced == 2


class TestSessionAPI:
    def test_force_requires_gold_token(self, llm, db):
        events = [ErrorEvent(0, "substitute", "pit_stops")]
        s = session_with(llm, db, ("races",), events, instance_id="api1/table")
        s.propose()
        with pytest.raises(ValueError):
            s.force_token("garbage")

    def test_force_after_divergence_rejected(self, llm, db):
        events = [ErrorEvent(0, "substitute", "pit_stops")]
        s = session_with(llm, db, ("races",), events, instance_id="api2/table")
        s.commit()  # commit the wrong token -> off the gold path
        gold = tokenize_items(["races"])
        with pytest.raises(RuntimeError):
            s.force_token(gold[1] if len(gold) > 1 else gold[0])

    def test_abort_marks_trace(self, llm, db):
        s = session_with(llm, db, ("races",), [], instance_id="api3/table")
        s.propose()
        s.abort()
        assert s.done
        assert s.trace().aborted

    def test_peek_matches_future_commits(self, llm, db):
        events = [ErrorEvent(0, "substitute", "pit_stops")]
        s = session_with(llm, db, ("races", "drivers"), events, instance_id="api4/table")
        peeked = s.peek_tokens(32)
        emitted = []
        while not s.done:
            emitted.append(s.commit().committed)
        assert peeked[: len(emitted)] == emitted

    def test_propose_after_done_raises(self, llm, db):
        s = session_with(llm, db, ("races",), [], instance_id="api5/table")
        s.run_to_completion()
        with pytest.raises(RuntimeError):
            s.propose()


class TestTeacherForcedTraceAPI:
    def test_labels_equal_proposal_vs_committed(self, llm, bird_tiny):
        from repro.core.pipeline import RTSPipeline

        for example in bird_tiny.dev.examples[:10]:
            inst = RTSPipeline.instance_for(example, bird_tiny, "table")
            trace = llm.teacher_forced_trace(inst)
            # Teacher forcing always lands on the gold stream.
            assert list(trace.items) == list(inst.gold_items)
            for step in trace.steps:
                assert step.is_branching == (step.proposed != step.committed)
