"""Tests for the SQL AST: rendering, analysis, transformation."""

import pytest

from repro.corpus.sqlast import (
    ColumnRef,
    Condition,
    JoinEdge,
    OrderTerm,
    SelectItem,
    SelectQuery,
    Subquery,
)


def simple_query() -> SelectQuery:
    return SelectQuery(
        select=(SelectItem(col=ColumnRef("t", "a")),),
        tables=("t",),
    )


def join_query() -> SelectQuery:
    return SelectQuery(
        select=(
            SelectItem(col=ColumnRef("a", "x")),
            SelectItem(col=ColumnRef("b", "y")),
        ),
        tables=("a", "b"),
        joins=(JoinEdge(ColumnRef("a", "id"), ColumnRef("b", "a_id")),),
        where=(Condition(ColumnRef("b", "z"), "=", "v"),),
    )


class TestRendering:
    def test_simple_select(self):
        assert simple_query().render() == "SELECT a FROM t"

    def test_join_qualifies_columns(self):
        sql = join_query().render()
        assert "SELECT a.x, b.y" in sql
        assert "JOIN b ON a.id = b.a_id" in sql
        assert "WHERE b.z = 'v'" in sql

    def test_string_escaping(self):
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef("t", "a")),),
            tables=("t",),
            where=(Condition(ColumnRef("t", "a"), "=", "O'Brien"),),
        )
        assert "O''Brien" in q.render()

    def test_count_star(self):
        q = SelectQuery(
            select=(SelectItem(col=None, agg="COUNT"),), tables=("t",)
        )
        assert q.render() == "SELECT COUNT(*) FROM t"

    def test_distinct(self):
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef("t", "a"), distinct=True),),
            tables=("t",),
        )
        assert "DISTINCT a" in q.render()

    def test_group_having_order_limit(self):
        ref = ColumnRef("t", "g")
        q = SelectQuery(
            select=(SelectItem(col=ref),),
            tables=("t",),
            group_by=(ref,),
            having=(Condition(None, ">", 2, agg="COUNT"),),
            order_by=(OrderTerm(None, "DESC", agg="COUNT"),),
            limit=3,
        )
        sql = q.render()
        assert "GROUP BY g" in sql
        assert "HAVING COUNT(*) > 2" in sql
        assert "ORDER BY COUNT(*) DESC" in sql
        assert sql.endswith("LIMIT 3")

    def test_subquery_value(self):
        inner = SelectQuery(
            select=(SelectItem(col=ColumnRef("t", "a"), agg="AVG"),),
            tables=("t",),
        )
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef("t", "b")),),
            tables=("t",),
            where=(Condition(ColumnRef("t", "a"), ">", Subquery(inner)),),
        )
        assert "WHERE a > (SELECT AVG(a) FROM t)" in q.render()

    def test_boolean_and_float_literals(self):
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef("t", "a")),),
            tables=("t",),
            where=(
                Condition(ColumnRef("t", "b"), "=", True),
                Condition(ColumnRef("t", "c"), ">", 1.5),
            ),
        )
        sql = q.render()
        assert "b = 1" in sql and "c > 1.5" in sql


class TestValidation:
    def test_empty_select_rejected(self):
        with pytest.raises(ValueError):
            SelectQuery(select=(), tables=("t",))

    def test_join_count_checked(self):
        with pytest.raises(ValueError):
            SelectQuery(
                select=(SelectItem(col=ColumnRef("a", "x")),),
                tables=("a", "b"),
            )

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            Condition(ColumnRef("t", "a"), "~", 1)

    def test_bad_aggregate_rejected(self):
        with pytest.raises(ValueError):
            SelectItem(col=ColumnRef("t", "a"), agg="MEDIAN")

    def test_non_count_must_have_column(self):
        with pytest.raises(ValueError):
            SelectItem(col=None, agg="AVG")

    def test_order_direction_checked(self):
        with pytest.raises(ValueError):
            OrderTerm(ColumnRef("t", "a"), "SIDEWAYS")


class TestAnalysis:
    def test_tables_used_includes_subquery(self):
        inner = SelectQuery(
            select=(SelectItem(col=ColumnRef("u", "a"), agg="AVG"),),
            tables=("u",),
        )
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef("t", "b")),),
            tables=("t",),
            where=(Condition(ColumnRef("t", "a"), ">", Subquery(inner)),),
        )
        assert q.tables_used() == ("t", "u")

    def test_columns_used_covers_joins_and_filters(self):
        cols = join_query().columns_used()
        assert set(cols["a"]) == {"x", "id"}
        assert set(cols["b"]) == {"y", "a_id", "z"}

    def test_columns_used_deduplicates(self):
        ref = ColumnRef("t", "a")
        q = SelectQuery(
            select=(SelectItem(col=ref),),
            tables=("t",),
            where=(Condition(ref, ">", 1),),
            order_by=(OrderTerm(ref, "ASC"),),
        )
        assert q.columns_used() == {"t": ("a",)}

    def test_has_order(self):
        assert not simple_query().has_order
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef("t", "a")),),
            tables=("t",),
            order_by=(OrderTerm(ColumnRef("t", "a"), "ASC"),),
        )
        assert q.has_order


class TestTransform:
    def test_replace_column_everywhere(self):
        q = join_query()
        replaced = q.replace_column(ColumnRef("b", "z"), ColumnRef("b", "w"))
        assert "b.w = 'v'" in replaced.render()
        assert "b.z" not in replaced.render()

    def test_replace_is_caseless(self):
        q = simple_query()
        replaced = q.replace_column(ColumnRef("T", "A"), ColumnRef("t", "c"))
        assert replaced.render() == "SELECT c FROM t"
