"""Tests for the logit-threshold baseline detector — and the quantified
version of the paper's §3.1 claim that it cannot compete with mBPP."""

import pytest

from repro.core.pipeline import RTSPipeline
from repro.linking.dataset import collect_branch_dataset
from repro.probes.baselines import LogitThresholdDetector, collect_max_probs
from repro.probes.metrics import evaluate_bpp


@pytest.fixture(scope="module")
def prob_data(llm, bird_tiny):
    train = [RTSPipeline.instance_for(e, bird_tiny, "table") for e in bird_tiny.train]
    dev = [RTSPipeline.instance_for(e, bird_tiny, "table") for e in bird_tiny.dev]
    return collect_max_probs(llm, train), collect_max_probs(llm, dev)


def test_fit_picks_threshold(prob_data):
    (tp, tl), _dev = prob_data
    detector = LogitThresholdDetector().fit(tp, tl)
    assert 0.0 < detector.threshold <= 1.0


def test_baseline_auc_is_weak(prob_data):
    """Over-confidence (Fig 3a): max-prob barely ranks branching tokens."""
    (tp, tl), _dev = prob_data
    detector = LogitThresholdDetector().fit(tp, tl)
    assert detector.auc < 0.8  # far below the sBPP's ~0.97


def test_predict_shape(prob_data):
    (tp, tl), (dp, dl) = prob_data
    detector = LogitThresholdDetector().fit(tp, tl)
    predicted = detector.predict(dp)
    assert predicted.shape == dl.shape


def test_baseline_cannot_match_mbpp_tradeoff(llm, bird_tiny, fitted_pipeline, prob_data):
    """At comparable coverage, the baseline's EAR is far worse — or it
    simply cannot reach mBPP's coverage at all."""
    (tp, tl), (dp, dl) = prob_data
    detector = LogitThresholdDetector().fit(tp, tl)
    baseline = detector.evaluate(dp, dl)

    dev = [RTSPipeline.instance_for(e, bird_tiny, "table") for e in bird_tiny.dev]
    dataset = collect_branch_dataset(llm, dev)
    mbpp_eval = evaluate_bpp(fitted_pipeline.mbpp("table"), dataset)

    if mbpp_eval.ear > 0.3:
        # Tiny-scale calibration collapse: the conformal guarantee makes
        # the mBPP abstain on (nearly) everything, so a trade-off
        # comparison is meaningless here. The ablations experiment covers
        # the operating regime at the default scale.
        pytest.skip("mBPP outside operating regime at tiny scale")
    if baseline.coverage >= mbpp_eval.coverage:
        assert baseline.ear > mbpp_eval.ear
    else:
        assert baseline.coverage < mbpp_eval.coverage
