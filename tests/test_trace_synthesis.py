"""Tests for the vectorized two-phase trace synthesis (``hidden-v2``).

Pins the tentpole guarantees:

* the vectorized fast path (symbolic walk + batched observables) and the
  incremental retained-streams session both reproduce the scalar
  reference oracle bit-exactly — tokens, labels, forced flags, metadata,
  hidden states and probabilities;
* the batch synthesizer APIs agree with the per-token APIs row by row;
* trace-level named streams are prefix-extendable and deterministic
  across processes;
* the ``hidden-v2`` identity bump lands persistent-cache entries in a
  fresh namespace that never aliases pre-versioned stores;
* columnar trace records round-trip bit-exactly (and legacy per-step
  records still rehydrate);
* the synthesizer's embedding cache is bounded with working counters,
  and the simulator's error-plan memo is bounded and value-stable.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from helpers import assert_traces_equal, make_instance, make_racing_db, make_trace

import repro.llm.hidden
from repro.core.pipeline import RTSPipeline
from repro.linking.dataset import BranchDataset, collect_branch_dataset
from repro.llm.hidden import (
    SIMULATOR_VERSION,
    HiddenConfig,
    HiddenStateSynthesizer,
    TraceStreams,
)
from repro.llm.model import TransparentLLM
from repro.llm.tokenizer import detokenize
from repro.runtime.persist import (
    PersistentGenerationCache,
    generation_namespace,
    trace_from_record,
    trace_to_record,
)
from repro.runtime.service import GenerationService, SimulatorBackend
from repro.utils.rng import spawn


@pytest.fixture(scope="module")
def instances(bird_tiny):
    out = []
    for task in ("table", "column"):
        for example in bird_tiny.dev.examples[:6]:
            out.append(RTSPipeline.instance_for(example, bird_tiny, task))
    return out


# -- scalar-vs-vectorized equivalence -----------------------------------------


def assert_same_symbols(a, b) -> None:
    """Symbolic-phase equality: everything except the observables."""
    assert [s.proposed for s in a.steps] == [s.proposed for s in b.steps]
    assert [s.committed for s in a.steps] == [s.committed for s in b.steps]
    assert [s.is_branching for s in a.steps] == [s.is_branching for s in b.steps]
    assert [s.forced for s in a.steps] == [s.forced for s in b.steps]
    assert [s.item_index for s in a.steps] == [s.item_index for s in b.steps]
    assert [s.within_index for s in a.steps] == [s.within_index for s in b.steps]
    assert [s.decision_point for s in a.steps] == [s.decision_point for s in b.steps]


class TestScalarVectorizedEquivalence:
    def test_teacher_forced_matches_oracle(self, llm, instances):
        for instance in instances:
            oracle = llm.teacher_forced_trace_scalar(instance)
            fast = llm.teacher_forced_trace(instance)
            assert_same_symbols(oracle, fast)
            assert_traces_equal(oracle, fast)
            assert fast.hidden_stack is not None

    def test_free_generation_matches_oracle(self, llm, instances):
        for instance in instances:
            oracle = llm.generate_scalar(instance)
            fast = llm.generate(instance)
            assert_same_symbols(oracle, fast)
            assert_traces_equal(oracle, fast)

    def test_incremental_session_matches_oracle(self, llm, instances):
        """The inference-time session (retained streams) is the third
        bit-identical path."""
        for instance in instances:
            session = llm.start_session(instance)
            session.run_teacher_forced()
            assert_traces_equal(
                llm.teacher_forced_trace_scalar(instance), session.trace()
            )

    def test_step_hidden_are_views_of_the_columnar_stack(self, llm, instances):
        trace = llm.teacher_forced_trace(instances[0])
        for i, step in enumerate(trace.steps):
            assert step.hidden.base is trace.hidden_stack
            assert np.array_equal(step.hidden, trace.hidden_stack[i])


class TestBatchApisMatchScalar:
    def test_hidden_and_probs_rowwise(self):
        synth = HiddenStateSynthesizer(seed=9)
        tokens = ["races", ",", "driver", "s", "<eos>", "driver"]
        prevs = ["<bos>", "races", ",", "driver", "s", "<eos>"]
        items = [1, 1, 2, 2, 2, 3]
        within = [0, 0, 0, 1, 0, 0]
        labels = [False, True, False, False, True, False]
        decisions = [True, True, True, False, True, True]
        batch = synth.hidden_states_batch(
            "i/batch", tokens, prevs, items, within, labels, decisions, 0.3
        )
        probs = synth.max_probs_batch("i/batch", labels)
        strengths = synth.signal_strengths_batch(
            "i/batch", labels, decisions, items, 0.3
        )
        for p in range(len(tokens)):
            row = synth.hidden_states(
                "i/batch",
                p,
                tokens[p],
                prevs[p],
                items[p],
                within[p],
                labels[p],
                decision_point=decisions[p],
                nervousness=0.3,
            )
            assert np.array_equal(batch[p], row)
            assert probs[p] == synth.max_prob("i/batch", p, labels[p])
            assert strengths[p] == synth.signal_strength(
                "i/batch", p, labels[p], decisions[p], 0.3, item_index=items[p]
            )

    def test_features_batch_shape_and_position_default(self):
        synth = HiddenStateSynthesizer(seed=9)
        phi = synth.features_batch("i/phi", ["a", "b"], ["<bos>", "a"], [1, 1], [0, 1])
        assert phi.shape == (2, synth.config.feature_dim)
        explicit = synth.features_batch(
            "i/phi", ["a", "b"], ["<bos>", "a"], [1, 1], [0, 1], positions=[0, 1]
        )
        assert np.array_equal(phi, explicit)


# -- trace-level named streams ------------------------------------------------


class TestTraceStreams:
    def test_prefix_extension_matches_one_shot(self):
        cfg = HiddenConfig()
        grown = TraceStreams(5, "stream/i", cfg)
        for n in (1, 2, 3, 5, 11, 24):
            grown.noise(n)
            grown.signal_z(n)
            grown.signal_u(n)
            grown.prob_correct(n)
            grown.prob_branch(n)
        fresh = TraceStreams(5, "stream/i", cfg)
        for name in ("noise", "signal_z", "signal_u", "prob_correct", "prob_branch"):
            assert np.array_equal(
                getattr(grown, name)(24), getattr(fresh, name)(24)
            ), name

    def test_streams_are_spawn_named(self):
        cfg = HiddenConfig()
        streams = TraceStreams(5, "stream/j", cfg)
        expected = spawn(5, "noise", "stream/j").normal(
            size=(4, cfg.n_layers, cfg.dim)
        )
        assert np.array_equal(streams.noise(4), expected)
        assert np.array_equal(
            streams.signal_z(6), spawn(5, "signal", "stream/j", "z").normal(size=6)
        )

    def test_cross_process_determinism(self):
        code = (
            "import hashlib, numpy as np\n"
            "from repro.llm.hidden import HiddenConfig, TraceStreams\n"
            "s = TraceStreams(7, 'xproc/instance', HiddenConfig())\n"
            "h = hashlib.blake2b(digest_size=16)\n"
            "for arr in (s.noise(9), s.signal_z(9), s.signal_u(9),\n"
            "            s.prob_correct(9), s.prob_branch(9)):\n"
            "    h.update(np.ascontiguousarray(arr).tobytes())\n"
            "print(h.hexdigest())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.llm.hidden.__file__).parents[2])
        child = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        import hashlib

        streams = TraceStreams(7, "xproc/instance", HiddenConfig())
        digest = hashlib.blake2b(digest_size=16)
        for arr in (
            streams.noise(9),
            streams.signal_z(9),
            streams.signal_u(9),
            streams.prob_correct(9),
            streams.prob_branch(9),
        ):
            digest.update(np.ascontiguousarray(arr).tobytes())
        assert child.stdout.strip() == digest.hexdigest()


# -- the hidden-v2 cache-namespace bump ----------------------------------------


class TestNamespaceBump:
    def test_identity_carries_simulator_version(self):
        llm = TransparentLLM(seed=11)
        assert SimulatorBackend(llm).identity() == (
            SIMULATOR_VERSION,
            llm.config,
            llm.seed,
        )
        assert SIMULATOR_VERSION == "hidden-v2"

    def test_v2_namespace_differs_from_preversioned(self):
        llm = TransparentLLM(seed=11)
        v2 = generation_namespace(*SimulatorBackend(llm).identity())
        v1 = generation_namespace(llm.config, llm.seed)
        assert v2 != v1

    def test_v2_store_never_reads_v1_entries(self, tmp_path):
        llm = TransparentLLM(seed=11)
        v1 = generation_namespace(llm.config, llm.seed)
        v2 = generation_namespace(*SimulatorBackend(llm).identity())
        key = ("free", "shared-key")
        old = PersistentGenerationCache(tmp_path, namespace=v1)
        old.admit(key, make_trace("v1"), miss=True)
        old.close()
        new = PersistentGenerationCache(tmp_path, namespace=v2)
        record, _tier = new.probe_disk(new.address(key))
        assert record is None  # same key, disjoint namespaces
        new.close()

    def test_service_build_lands_in_versioned_namespace(self, tmp_path):
        llm = TransparentLLM(seed=11)
        service = GenerationService.build(llm, cache_dir=tmp_path)
        assert service.cache.namespace == generation_namespace(
            SIMULATOR_VERSION, llm.config, llm.seed
        )
        assert service.namespace() == service.cache.namespace


# -- columnar trace records ----------------------------------------------------


class TestColumnarRecords:
    def test_fast_trace_roundtrips_columnar(self, llm, instances):
        trace = llm.teacher_forced_trace(instances[0])
        record = trace_to_record(trace)
        assert "hidden" in record  # one block for the whole trace...
        assert all("hidden" not in step for step in record["steps"])  # ...not per step
        back = trace_from_record(record)
        assert_traces_equal(trace, back)
        assert back.hidden_stack is not None
        assert np.array_equal(back.hidden_stack, trace.hidden_matrix())

    def test_stepwise_trace_roundtrips(self):
        trace = make_trace("columnar", n_steps=3)
        back = trace_from_record(trace_to_record(trace))
        assert_traces_equal(trace, back)

    def test_legacy_per_step_records_still_rehydrate(self):
        from repro.runtime.persist import _encode_array

        trace = make_trace("legacy", n_steps=2)
        legacy = {
            "instance_id": trace.instance_id,
            "aborted": False,
            "steps": [
                {
                    "position": step.position,
                    "proposed": step.proposed,
                    "hidden": _encode_array(step.hidden),
                    "max_prob": step.max_prob,
                    "item_index": step.item_index,
                    "within_index": step.within_index,
                    "is_branching": step.is_branching,
                    "committed": step.committed,
                    "forced": step.forced,
                }
                for step in trace.steps
            ],
        }
        back = trace_from_record(legacy)
        assert_traces_equal(trace, back)
        assert back.hidden_stack is None


# -- dataset assembly ----------------------------------------------------------


class TestBranchDatasetVectorized:
    def test_collect_matches_stepwise_assembly(self, llm, instances):
        traces = [llm.teacher_forced_trace(i) for i in instances]
        dataset = collect_branch_dataset(llm, instances, traces=traces)
        stacked = np.stack(
            [step.hidden for trace in traces for step in trace.steps]
        )
        labels = [
            step.proposed != step.committed
            for trace in traces
            for step in trace.steps
        ]
        assert np.array_equal(dataset.hidden, stacked)
        assert dataset.labels.tolist() == labels
        assert dataset.n_tokens == len(labels)

    def _dataset(self):
        rng = np.random.default_rng(3)
        groups = np.repeat(np.arange(7), [3, 1, 4, 2, 5, 1, 2])
        return BranchDataset(
            hidden=rng.normal(size=(len(groups), 2, 3)),
            labels=rng.random(len(groups)) < 0.4,
            groups=groups,
            instance_ids=[f"i{g}" for g in range(7)],
        )

    def test_branching_counts_match_naive_loop(self):
        dataset = self._dataset()
        naive = [
            int(dataset.labels[dataset.groups == g].sum())
            for g in np.unique(dataset.groups)
        ]
        assert dataset.branching_counts_per_generation().tolist() == naive

    def test_split_by_group_matches_naive_membership(self):
        dataset = self._dataset()
        first, second = dataset.split_by_group(0.5, np.random.default_rng(0))
        # Same permutation replayed through the naive membership test.
        unique = np.unique(dataset.groups)
        perm = np.random.default_rng(0).permutation(unique)
        cut = max(1, int(round(0.5 * len(unique))))
        wanted = set(perm[:cut].tolist())
        mask = np.array([g in wanted for g in dataset.groups])
        assert np.array_equal(first.groups, dataset.groups[mask])
        assert np.array_equal(second.groups, dataset.groups[~mask])
        assert first.n_tokens + second.n_tokens == dataset.n_tokens


# -- session bookkeeping -------------------------------------------------------


class TestSessionBookkeeping:
    def test_item_index_matches_full_prefix_detokenize(self, llm, instances):
        for instance in instances[:6]:
            trace = llm.teacher_forced_trace(instance)
            committed: list[str] = []
            for step in trace.steps:
                assert step.item_index == len(detokenize(committed))
                committed.append(step.committed)

    def test_item_index_property_tracks_decoded_items(self, llm):
        db = make_racing_db()
        instance = make_instance(db, ("races", "drivers"), instance_id="ii/table")
        session = llm.start_session(instance)
        while not session.done:
            assert session.item_index == len(session.decoded_items())
            session.commit()
        assert session.item_index == len(session.decoded_items())


# -- bounded caches ------------------------------------------------------------


class TestBoundedCaches:
    def test_embed_cache_bounded_with_counters(self):
        synth = HiddenStateSynthesizer(seed=3)
        synth.embed_cache_cap = 8
        for i in range(20):
            synth._embed("tok", f"t{i}", 4)
        stats = synth.embed_cache_stats
        assert stats["size"] <= 8
        assert stats["cap"] == 8
        assert stats["misses"] == 20
        assert stats["hits"] == 0
        synth._embed("tok", "t19", 4)  # most recent entry: a hit
        assert synth.embed_cache_stats["hits"] == 1
        # An evicted entry is recomputed bit-identically.
        again = synth._embed("tok", "t0", 4)
        fresh = spawn(3, "embed", "tok", "t0").normal(0.0, 1.0, size=4)
        assert np.array_equal(again, fresh)

    def test_plan_memo_bounded_and_value_stable(self, bird_tiny):
        llm = TransparentLLM(seed=11)
        llm.plan_cache_cap = 4
        instances = [
            RTSPipeline.instance_for(e, bird_tiny, "table")
            for e in bird_tiny.dev.examples[:8]
        ]
        plans = [llm.plan(i) for i in instances]
        assert len(llm._plan_cache) <= 4
        for instance, plan in zip(instances, plans):
            assert llm.plan(instance) == plan  # evicted plans re-plan identically
        memo = llm.plan(instances[-1])
        assert memo == llm.plan(instances[-1])
        assert memo is not llm.plan(instances[-1])  # callers get copies
