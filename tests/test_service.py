"""Tests for the backend-agnostic generation service and its cache tiers.

Pins down the tentpole guarantees:

* the async-batched backend produces traces bit-identical to the
  simulator backend (any ``max_batch`` / ``workers``), and the whole
  evaluation stack stays byte-identical across ``--backend``;
* the microbatch scheduler actually coalesces concurrent requests, in
  order, with errors propagated to every submitter;
* tier fall-through and promotion: memory → segment scan → SQLite
  index → backend, with per-tier stats and L1 promotion on disk hits;
* SQLite-index lookups agree with segment scans after ``compact()``,
  and a warm run against a compacted, indexed store performs zero new
  generations;
* the ``repro-cache`` CLI exposes stats/compaction, ``repro-run``
  honors ``--cache-dir`` / ``REPRO_CACHE_DIR``, and ``repro-sweep
  --progress`` streams to stderr without touching JSON artifacts;
* store format v2: binary ``.bin`` sidecars rehydrate warm hits as
  read-only zero-copy mmap views, legacy base64 records stay readable
  and ``compact``/``migrate`` transcodes them bit-exactly, and torn
  sidecar tails degrade like torn manifest tails (loadable prefix).
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from helpers import assert_traces_equal, make_trace

from repro.core.pipeline import RTSPipeline
from repro.llm.model import SIMULATOR_VERSION, TransparentLLM
from repro.runtime.cache import CachingLLM
from repro.runtime.persist import (
    INDEX_NAME,
    PersistentGenerationCache,
    SqliteSegmentIndex,
    generation_namespace,
    store_stats,
    trace_from_record,
)
from repro.runtime.pool import WorkerPool
from repro.runtime.service import (
    ASYNC,
    FORCED,
    FREE,
    AsyncBatchedBackend,
    GenerationRequest,
    GenerationService,
    SimulatorBackend,
)
from repro.runtime.sweep import SUMMARY_NAME, SweepRunner, SweepSpec, merge_sweep

SPEC = SweepSpec(
    benchmarks=("bird",),
    splits=("dev",),
    tasks=("table",),
    modes=("abstain",),
    seeds=(3,),
    scale="tiny",
    limit=3,
)


@pytest.fixture(scope="module")
def table_instances(bird_tiny):
    return [
        RTSPipeline.instance_for(e, bird_tiny, "table") for e in bird_tiny.dev.examples
    ]


def mixed_requests(instances) -> list:
    return [GenerationRequest(FREE, i) for i in instances] + [
        GenerationRequest(FORCED, i) for i in instances
    ]


class CountingBackend:
    """Wraps a backend, recording every batch it is asked to generate."""

    def __init__(self, inner):
        self.inner = inner
        self.batches: list[int] = []
        self._lock = threading.Lock()

    @property
    def base_llm(self):
        return self.inner.base_llm

    def identity(self):
        return self.inner.identity()

    def generate(self, requests):
        with self._lock:
            self.batches.append(len(requests))
        return self.inner.generate(requests)


class ExplodingBackend:
    def identity(self):
        return ("boom", 0)

    def generate(self, requests):
        raise RuntimeError("backend exploded")


# -- requests -----------------------------------------------------------------


def test_request_validates_kind_and_reproduces_legacy_keys(table_instances):
    from repro.runtime.cache import instance_key

    instance = table_instances[0]
    assert GenerationRequest(FREE, instance).key == ("free", instance_key(instance))
    assert GenerationRequest(FORCED, instance).key == ("forced", instance_key(instance))
    with pytest.raises(ValueError, match="kind"):
        GenerationRequest("sampled", instance)


# -- backend equivalence ------------------------------------------------------


def test_simulator_backend_matches_direct_llm_calls(table_instances):
    llm = TransparentLLM(seed=11)
    backend = SimulatorBackend(TransparentLLM(seed=11))
    traces = backend.generate(mixed_requests(table_instances[:3]))
    for trace, instance in zip(traces[:3], table_instances[:3]):
        assert_traces_equal(trace, llm.generate(instance))
    for trace, instance in zip(traces[3:], table_instances[:3]):
        assert_traces_equal(trace, llm.teacher_forced_trace(instance))


def test_simulator_backend_pooled_matches_serial(table_instances):
    requests = mixed_requests(table_instances)
    serial = SimulatorBackend(TransparentLLM(seed=11)).generate(requests)
    pooled = SimulatorBackend(
        TransparentLLM(seed=11), pool=WorkerPool(workers=4)
    ).generate(requests)
    for a, b in zip(serial, pooled):
        assert_traces_equal(a, b)


@pytest.mark.parametrize("max_batch,workers", [(1, 1), (3, 2), (16, 4)])
def test_async_backend_bit_identical_to_simulator(table_instances, max_batch, workers):
    requests = mixed_requests(table_instances)
    reference = SimulatorBackend(TransparentLLM(seed=11)).generate(requests)
    with AsyncBatchedBackend(
        SimulatorBackend(TransparentLLM(seed=11)),
        max_batch=max_batch,
        max_wait_ms=5.0,
        workers=workers,
    ) as backend:
        batched = backend.generate(requests)
    assert len(batched) == len(reference)
    for a, b in zip(reference, batched):
        assert_traces_equal(a, b)


def test_async_backend_identity_delegates_to_inner():
    inner = SimulatorBackend(TransparentLLM(seed=11))
    backend = AsyncBatchedBackend(inner)
    assert backend.identity() == inner.identity()
    # Same identity -> same persistent namespace: both backends share
    # one store, which is what makes the --backend axis cache-neutral.
    assert generation_namespace(*backend.identity()) == generation_namespace(
        SIMULATOR_VERSION, inner.llm.config, inner.llm.seed
    )


# -- microbatch coalescing ----------------------------------------------------


def test_async_backend_coalesces_into_microbatches(table_instances):
    counting = CountingBackend(SimulatorBackend(TransparentLLM(seed=11)))
    requests = mixed_requests(table_instances)  # 2 * len(dev) requests
    with AsyncBatchedBackend(
        counting, max_batch=4, max_wait_ms=200.0, workers=1
    ) as backend:
        backend.generate(requests)
        stats = backend.batch_stats
    assert sum(counting.batches) == len(requests)
    assert max(counting.batches) <= 4
    # A generous max_wait and a single worker guarantee the scheduler
    # sees a backlog: far fewer batches than requests, some of them full.
    assert len(counting.batches) < len(requests)
    assert max(counting.batches) > 1
    assert stats.n_requests == len(requests)
    assert stats.n_batches == len(counting.batches)
    assert stats.max_batch == max(counting.batches)


def test_async_backend_concurrent_submitters_get_their_own_results(table_instances):
    with AsyncBatchedBackend(
        SimulatorBackend(TransparentLLM(seed=11)), max_batch=4, max_wait_ms=50.0
    ) as backend:
        reference = {
            i.instance_id: SimulatorBackend(TransparentLLM(seed=11)).generate(
                [GenerationRequest(FREE, i)]
            )[0]
            for i in table_instances
        }
        results: dict[int, list] = {}
        errors: list[Exception] = []

        def submit(thread_index: int, instances):
            try:
                results[thread_index] = backend.generate(
                    [GenerationRequest(FREE, i) for i in instances]
                )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(t, table_instances))
            for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert not errors
    for traces in results.values():
        assert [t.instance_id for t in traces] == [
            i.instance_id for i in table_instances
        ]
        for trace, instance in zip(traces, table_instances):
            assert_traces_equal(trace, reference[instance.instance_id])


def test_async_backend_bounded_queue_backpressure(table_instances):
    """A tiny queue + slow worker still completes every request."""
    with AsyncBatchedBackend(
        SimulatorBackend(TransparentLLM(seed=11)),
        max_batch=2,
        max_wait_ms=1.0,
        max_pending=2,
        workers=1,
    ) as backend:
        traces = backend.generate(mixed_requests(table_instances))
    assert len(traces) == 2 * len(table_instances)


def test_async_backend_propagates_backend_errors(table_instances):
    with AsyncBatchedBackend(ExplodingBackend(), max_wait_ms=1.0) as backend:
        with pytest.raises(RuntimeError, match="backend exploded"):
            backend.generate([GenerationRequest(FREE, table_instances[0])])
    # The backend restarts cleanly after close().
    with AsyncBatchedBackend(
        SimulatorBackend(TransparentLLM(seed=11)), max_wait_ms=1.0
    ) as backend:
        assert backend.generate([GenerationRequest(FREE, table_instances[0])])


class SlowBackend:
    """A backend that takes its time — for close-while-in-flight tests."""

    def __init__(self, inner, delay_s: float = 0.2):
        self.inner = inner
        self.delay_s = delay_s

    @property
    def base_llm(self):
        return self.inner.base_llm

    def identity(self):
        return self.inner.identity()

    def generate(self, requests):
        import time

        time.sleep(self.delay_s)
        return self.inner.generate(requests)


def test_async_backend_close_after_backend_exception_does_not_hang(table_instances):
    """The lifecycle bug: close() with poisoned state must neither hang
    the closer nor any submitter that raced in."""
    backend = AsyncBatchedBackend(ExplodingBackend(), max_wait_ms=1.0)
    with pytest.raises(RuntimeError, match="backend exploded"):
        backend.generate([GenerationRequest(FREE, table_instances[0])])
    closer = threading.Thread(target=backend.close)
    closer.start()
    closer.join(timeout=15)
    assert not closer.is_alive(), "close() hung after a backend exception"


def test_async_backend_close_while_batch_in_flight_resolves_submitters(
    table_instances,
):
    """Submitters pending at close() time get a result or a cancellation
    — never a deadlock."""
    import asyncio
    import concurrent.futures
    import time

    backend = AsyncBatchedBackend(
        SlowBackend(SimulatorBackend(TransparentLLM(seed=11)), delay_s=0.3),
        max_batch=2,
        max_wait_ms=1.0,
        max_pending=2,
        workers=1,
    )
    outcomes: list = []

    def submit(instance):
        try:
            outcomes.append(backend.generate([GenerationRequest(FREE, instance)]))
        except (concurrent.futures.CancelledError, asyncio.CancelledError) as exc:
            outcomes.append(exc)

    threads = [
        threading.Thread(target=submit, args=(instance,))
        for instance in table_instances[:6]
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.1)  # let a batch get in flight, leave others queued
    backend.close()
    for thread in threads:
        thread.join(timeout=15)
    assert not any(thread.is_alive() for thread in threads), (
        "close() stranded pending submitters"
    )
    assert len(outcomes) == 6  # every submitter resolved, one way or the other


def test_async_backend_rejects_bad_config():
    inner = SimulatorBackend(TransparentLLM(seed=11))
    for kwargs in (
        {"max_batch": 0},
        {"max_wait_ms": -1.0},
        {"max_pending": 0},
        {"workers": 0},
        {"request_timeout_s": 0.0},
    ):
        with pytest.raises(ValueError):
            AsyncBatchedBackend(inner, **kwargs)


def test_async_backend_deadline_expires_then_recovers(table_instances):
    """A generation slower than request_timeout_s raises DeadlineExceeded
    with the timeout attached; a deadline_scope(None) retry on the same
    backend still answers (the worker pool is not poisoned)."""
    from repro.runtime.service import DeadlineExceeded, deadline_scope

    with AsyncBatchedBackend(
        SlowBackend(SimulatorBackend(TransparentLLM(seed=11)), delay_s=0.5),
        max_wait_ms=1.0,
        workers=1,
        request_timeout_s=0.05,
    ) as backend:
        with pytest.raises(DeadlineExceeded) as info:
            backend.generate([GenerationRequest(FREE, table_instances[0])])
        assert info.value.timeout_s == 0.05
        with deadline_scope(None):  # suspend the deadline for this call
            results = backend.generate([GenerationRequest(FREE, table_instances[1])])
        assert len(results) == 1


def test_deadline_scope_overrides_and_restores():
    from repro.runtime.service import deadline_scope, effective_timeout

    assert effective_timeout(7.0) == 7.0
    with deadline_scope(0.25):
        assert effective_timeout(7.0) == 0.25
        with deadline_scope(None):
            assert effective_timeout(7.0) is None
        assert effective_timeout(7.0) == 0.25
    assert effective_timeout(7.0) == 7.0
    with pytest.raises(ValueError):
        with deadline_scope(0.0):
            pass


# -- service tiering ----------------------------------------------------------


def test_service_memoizes_and_dedupes_within_a_batch(table_instances):
    counting = CountingBackend(SimulatorBackend(TransparentLLM(seed=11)))
    service = GenerationService(counting)
    instance = table_instances[0]
    request = GenerationRequest(FREE, instance)
    first, second = service.generate([request, request])
    assert first is second  # one computation, shared result
    assert counting.batches == [1]
    assert service.generate_one(request) is first  # L1 from now on
    assert service.stats.hits == 1 and service.stats.misses == 1
    assert service.tier_stats["memory"].hits == 1
    assert "segments" not in service.tier_stats  # no disk tiers configured


def test_service_tier_promotion_and_eviction(tmp_path, table_instances):
    instances = table_instances[:3]
    llm = TransparentLLM(seed=11)
    namespace = generation_namespace(SIMULATOR_VERSION, llm.config, llm.seed)

    writer = GenerationService(
        SimulatorBackend(llm),
        cache=PersistentGenerationCache(tmp_path, namespace=namespace),
    )
    cold = writer.free_traces(instances)
    assert writer.stats.misses == len(instances)
    assert writer.tier_stats["segments"].misses == len(instances)
    writer.cache.close()

    # A fresh store view: the segment tier serves, promoting into L1.
    reader = GenerationService(
        ExplodingBackend(),  # must never be called
        cache=PersistentGenerationCache(tmp_path, namespace=namespace),
    )
    warm = reader.free_traces(instances)
    for a, b in zip(cold, warm):
        assert_traces_equal(a, b)
    tiers = reader.tier_stats
    assert tiers["segments"].hits == len(instances)
    assert tiers["memory"].misses == len(instances)
    assert reader.stats.disk_hits == len(instances) and reader.stats.misses == 0
    # Promotion: the same lookups are L1 hits now.
    again = reader.free_traces(instances)
    for a, b in zip(cold, again):
        assert_traces_equal(a, b)
    assert reader.tier_stats["memory"].hits == len(instances)
    assert reader.stats.hits == len(instances)

    # Eviction of L1 (clear) falls back to the disk tiers, not the backend.
    reader.cache.clear()
    evicted = reader.free_traces(instances)
    for a, b in zip(cold, evicted):
        assert_traces_equal(a, b)
    assert reader.stats.disk_hits == len(instances)
    reader.cache.close()


def test_service_sqlite_tier_after_compaction(tmp_path, table_instances):
    instances = table_instances[:3]
    llm = TransparentLLM(seed=11)
    namespace = generation_namespace(SIMULATOR_VERSION, llm.config, llm.seed)
    writer = GenerationService.build(llm, cache_dir=tmp_path)
    cold = writer.free_traces(instances) + writer.forced_traces(instances)
    writer.cache.close()

    compactor = PersistentGenerationCache(tmp_path, namespace=namespace)
    kept = compactor.compact()
    assert kept == 2 * len(instances)
    assert (compactor.directory / INDEX_NAME).is_file()
    compactor.close()

    reader = GenerationService(
        ExplodingBackend(),
        cache=PersistentGenerationCache(tmp_path, namespace=namespace),
    )
    warm = reader.free_traces(instances) + reader.forced_traces(instances)
    for a, b in zip(cold, warm):
        assert_traces_equal(a, b)
    tiers = reader.tier_stats
    assert tiers["sqlite"].hits == 2 * len(instances)
    assert tiers["segments"].hits == 0
    assert reader.stats.misses == 0  # the acceptance invariant
    reader.cache.close()


def test_sqlite_index_agrees_with_segment_scan(tmp_path):
    """Every address must resolve identically via scan and via index."""
    cache = PersistentGenerationCache(tmp_path, namespace="ns", use_index=False)
    keys = [("free", f"k{i}") for i in range(8)]
    for key in keys:
        cache.get_or_compute(key, lambda key=key: make_trace(key[1]))
    cache.close()

    # Reference: pure segment scans (the index is never consulted).
    scanner = PersistentGenerationCache(tmp_path, namespace="ns", use_index=False)
    scanned = {
        key: scanner.get_or_compute(key, lambda: pytest.fail("must be on disk"))
        for key in keys
    }
    assert scanner.stats.disk_hits == len(keys)
    scanner.close()

    compactor = PersistentGenerationCache(tmp_path, namespace="ns")
    assert compactor.compact(index=True) == len(keys)
    compactor.close()

    indexed = PersistentGenerationCache(tmp_path, namespace="ns")
    index = SqliteSegmentIndex(indexed.directory)
    assert index.exists() and len(index) == len(keys)
    for key in keys:
        record, tier = indexed.probe_disk(indexed.address(key))
        assert tier == "sqlite"
        assert_traces_equal(
            trace_from_record(record, directory=indexed.directory), scanned[key]
        )
    index.close()
    indexed.close()


def test_compact_with_index_keeps_serving_on_a_no_index_instance(tmp_path):
    """An explicitly built index is honored even with use_index=False."""
    cache = PersistentGenerationCache(tmp_path, namespace="ns", use_index=False)
    cache.get_or_compute(("free", "k"), lambda: make_trace("k"))
    cache.clear()
    assert cache.compact(index=True) == 1
    # The instance that just built the index must still see the entry.
    loaded = cache.get_or_compute(("free", "k"), lambda: pytest.fail("on disk"))
    assert_traces_equal(loaded, make_trace("k"))
    assert cache.stats.disk_hits == 1
    cache.close()


def test_service_close_releases_persistent_cache_handles(tmp_path, table_instances):
    service = GenerationService.build(TransparentLLM(seed=11), cache_dir=tmp_path)
    service.generate_one(GenerationRequest(FREE, table_instances[0]))
    assert service.cache._handle is not None  # spill handle open
    service.close()
    assert service.cache._handle is None  # released with the backend


def test_segment_tier_still_serves_entries_written_after_compaction(tmp_path):
    """A stale index must never shadow newer segment entries."""
    cache = PersistentGenerationCache(tmp_path, namespace="ns")
    cache.get_or_compute(("free", "old"), lambda: make_trace("old"))
    cache.compact(index=True)
    # New entry lands in a fresh segment the index knows nothing about.
    cache.get_or_compute(("free", "new"), lambda: make_trace("new"))
    cache.close()

    reader = PersistentGenerationCache(tmp_path, namespace="ns")
    old_record, old_tier = reader.probe_disk(reader.address(("free", "old")))
    new_record, new_tier = reader.probe_disk(reader.address(("free", "new")))
    assert old_tier == "sqlite" and new_tier == "segments"
    assert old_record is not None and new_record is not None
    assert reader.disk_entries() == 2
    reader.close()


def test_caching_llm_is_a_thin_service_adapter(table_instances):
    service = GenerationService(SimulatorBackend(TransparentLLM(seed=11)))
    llm = CachingLLM(service=service)
    instance = table_instances[0]
    assert llm.cache is service.cache
    assert_traces_equal(
        llm.generate(instance),
        service.generate_one(GenerationRequest(FREE, instance)),
    )
    batched = llm.teacher_forced_traces(table_instances[:2])
    assert [t.instance_id for t in batched] == [
        i.instance_id for i in table_instances[:2]
    ]
    assert llm.stats == service.stats
    from repro.runtime.cache import GenerationCache

    with pytest.raises(ValueError, match="not both"):
        CachingLLM(TransparentLLM(seed=11), cache=GenerationCache(), service=service)


def test_service_pickles_to_cold_equivalent(table_instances):
    import pickle

    service = GenerationService.build(
        TransparentLLM(seed=11), gen_backend=ASYNC, max_wait_ms=1.0
    )
    trace = service.generate_one(GenerationRequest(FREE, table_instances[0]))
    clone = pickle.loads(pickle.dumps(service))
    try:
        assert_traces_equal(
            clone.generate_one(GenerationRequest(FREE, table_instances[0])), trace
        )
    finally:
        clone.close()
        service.close()


# -- end-to-end byte-identity across the backend axis -------------------------


def test_sweep_summary_byte_identical_across_backends(tmp_path):
    payloads = {}
    for gen_backend in ("simulator", "async", "process"):
        out = tmp_path / gen_backend
        with SweepRunner(
            SPEC, out, gen_backend=gen_backend, max_batch=4, max_wait_ms=5.0
        ) as runner:
            runner.run_shard()
            merged = merge_sweep(out)
        assert merged["summary"]["n_units"] == 1
        payloads[gen_backend] = (out / SUMMARY_NAME).read_bytes()
    assert payloads["simulator"] == payloads["async"]  # byte for byte
    assert payloads["simulator"] == payloads["process"]  # the new axis too


def test_warm_async_run_over_compacted_store_has_zero_misses(tmp_path):
    cache_dir = tmp_path / "gen"
    cold = SweepRunner(SPEC, tmp_path / "cold", cache_dir=cache_dir)
    cold.run_shard()
    namespace = cold.cache.namespace
    cold.cache.close()

    compactor = PersistentGenerationCache(cache_dir, namespace=namespace)
    assert compactor.compact() > 0
    compactor.close()

    warm = SweepRunner(
        SPEC, tmp_path / "warm", cache_dir=cache_dir, gen_backend=ASYNC, max_wait_ms=1.0
    )
    manifest = warm.run_shard()
    warm.service.close()
    stats = manifest["runtime"]["generation_cache"]
    assert stats["misses"] == 0
    assert stats["disk_hits"] > 0
    assert stats["hit_rate"] == 1.0
    from repro.runtime.artifacts import strict_jsonable

    reference = (tmp_path / "cold" / "shards").glob("shard-*.json")
    cold_manifest = json.loads(next(iter(sorted(reference))).read_text())
    # strict_jsonable: the on-disk manifest went through NaN -> None.
    assert strict_jsonable(manifest["units"]) == cold_manifest["units"]


# -- lifecycle: nothing outlives a run ----------------------------------------


def microbatcher_threads() -> "list[threading.Thread]":
    return [
        thread
        for thread in threading.enumerate()
        if thread.name == "generation-microbatcher"
    ]


def test_service_is_a_context_manager(table_instances):
    with GenerationService.build(
        TransparentLLM(seed=11), gen_backend=ASYNC, max_wait_ms=1.0
    ) as service:
        service.generate_one(GenerationRequest(FREE, table_instances[0]))
        assert microbatcher_threads()
    assert not microbatcher_threads()


def test_run_cli_leaves_no_scheduler_threads(capsys, monkeypatch):
    from repro.runtime.cli import main

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    args = [
        "--benchmark", "bird",
        "--split", "dev",
        "--task", "table",
        "--scale", "tiny",
        "--limit", "2",
        "--backend", "async",
        "--max-wait-ms", "1",
    ]
    assert main(args) == 0
    capsys.readouterr()
    assert not microbatcher_threads(), "a scheduler thread outlived repro-run"


def test_run_cli_closes_backend_on_error_paths(capsys, monkeypatch):
    """The lifecycle bug: a crash mid-run must still tear the service
    down — no daemon scheduler threads (or worker processes) leak."""
    from repro.runtime import runner as runner_module
    from repro.runtime.cli import main

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)

    def explode(self, *args, **kwargs):
        raise RuntimeError("mid-run crash")

    monkeypatch.setattr(runner_module.BatchRunner, "run_link", explode)
    args = [
        "--benchmark", "bird",
        "--split", "dev",
        "--task", "table",
        "--scale", "tiny",
        "--limit", "2",
        "--backend", "async",
        "--max-wait-ms", "1",
    ]
    with pytest.raises(RuntimeError, match="mid-run crash"):
        main(args)
    capsys.readouterr()
    assert not microbatcher_threads(), "error path leaked the scheduler thread"


def test_sweep_cli_closes_process_workers(tmp_path, capsys, monkeypatch):
    """After repro-sweep exits, no generation worker subprocess remains."""
    import os
    import subprocess
    import time

    from repro.runtime import remote as remote_module
    from repro.runtime.cli import main_sweep

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    spawned: list[int] = []
    original = subprocess.Popen

    def tracking_popen(*args, **kwargs):
        proc = original(*args, **kwargs)
        spawned.append(proc.pid)
        return proc

    monkeypatch.setattr(remote_module.subprocess, "Popen", tracking_popen)
    args = [
        "run",
        "--benchmarks", "bird",
        "--splits", "dev",
        "--tasks", "table",
        "--modes", "abstain",
        "--seeds", "3",
        "--scale", "tiny",
        "--limit", "2",
        "--backend", "process",
        "--workers", "2",
        "--out", str(tmp_path / "sweep"),
    ]
    assert main_sweep(args) == 0
    capsys.readouterr()
    assert spawned, "the process backend never spawned workers"
    deadline = time.monotonic() + 10
    alive = set(spawned)
    while alive and time.monotonic() < deadline:
        for pid in list(alive):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                alive.discard(pid)
        time.sleep(0.02)
    assert not alive, f"worker processes outlived repro-sweep: {alive}"


# -- compaction writer guard --------------------------------------------------


def test_compact_fails_fast_while_another_writer_is_active(tmp_path):
    from repro.runtime.persist import WriterActiveError

    writer = PersistentGenerationCache(tmp_path, namespace="ns")
    writer.get_or_compute(("free", "theirs"), lambda: make_trace("theirs"))

    compactor = PersistentGenerationCache(tmp_path, namespace="ns")
    compactor.get_or_compute(("free", "mine"), lambda: make_trace("mine"))
    with pytest.raises(WriterActiveError, match="active writer"):
        compactor.compact()

    # The other writer's entries survived the refused compaction.
    writer.get_or_compute(("free", "late"), lambda: make_trace("late"))
    writer.close()
    assert compactor.compact() == 3  # both writers closed -> guard lifts
    compactor.close()

    reader = PersistentGenerationCache(tmp_path, namespace="ns")
    for key in ("theirs", "mine", "late"):
        loaded = reader.get_or_compute(
            ("free", key), lambda: pytest.fail("must be on disk")
        )
        assert_traces_equal(loaded, make_trace(key))
    reader.close()


def test_compact_force_overrides_the_writer_guard(tmp_path):
    writer = PersistentGenerationCache(tmp_path, namespace="ns")
    writer.get_or_compute(("free", "k"), lambda: make_trace("k"))

    compactor = PersistentGenerationCache(tmp_path, namespace="ns")
    assert compactor.compact(force=True) == 1
    compactor.close()
    writer.close()


def test_stale_lock_from_a_dead_writer_is_swept(tmp_path):
    import json as json_module
    import socket

    cache = PersistentGenerationCache(tmp_path, namespace="ns")
    cache.get_or_compute(("free", "k"), lambda: make_trace("k"))
    cache.close()  # releases our own lock
    # A crashed writer's leftover: same host, long-dead pid.
    stale = cache.directory / "w-0-dead.jsonl.lock"
    stale.write_text(
        json_module.dumps(
            {"pid": 2**22 + 1, "host": socket.gethostname(), "segment": "w-0-dead.jsonl"}
        )
    )
    assert cache.compact() == 1  # guard self-heals, no force needed
    assert not stale.exists()
    cache.close()


def test_writer_lock_lifecycle_and_stats(tmp_path):
    from repro.runtime.persist import LOCK_SUFFIX

    cache = PersistentGenerationCache(tmp_path, namespace="ns")
    assert cache.writer_locks() == []  # no spill yet, no lock
    cache.get_or_compute(("free", "k"), lambda: make_trace("k"))
    locks = list(cache.directory.glob(f"*{LOCK_SUFFIX}"))
    assert len(locks) == 1  # our own lock exists on disk...
    assert cache.writer_locks() == []  # ...but never blocks ourselves
    assert store_stats(tmp_path)["namespaces"]["ns"]["active_writers"] == 1
    cache.close()
    assert not list(cache.directory.glob(f"*{LOCK_SUFFIX}"))
    assert store_stats(tmp_path)["namespaces"]["ns"]["active_writers"] == 0


def test_cache_cli_compact_respects_and_forces_the_guard(tmp_path, capsys):
    from repro.runtime.cli import main_cache

    writer = PersistentGenerationCache(tmp_path, namespace="ns")
    writer.get_or_compute(("free", "k"), lambda: make_trace("k"))

    assert main_cache(["compact", "--cache-dir", str(tmp_path)]) == 3
    err = capsys.readouterr().err
    assert "active" in err and "--force" in err

    assert main_cache(["compact", "--cache-dir", str(tmp_path), "--force"]) == 0
    forced = json.loads(capsys.readouterr().out)
    assert forced["compacted"]["ns"]["entries"] == 1
    writer.close()


# -- progress streaming -------------------------------------------------------


def test_sweep_progress_streams_units_without_touching_artifacts(tmp_path):
    lines: list[str] = []
    silent_out = tmp_path / "silent"
    SweepRunner(SPEC, silent_out).run_shard()
    loud_out = tmp_path / "loud"
    SweepRunner(SPEC, loud_out, progress=lines.append).run_shard()
    assert len(lines) == len(SPEC.units())
    unit_id = SPEC.units()[0].unit_id
    assert unit_id in lines[0]
    assert "hit_rate=" in lines[0] and "evaluated=" in lines[0]
    # Identical JSON artifacts with and without progress streaming.
    for summary in sorted((silent_out / "units").glob("*.summary.json")):
        assert summary.read_bytes() == (
            loud_out / "units" / summary.name
        ).read_bytes()


def test_sweep_cli_progress_goes_to_stderr(tmp_path, capsys, monkeypatch):
    from repro.runtime.cli import main_sweep

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    args = [
        "run",
        "--benchmarks", "bird",
        "--splits", "dev",
        "--tasks", "table",
        "--modes", "abstain",
        "--seeds", "3",
        "--scale", "tiny",
        "--limit", "2",
        "--out", str(tmp_path / "sweep"),
        "--progress",
    ]
    assert main_sweep(args) == 0
    captured = capsys.readouterr()
    json.loads(captured.out)  # stdout stays pure JSON
    assert "bird-dev-table-abstain-s3" in captured.err


# -- CLI: repro-run cache-dir, repro-cache ------------------------------------


def test_run_cli_honors_cache_dir_env_default(tmp_path, capsys, monkeypatch):
    from repro.runtime.cli import main

    cache_dir = tmp_path / "store"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    args = [
        "--benchmark", "bird",
        "--split", "dev",
        "--task", "table",
        "--scale", "tiny",
        "--limit", "2",
        "--workers", "1",
    ]
    assert main(args) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["cache_dir"] == str(cache_dir)
    assert cold["generation_cache"]["misses"] > 0
    assert any(cache_dir.glob("llm-*/*.jsonl"))  # store actually written

    # Second process-equivalent run: everything from the shared store.
    assert main(args) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["generation_cache"]["misses"] == 0
    assert warm["summary"] == cold["summary"]


def test_run_cli_async_backend_matches_simulator_summary(tmp_path, capsys, monkeypatch):
    from repro.runtime.cli import main

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    args = [
        "--benchmark", "bird",
        "--split", "dev",
        "--task", "table",
        "--scale", "tiny",
        "--limit", "2",
        "--workers", "2",
    ]
    assert main([*args, "--backend", "simulator"]) == 0
    simulator = json.loads(capsys.readouterr().out)
    assert main([*args, "--backend", "async", "--max-wait-ms", "1"]) == 0
    asynced = json.loads(capsys.readouterr().out)
    assert simulator["summary"] == asynced["summary"]
    assert asynced["backend"] == "async"


def test_cache_cli_stats_and_compact(tmp_path, capsys):
    from repro.runtime.cli import main_cache

    cache = PersistentGenerationCache(tmp_path, namespace="ns-a")
    for i in range(3):
        cache.get_or_compute(("free", f"k{i}"), lambda i=i: make_trace(f"k{i}"))
    cache.close()
    other = PersistentGenerationCache(tmp_path, namespace="ns-a")
    other.get_or_compute(("forced", "dup"), lambda: make_trace("dup"))
    other.close()

    assert main_cache(["stats", "--cache-dir", str(tmp_path)]) == 0
    stats = json.loads(capsys.readouterr().out)
    ns = stats["namespaces"]["ns-a"]
    assert ns["segments"] == 2 and ns["entries"] == 4
    assert ns["kinds"] == {"forced": 1, "free": 3}
    assert not ns["indexed"]

    assert main_cache(["compact", "--cache-dir", str(tmp_path)]) == 0
    compacted = json.loads(capsys.readouterr().out)
    assert compacted["compacted"]["ns-a"]["entries"] == 4
    assert compacted["compacted"]["ns-a"]["segments_before"] == 2

    assert main_cache(["stats", "--cache-dir", str(tmp_path)]) == 0
    after = json.loads(capsys.readouterr().out)["namespaces"]["ns-a"]
    assert after["segments"] == 1
    assert after["indexed"] and after["index_entries"] == 4

    # The compacted, indexed store still rehydrates bit-exactly.
    reader = PersistentGenerationCache(tmp_path, namespace="ns-a")
    loaded = reader.get_or_compute(("free", "k1"), lambda: pytest.fail("on disk"))
    assert_traces_equal(loaded, make_trace("k1"))
    reader.close()


def test_cache_cli_requires_cache_dir(monkeypatch, capsys):
    from repro.runtime.cli import main_cache

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    with pytest.raises(SystemExit) as excinfo:
        main_cache(["stats"])
    assert excinfo.value.code == 2
    assert "cache-dir" in capsys.readouterr().err


def test_cache_cli_rejects_unknown_namespace(tmp_path, capsys):
    from repro.runtime.cli import main_cache

    cache = PersistentGenerationCache(tmp_path, namespace="real")
    cache.get_or_compute(("free", "k"), lambda: make_trace("k"))
    cache.close()
    with pytest.raises(SystemExit):
        main_cache(
            ["compact", "--cache-dir", str(tmp_path), "--namespace", "missing"]
        )
    assert "missing" in capsys.readouterr().err


def test_store_stats_on_empty_or_absent_dir(tmp_path):
    assert store_stats(tmp_path)["namespaces"] == {}
    assert store_stats(tmp_path / "nowhere")["namespaces"] == {}


# -- binary store format (v2): sidecars, mmap reads, migration ----------------


def _on_disk():
    return pytest.fail("expected a disk hit, got a recompute")


def test_binary_store_round_trip_is_a_read_only_zero_copy_view(tmp_path):
    trace = make_trace("z0")
    cache = PersistentGenerationCache(tmp_path, namespace="bin")
    assert cache.codec == "binary"
    cache.get_or_compute(("free", "z0"), lambda: trace)
    directory = cache.directory
    cache.close()
    assert list(directory.glob("*.bin")), "binary codec wrote no sidecar"

    reader = PersistentGenerationCache(tmp_path, namespace="bin")
    loaded = reader.get_or_compute(("free", "z0"), _on_disk)
    assert_traces_equal(loaded, trace)
    # The rehydrated stack is a read-only view over the mapped sidecar,
    # not a decode-and-copy; per-step hidden rows alias it.
    assert loaded.hidden_stack is not None
    assert not loaded.hidden_stack.flags.writeable
    assert not loaded.hidden_stack.flags.owndata
    for i, step in enumerate(loaded.steps):
        assert not step.hidden.flags.writeable
        assert np.shares_memory(step.hidden, loaded.hidden_stack[i])
    reader.close()


def test_decode_array_is_read_only_unless_writable_requested():
    from repro.runtime.persist import _decode_array, _encode_array

    arr = np.arange(12.0).reshape(3, 4)
    record = _encode_array(arr)
    view = _decode_array(record)
    assert not view.flags.writeable and not view.flags.owndata
    np.testing.assert_array_equal(view, arr)

    writable = _decode_array(record, writable=True)
    assert writable.flags.writeable
    writable[0, 0] = -1.0  # a private copy: later decodes are untouched
    np.testing.assert_array_equal(_decode_array(record), arr)


def test_mixed_codec_store_reads_both_layouts(tmp_path):
    old, new = make_trace("old"), make_trace("new")
    legacy = PersistentGenerationCache(tmp_path, namespace="mix", codec="base64")
    legacy.get_or_compute(("free", "old"), lambda: old)
    legacy.close()
    current = PersistentGenerationCache(tmp_path, namespace="mix")
    current.get_or_compute(("free", "new"), lambda: new)
    current.close()

    reader = PersistentGenerationCache(tmp_path, namespace="mix")
    assert_traces_equal(reader.get_or_compute(("free", "old"), _on_disk), old)
    assert_traces_equal(reader.get_or_compute(("free", "new"), _on_disk), new)
    reader.close()

    codecs = store_stats(tmp_path)["namespaces"]["mix"]["codecs"]
    assert set(codecs) == {"base64", "binary"}
    for mix in codecs.values():
        assert mix["records"] == 1 and mix["bytes"] > 0


def test_compact_transcodes_legacy_records_bit_exactly(tmp_path):
    traces = {f"t{i}": make_trace(f"t{i}") for i in range(3)}
    legacy = PersistentGenerationCache(tmp_path, namespace="mig", codec="base64")
    for name, trace in traces.items():
        legacy.get_or_compute(("free", name), lambda t=trace: t)
    legacy.close()

    cache = PersistentGenerationCache(tmp_path, namespace="mig")
    traces["t3"] = make_trace("t3")
    cache.get_or_compute(("free", "t3"), lambda: traces["t3"])
    assert cache.compact() == 4
    assert cache.last_compaction == {"entries": 4, "transcoded": 3}
    for name, trace in traces.items():
        assert_traces_equal(cache.get_or_compute(("free", name), _on_disk), trace)
    cache.close()

    stats = store_stats(tmp_path)["namespaces"]["mig"]
    assert set(stats["codecs"]) == {"binary"}
    assert stats["segments"] == 1


def test_env_codec_override_writes_the_legacy_layout(tmp_path, monkeypatch):
    from repro.runtime.persist import CODEC_ENV

    monkeypatch.setenv(CODEC_ENV, "base64")
    cache = PersistentGenerationCache(tmp_path, namespace="env")
    assert cache.codec == "base64"
    cache.get_or_compute(("free", "k"), lambda: make_trace("k"))
    directory = cache.directory
    cache.close()
    assert not list(directory.glob("*.bin"))
    codecs = store_stats(tmp_path)["namespaces"]["env"]["codecs"]
    assert set(codecs) == {"base64"}


def test_unknown_codec_is_rejected(tmp_path):
    with pytest.raises(ValueError, match="codec"):
        PersistentGenerationCache(tmp_path, namespace="bad", codec="msgpack")


def test_future_store_format_version_is_refused(tmp_path):
    cache = PersistentGenerationCache(tmp_path, namespace="fut")
    cache.directory.mkdir(parents=True)
    (cache.directory / "format.json").write_text(json.dumps({"version": 99}))
    with pytest.raises(RuntimeError, match="format"):
        cache.get_or_compute(("free", "k"), lambda: make_trace("k"))
    cache.close()


def test_truncated_bin_sidecar_degrades_like_a_truncated_manifest(tmp_path):
    """A torn sidecar tail keeps the loadable prefix and recomputes the rest."""
    traces = [make_trace(f"t{i}") for i in range(3)]
    cache = PersistentGenerationCache(tmp_path, namespace="torn")
    for i, trace in enumerate(traces):
        cache.get_or_compute(("free", f"t{i}"), lambda t=trace: t)
    directory = cache.directory
    cache.close()

    (bin_path,) = directory.glob("*.bin")
    payload = bin_path.read_bytes()
    block = len(payload) // 3
    bin_path.write_bytes(payload[: 2 * block + block // 2])  # tear the last block

    reader = PersistentGenerationCache(tmp_path, namespace="torn")
    assert reader.disk_entries() == 2
    for i in (0, 1):
        loaded = reader.get_or_compute(("free", f"t{i}"), _on_disk)
        assert_traces_equal(loaded, traces[i])
    # The torn entry is a clean miss, not a crash; the recompute respills.
    assert_traces_equal(
        reader.get_or_compute(("free", "t2"), lambda: traces[2]), traces[2]
    )
    assert reader.stats.misses == 1 and reader.stats.disk_hits == 2
    reader.close()


def test_missing_bin_sidecar_drops_only_that_segments_entries(tmp_path):
    first, second = make_trace("a"), make_trace("b")
    cache = PersistentGenerationCache(tmp_path, namespace="gone")
    cache.get_or_compute(("free", "a"), lambda: first)
    cache.close()  # retire segment 1
    cache = PersistentGenerationCache(tmp_path, namespace="gone")
    cache.get_or_compute(("free", "b"), lambda: second)
    directory = cache.directory
    cache.close()

    sidecars = sorted(directory.glob("*.bin"), key=lambda p: p.stat().st_mtime)
    sidecars[0].unlink()  # segment 1's tensors vanish entirely

    reader = PersistentGenerationCache(tmp_path, namespace="gone")
    assert reader.disk_entries() == 1
    assert_traces_equal(reader.get_or_compute(("free", "b"), _on_disk), second)
    assert_traces_equal(
        reader.get_or_compute(("free", "a"), lambda: first), first
    )
    assert reader.stats.misses == 1
    reader.close()


def test_cache_cli_migrate_alias_reports_transcodes(tmp_path, capsys):
    from repro.runtime.cli import main_cache

    legacy = PersistentGenerationCache(tmp_path, namespace="ns", codec="base64")
    for i in range(2):
        legacy.get_or_compute(("free", f"k{i}"), lambda i=i: make_trace(f"k{i}"))
    legacy.close()

    assert main_cache(["migrate", "--cache-dir", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    report = json.loads(captured.out)["compacted"]["ns"]
    assert report["transcoded"] == 2 and report["entries"] == 2
    assert "transcoded 2 legacy" in captured.err

    assert main_cache(["stats", "--cache-dir", str(tmp_path)]) == 0
    stats = json.loads(capsys.readouterr().out)["namespaces"]["ns"]
    assert set(stats["codecs"]) == {"binary"}

    # An already-binary store migrates to a no-op: nothing to transcode.
    assert main_cache(["migrate", "--cache-dir", str(tmp_path)]) == 0
    report = json.loads(capsys.readouterr().out)["compacted"]["ns"]
    assert report["transcoded"] == 0 and report["entries"] == 2
