"""Tests for the schema model: columns, tables, databases, DDL, naming."""

import numpy as np
import pytest

from repro.schema.column import Column, ColumnType
from repro.schema.catalog import Catalog
from repro.schema.database import Database
from repro.schema.ddl import render_create_table, render_database_ddl, schema_prompt
from repro.schema.naming import NamingStyle, dirty_name, rename_database
from repro.schema.table import ForeignKey, Table

from helpers import make_column, make_racing_db


class TestColumn:
    def test_surface_prefers_semantic_words(self):
        col = Column("EdOps", ColumnType.TEXT, semantic_words=("education", "operations"))
        assert col.surface == "education operations"

    def test_surface_falls_back_to_name(self):
        assert Column("foo", ColumnType.TEXT).surface == "foo"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Column("", ColumnType.TEXT)

    def test_renamed_keeps_semantics(self):
        col = Column("a", ColumnType.TEXT, semantic_words=("alpha",))
        assert col.renamed("b").semantic_words == ("alpha",)
        assert col.renamed("b").name == "b"

    def test_without_description(self):
        col = Column("a", ColumnType.TEXT, description="d")
        assert col.without_description().description is None

    @pytest.mark.parametrize(
        "ctype,affinity,numeric",
        [
            (ColumnType.INTEGER, "INTEGER", True),
            (ColumnType.REAL, "REAL", True),
            (ColumnType.TEXT, "TEXT", False),
            (ColumnType.DATE, "TEXT", False),
            (ColumnType.BOOLEAN, "INTEGER", True),
        ],
    )
    def test_type_affinities(self, ctype, affinity, numeric):
        assert ctype.sqlite_affinity == affinity
        assert ctype.is_numeric is numeric

    def test_date_and_text_are_distinct_members(self):
        assert ColumnType.DATE is not ColumnType.TEXT
        assert ColumnType.BOOLEAN is not ColumnType.INTEGER


class TestTable:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", (make_column("a"), make_column("a")))

    def test_fk_column_must_exist(self):
        with pytest.raises(ValueError):
            Table(
                "t",
                (make_column("a"),),
                foreign_keys=(ForeignKey("missing", "x", "y"),),
            )

    def test_primary_key_listing(self):
        t = Table("t", (make_column("id", pk=True), make_column("v")))
        assert t.primary_key == ("id",)

    def test_column_lookup_case_insensitive(self):
        t = Table("t", (make_column("RaceId"),))
        assert t.column("raceid").name == "RaceId"
        with pytest.raises(KeyError):
            t.column("nope")

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("t", ())


class TestDatabase:
    def test_fk_referential_integrity_enforced(self):
        t1 = Table("a", (make_column("x", pk=True),))
        bad = Table(
            "b",
            (make_column("a_x"),),
            foreign_keys=(ForeignKey("a_x", "missing", "x"),),
        )
        with pytest.raises(ValueError):
            Database("db", (t1, bad))

    def test_join_condition_found_either_direction(self):
        db = make_racing_db()
        edge = db.join_condition("races", "lap_times")
        assert edge is not None
        lt, lc, rt, rc = edge
        assert {lt, rt} == {"races", "lap_times"}

    def test_join_condition_none_when_unrelated(self):
        db = make_racing_db()
        assert db.join_condition("drivers", "pit_stops") is None

    def test_neighbors(self):
        db = make_racing_db()
        assert set(db.neighbors("races")) == {"lap_times", "pit_stops"}

    def test_subset_keeps_primary_keys(self):
        db = make_racing_db()
        sub = db.subset(["races"], {"races": ["race_name"]})
        cols = sub.table("races").column_names
        assert "race_id" in cols and "race_name" in cols
        assert "season_year" not in cols

    def test_subset_drops_dangling_fks(self):
        db = make_racing_db()
        sub = db.subset(["lap_times"])
        assert sub.table("lap_times").foreign_keys == ()

    def test_qualified_columns_order(self):
        db = make_racing_db()
        qc = db.qualified_columns()
        assert qc[0] == ("races", "race_id")
        assert len(qc) == db.n_columns


class TestDDL:
    def test_create_table_executes(self):
        import sqlite3

        db = make_racing_db()
        conn = sqlite3.connect(":memory:")
        for t in db.tables:
            conn.execute(render_create_table(t))
        names = {
            r[0]
            for r in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        assert names == {"races", "drivers", "lap_times", "pit_stops"}

    def test_full_ddl_contains_all_tables(self):
        ddl = render_database_ddl(make_racing_db())
        assert ddl.count("CREATE TABLE") == 4

    def test_schema_prompt_includes_descriptions(self):
        col = Column("x", ColumnType.TEXT, description="the x value")
        t = Table("t", (col,))
        db = Database("d", (t,))
        prompt = schema_prompt(db)
        assert "-- the x value" in prompt
        assert "-- the x value" not in schema_prompt(db, include_descriptions=False)

    def test_schema_prompt_includes_knowledge(self):
        db = Database(
            "d",
            (Table("t", (make_column("a"),)),),
            knowledge=("podium means top three",),
        )
        assert "podium means top three" in schema_prompt(db)


class TestNaming:
    def test_dirty_name_is_deterministic_per_rng(self):
        a = dirty_name(("education", "operations"), np.random.default_rng(1))
        b = dirty_name(("education", "operations"), np.random.default_rng(1))
        assert a == b

    def test_rename_database_consistent_fks(self):
        db = make_racing_db()
        renamed = rename_database(db, NamingStyle.DIRTY, np.random.default_rng(3))
        # FK targets must reference existing tables/columns (validated in
        # Database.__post_init__, so construction succeeding is the test).
        assert len(renamed.tables) == len(db.tables)
        assert renamed.dirty

    def test_rename_preserves_semantics(self):
        db = make_racing_db()
        renamed = rename_database(db, NamingStyle.CAMEL, np.random.default_rng(3))
        for orig, new in zip(db.tables, renamed.tables):
            assert new.semantic_words == orig.semantic_words

    def test_camel_style_render(self):
        assert NamingStyle.CAMEL.render(("lap", "times")) == "lapTimes"
        assert NamingStyle.SNAKE.render(("lap", "times")) == "lap_times"

    def test_dirty_style_requires_rng(self):
        with pytest.raises(ValueError):
            NamingStyle.DIRTY.render(("a",))


class TestCatalog:
    def test_add_and_get(self):
        cat = Catalog("c")
        cat.add(make_racing_db())
        assert cat.get("racing_test").name == "racing_test"
        assert len(cat) == 1

    def test_duplicate_rejected(self):
        cat = Catalog("c")
        cat.add(make_racing_db())
        with pytest.raises(ValueError):
            cat.add(make_racing_db())

    def test_summary_statistics(self):
        cat = Catalog("c")
        cat.add(make_racing_db())
        s = cat.summary()
        assert s["databases"] == 1
        assert s["tables"] == 4
        assert s["avg_tables"] == 4.0

    def test_missing_lookup_raises(self):
        with pytest.raises(KeyError):
            Catalog("c").get("nope")
