"""Tests for repro.utils.rng: determinism and stream independence."""

import numpy as np

from repro.utils.rng import RngFactory, as_generator, spawn, stable_hash


def test_stable_hash_deterministic():
    assert stable_hash(1, "a", 2.5) == stable_hash(1, "a", 2.5)


def test_stable_hash_differs_by_part():
    assert stable_hash(1, "a") != stable_hash(1, "b")
    assert stable_hash(1, "a") != stable_hash(2, "a")


def test_stable_hash_order_sensitive():
    assert stable_hash("a", "b") != stable_hash("b", "a")


def test_stable_hash_no_concatenation_collision():
    # ("ab", "c") must differ from ("a", "bc") — parts are delimited.
    assert stable_hash("ab", "c") != stable_hash("a", "bc")


def test_spawn_reproducible():
    a = spawn(42, "x").normal(size=5)
    b = spawn(42, "x").normal(size=5)
    np.testing.assert_array_equal(a, b)


def test_spawn_independent_streams():
    a = spawn(42, "x").normal(size=100)
    b = spawn(42, "y").normal(size=100)
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.35


def test_as_generator_passthrough():
    g = np.random.default_rng(0)
    assert as_generator(g) is g


def test_as_generator_from_int_and_none():
    assert as_generator(5).integers(100) == np.random.default_rng(5).integers(100)
    assert isinstance(as_generator(None), np.random.Generator)


def test_factory_seed_for_in_range():
    factory = RngFactory(9)
    s = factory.seed_for("module", 3)
    assert 0 <= s < 2**31
    assert s == RngFactory(9).seed_for("module", 3)


def test_factory_child_differs_from_parent():
    factory = RngFactory(9)
    child = factory.child("sub")
    assert child.seed != factory.seed


def test_factory_get_name_isolation():
    factory = RngFactory(1)
    x = factory.get("a").integers(1 << 30)
    y = factory.get("b").integers(1 << 30)
    assert x != y  # astronomically unlikely to collide


def test_factory_weighted_choice_respects_zero_weight():
    factory = RngFactory(4)
    for _ in range(20):
        pick = factory.choice_weighted(["w"], ["a", "b"], [1.0, 0.0])
        assert pick == "a"
