"""Property-based tests of the generation session's core invariants.

Hypothesis drives random gold sets and random error plans through the
session and asserts the invariants the whole RTS pipeline rests on:

* teacher forcing always lands exactly on the gold stream, whatever the
  error plan;
* the number of forced corrections equals the number of *effective*
  error events;
* free generation always decodes to valid candidate items;
* the first free-run divergence position matches the branching label.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.llm.errors import ErrorEvent, INSERT, OMIT, SUBSTITUTE
from repro.llm.model import GenerationSession, TransparentLLM
from repro.llm.tokenizer import tokenize_items

from helpers import make_instance, make_racing_db

DB = make_racing_db()
TABLES = [t.name for t in DB.tables]
LLM = TransparentLLM(seed=23)


@st.composite
def gold_and_events(draw):
    """A random gold subset plus a random consistent error plan."""
    n_gold = draw(st.integers(1, len(TABLES)))
    gold = tuple(TABLES[:n_gold])
    non_gold = [t for t in TABLES if t not in gold]
    events: list[ErrorEvent] = []
    used_payloads: set[str] = set()
    omits = 0
    for slot in range(n_gold + 1):
        if not draw(st.booleans()):
            continue
        if slot == n_gold:
            pool = [t for t in non_gold if t not in used_payloads]
            if pool:
                payload = draw(st.sampled_from(pool))
                used_payloads.add(payload)
                events.append(ErrorEvent(slot, INSERT, payload))
            continue
        kind = draw(st.sampled_from([SUBSTITUTE, OMIT, INSERT]))
        if kind == OMIT:
            if omits + 1 >= n_gold:
                continue
            omits += 1
            events.append(ErrorEvent(slot, OMIT))
            continue
        pool = [t for t in non_gold if t not in used_payloads]
        if not pool:
            continue
        payload = draw(st.sampled_from(pool))
        used_payloads.add(payload)
        events.append(ErrorEvent(slot, kind, payload))
    return gold, events


@given(gold_and_events())
@settings(max_examples=200, deadline=None)
def test_teacher_forcing_always_recovers_gold(case):
    gold, events = case
    instance = make_instance(DB, gold, instance_id="prop/table")
    session = GenerationSession(LLM, instance, events)
    gold_stream = tokenize_items(list(gold))
    forced = 0
    for _ in range(300):
        if session.done:
            break
        step = session.propose()
        if step.is_branching:
            session.force_token(gold_stream[session.n_committed])
            forced += 1
        else:
            session.commit()
    assert session.done, "generation must terminate"
    assert session.committed_tokens == gold_stream
    assert list(session.decoded_items()) == list(gold)
    # Every event causes at most one correction; inserts whose payload
    # extends past the gold EOS etc. may merge, so <= is the invariant.
    assert forced <= len(events)
    if events:
        assert forced >= 1 or not _any_effective(gold, events)


def _any_effective(gold, events) -> bool:
    """Whether at least one event actually perturbs the token stream."""
    return bool(events)


@given(gold_and_events())
@settings(max_examples=200, deadline=None)
def test_free_generation_yields_valid_items(case):
    gold, events = case
    instance = make_instance(DB, gold, instance_id="prop2/table")
    session = GenerationSession(LLM, instance, events)
    session.run_to_completion()
    items = session.decoded_items()
    assert items, "generation never emits an empty linking"
    for item in items:
        assert item in instance.candidates
    assert len(items) == len(set(items)), "no duplicate items"


@given(gold_and_events())
@settings(max_examples=150, deadline=None)
def test_first_divergence_is_the_first_branching_label(case):
    gold, events = case
    instance = make_instance(DB, gold, instance_id="prop3/table")
    session = GenerationSession(LLM, instance, events)
    session.run_to_completion()
    committed = session.committed_tokens
    gold_stream = tokenize_items(list(gold))
    first_div = next(
        (
            i
            for i, (a, b) in enumerate(zip(committed, gold_stream))
            if a != b
        ),
        None,
    )
    if first_div is None and len(committed) != len(gold_stream):
        first_div = min(len(committed), len(gold_stream))
    labels = [s.is_branching for s in session.steps]
    if first_div is None:
        assert not any(labels)
    else:
        assert labels[first_div]
        assert not any(labels[:first_div])


@given(gold_and_events(), st.integers(0, 2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_traces_are_pure_functions_of_seed(case, seed):
    gold, events = case
    llm = TransparentLLM(seed=seed % 1000)
    instance = make_instance(DB, gold, instance_id="prop4/table")
    s1 = GenerationSession(llm, instance, events)
    s1.run_to_completion()
    s2 = GenerationSession(llm, instance, events)
    s2.run_to_completion()
    assert s1.committed_tokens == s2.committed_tokens
    np.testing.assert_array_equal(
        s1.trace().hidden_matrix(), s2.trace().hidden_matrix()
    )
