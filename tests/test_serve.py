"""Tests for the ``repro-serve`` online serving tier.

Pins down the serving guarantees:

* ``POST /v1/query`` answers through the same fitted pipeline and
  generation service as the offline drivers — the embedded ``record``
  (key included) is byte-identical to the line ``repro-run --artifact``
  writes for the same example, and concurrent clients see exactly the
  bytes a serial client would;
* abstention and answering both ship complete payloads: an abstained
  query carries no SQL but full probe diagnostics, an answered one
  carries SQL generated from exactly the linked schema subset;
* the error surface is deliberate: malformed bodies and unknown
  tasks/modes are 400s, unknown routes/benchmarks/examples are 404s,
  and none of them kill the server;
* ``GET /healthz`` / ``GET /v1/stats`` report liveness, request
  counters and per-tier cache stats (the second identical query is a
  memory-tier hit).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.common import ExperimentContext
from repro.runtime.serve import ApiError, ReproServer, ServeApp, build_serve_parser

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def served():
    """One warmed, running server on an ephemeral port (simulator backend)."""
    ctx = ExperimentContext.tiny()
    app = ServeApp(ctx, benchmarks=("bird",))
    app.warm()
    server = ReproServer(("127.0.0.1", 0), app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, app, ctx
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        ctx.close()


def url(server: ReproServer, path: str) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def get(
    server: ReproServer, path: str, headers: "dict[str, str] | None" = None
) -> "tuple[int, dict]":
    request = urllib.request.Request(url(server, path), headers=headers or {})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post(
    server: ReproServer,
    path: str,
    body: bytes,
    headers: "dict[str, str] | None" = None,
) -> "tuple[int, dict]":
    request = urllib.request.Request(
        url(server, path),
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def query(
    server: ReproServer, payload: dict, headers: "dict[str, str] | None" = None
) -> "tuple[int, dict]":
    return post(server, "/v1/query", json.dumps(payload).encode(), headers=headers)


# -- byte-identity with the offline drivers -----------------------------------


def test_query_records_match_the_offline_artifact(served, tmp_path):
    server, app, ctx = served
    bench = ctx.benchmark("bird")
    instances = ctx.instances("bird", "dev", "table")
    path = tmp_path / "offline.jsonl"
    ctx.runner("bird").run_link(instances, mode="abstain", artifact=str(path))
    offline = {
        record["instance_id"].split("/")[0]: record
        for record in map(json.loads, path.read_text().splitlines())
        if "instance_id" in record
    }
    assert len(offline) == len(bench.dev.examples)
    for example_id, reference in offline.items():
        status, body = query(
            server,
            {"benchmark": "bird", "example_id": example_id,
             "task": "table", "mode": "abstain"},
        )
        assert status == 200
        assert json.dumps(body["record"], sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
        assert body["abstained"] is reference["abstained"]


def test_concurrent_clients_get_byte_identical_answers(served):
    server, _app, ctx = served
    examples = [e.example_id for e in ctx.benchmark("bird").dev.examples]
    payloads = [
        {"benchmark": "bird", "example_id": example_id, "task": task, "mode": "abstain"}
        for example_id in examples
        for task in ("table", "column")
    ]
    reference = [query(server, payload) for payload in payloads]
    with ThreadPoolExecutor(max_workers=8) as pool:
        concurrent = list(pool.map(lambda p: query(server, p), payloads * 2))
    for i, got in enumerate(concurrent):
        want = reference[i % len(payloads)]
        assert got[0] == 200
        # Everything but the per-request latency is deterministic.
        got[1]["diagnostics"].pop("latency_ms")
        expected = dict(want[1])
        expected["diagnostics"] = {
            k: v for k, v in want[1]["diagnostics"].items() if k != "latency_ms"
        }
        # After the first pass every generation sits in L1.
        expected["diagnostics"]["cache_tier"] = "memory"
        assert got[1] == expected


# -- answering and abstaining -------------------------------------------------


def test_abstained_query_has_probe_diagnostics_but_no_sql(served):
    server, _app, ctx = served
    example_id = ctx.benchmark("bird").dev.examples[0].example_id
    status, body = query(
        server,
        {"benchmark": "bird", "example_id": example_id,
         "task": "table", "mode": "abstain"},
    )
    assert status == 200
    assert body["abstained"] is True and body["sql"] is None
    assert body["probe"]["layer_aucs"] and body["probe"]["mean_auc"] > 0
    assert body["record"]["key"].endswith(f":{body['record']['instance_key']}")


def test_human_mode_answers_with_sql(served):
    server, _app, ctx = served
    for example in ctx.benchmark("bird").dev.examples:
        status, body = query(
            server,
            {"benchmark": "bird", "example_id": example.example_id,
             "task": "table", "mode": "human"},
        )
        assert status == 200
        assert body["abstained"] is False
        assert isinstance(body["sql"], str) and body["sql"].startswith("SELECT")


def test_joint_task_serves_both_layers(served):
    server, _app, ctx = served
    example = ctx.benchmark("bird").dev.examples[0]
    status, body = query(
        server,
        {"benchmark": "bird", "example_id": example.example_id,
         "task": "joint", "mode": "human"},
    )
    assert status == 200
    assert body["record"]["key"].endswith(f":{example.example_id}")
    assert body["probe"]["table_mean_auc"] > 0
    assert body["probe"]["column_mean_auc"] > 0
    assert body["sql"] is not None


def test_query_by_question_resolves_the_example(served):
    server, _app, ctx = served
    example = ctx.benchmark("bird").dev.examples[0]
    status, body = query(
        server, {"benchmark": "bird", "question": example.question, "task": "table"}
    )
    assert status == 200
    assert body["example_id"] == example.example_id


# -- the error surface --------------------------------------------------------


def test_error_responses(served):
    server, _app, ctx = served
    example_id = ctx.benchmark("bird").dev.examples[0].example_id
    assert get(server, "/nope")[0] == 404
    assert post(server, "/v1/nope", b"{}")[0] == 404
    assert post(server, "/v1/query", b"")[0] == 400  # empty body
    assert post(server, "/v1/query", b"{not json")[0] == 400
    assert post(server, "/v1/query", b"[1, 2]")[0] == 400  # non-object body
    assert query(server, {"benchmark": "bird"})[0] == 400  # no id, no question
    assert query(server, {"benchmark": "postgres", "example_id": example_id})[0] == 404
    assert query(server, {"example_id": "no-such-example"})[0] == 404
    assert query(server, {"example_id": example_id, "task": "views"})[0] == 400
    assert query(server, {"example_id": example_id, "mode": "prayer"})[0] == 400
    # The server survived all of it.
    assert get(server, "/healthz")[0] == 200


def test_api_error_carries_its_status():
    error = ApiError(418, "teapot")
    assert error.status == 418 and str(error) == "teapot"


# -- health and stats ---------------------------------------------------------


def test_healthz_reports_liveness(served):
    server, _app, _ctx = served
    status, body = get(server, "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["benchmarks"] == ["bird"]
    assert body["backend"] == "SimulatorBackend"
    assert body["uptime_s"] >= 0


def test_stats_counts_requests_and_tiers(served):
    server, app, ctx = served
    example_id = ctx.benchmark("bird").dev.examples[0].example_id
    payload = {"benchmark": "bird", "example_id": example_id, "task": "table"}
    assert query(server, payload)[0] == 200
    status, repeat = query(server, payload)
    assert status == 200
    assert repeat["diagnostics"]["cache_tier"] == "memory"  # second hit is L1
    status, stats = get(server, "/v1/stats")
    assert status == 200
    assert stats["requests"]["n_queries"] >= 2
    assert stats["requests"]["n_errors"] >= 0
    assert stats["tiers"]["memory"]["hits"] >= 1
    assert stats["cache"]["hits"] >= 1
    assert stats["namespace"] == ctx.service.namespace()
    assert "supervisor" not in stats  # simulator backend: no fleet


# -- SLO surface: deadlines, auth, latency histograms -------------------------


def serve_app(app: ServeApp):
    """Run an already-warmed app on an ephemeral port; yields the server."""
    server = ReproServer(("127.0.0.1", 0), app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def stop_serving(server: ReproServer, thread: threading.Thread) -> None:
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


@pytest.fixture()
def served_process():
    """A warmed server over a single-worker process backend."""
    from repro.runtime.service import PROCESS, BackendSpec

    ctx = ExperimentContext.tiny(spec=BackendSpec(kind=PROCESS, workers=1))
    app = ServeApp(ctx, benchmarks=("bird",))
    app.warm()
    server, thread = serve_app(app)
    try:
        yield server, app, ctx
    finally:
        stop_serving(server, thread)
        ctx.close()


def test_per_request_deadline_returns_503_without_duplicates(
    served_process, monkeypatch
):
    """The acceptance scenario: a chaos-delayed query with a tight
    timeout_s gets HTTP 503 with the documented body; the disowned
    generation is neither lost nor duplicated, and an undeadlined
    retry answers normally."""
    import os
    import signal

    from repro.runtime.remote import CHAOS_DELAY_ENV

    server, app, ctx = served_process
    backend = app.backend
    # Replace the (fast) warm-up worker with one that inherits the chaos
    # delay — workers read the env at spawn time.
    monkeypatch.setenv(CHAOS_DELAY_ENV, "200")
    victims = backend.worker_pids()
    for pid in victims:
        os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        if set(backend.worker_pids()) - set(victims) and backend.check_health() == 1:
            break
        backend.check_health()  # reap the victim, spawn the replacement
        time.sleep(0.05)
    assert len(backend.ping()) == 1  # the replacement is up
    example_id = ctx.benchmark("bird").dev.examples[0].example_id
    payload = {"benchmark": "bird", "example_id": example_id, "task": "table",
               "mode": "abstain", "timeout_s": 0.05}
    status, body = query(server, payload)
    assert status == 503
    assert body["error_type"] == "deadline_exceeded"
    assert body["retryable"] is True
    assert body["timeout_s"] == 0.05
    assert "deadline" in body["error"]
    # Without the per-request deadline the same query answers fine (the
    # chaos delay only makes it slow), and nothing was duplicated.
    del payload["timeout_s"]
    status, body = query(server, payload)
    assert status == 200 and body["example_id"] == example_id
    status, stats = get(server, "/v1/stats")
    assert status == 200
    assert stats["requests"]["n_deadline_exceeded"] >= 1
    assert stats["supervisor"]["n_deadline_exceeded"] >= 1
    assert stats["supervisor"]["n_duplicate_results"] == 0


def test_per_request_timeout_validation(served):
    server, _app, ctx = served
    example_id = ctx.benchmark("bird").dev.examples[0].example_id
    for bad in (0, -1, "fast", True):
        status, body = query(
            server,
            {"benchmark": "bird", "example_id": example_id, "timeout_s": bad},
        )
        assert status == 400
        assert "timeout_s" in body["error"]


def test_healthz_reports_draining_workers(served_process):
    server, app, _ctx = served_process
    status, body = get(server, "/healthz")
    assert status == 200
    assert body["workers_alive"] == 1
    assert body["workers_draining"] == 0
    # Drain the idle worker: it deregisters immediately and its
    # replacement keeps capacity level.
    backend = app.backend
    index = backend.worker_snapshot()[0]["index"]
    assert backend.drain(index) is True
    deadline = time.monotonic() + 10.0
    while backend.stats.n_drained < 1 and time.monotonic() < deadline:
        time.sleep(0.02)
    status, stats = get(server, "/v1/stats")
    assert status == 200
    assert stats["supervisor"]["n_drained"] == 1
    assert stats["supervisor"]["n_requeued"] == 0
    status, body = get(server, "/healthz")
    assert status == 200 and body["workers_alive"] == 1


@pytest.fixture()
def served_auth():
    """A warmed simulator-backed server requiring a bearer token."""
    ctx = ExperimentContext.tiny()
    app = ServeApp(ctx, benchmarks=("bird",), auth_token="s3cret")
    app.warm()
    server, thread = serve_app(app)
    try:
        yield server, app, ctx
    finally:
        stop_serving(server, thread)
        ctx.close()


def test_bearer_token_gates_v1_routes_but_not_healthz(served_auth):
    server, app, ctx = served_auth
    bearer = {"Authorization": "Bearer s3cret"}
    example_id = ctx.benchmark("bird").dev.examples[0].example_id
    payload = {"benchmark": "bird", "example_id": example_id, "task": "table"}
    # /healthz stays open for probes.
    assert get(server, "/healthz")[0] == 200
    # Missing, malformed, and wrong credentials are 401s.
    for headers in (
        None,
        {"Authorization": "Bearer wrong"},
        {"Authorization": "Basic s3cret"},
        {"Authorization": "s3cret"},
    ):
        status, body = query(server, payload, headers=headers)
        assert status == 401
        assert body["error_type"] == "unauthorized"
        status, body = get(server, "/v1/stats", headers=headers)
        assert status == 401
    # The right token clears both routes.
    assert query(server, payload, headers=bearer)[0] == 200
    status, stats = get(server, "/v1/stats", headers=bearer)
    assert status == 200
    assert stats["requests"]["n_unauthorized"] >= 8


def test_unauthorized_sends_www_authenticate_challenge(served_auth):
    server, _app, _ctx = served_auth
    request = urllib.request.Request(url(server, "/v1/stats"))
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request)
    assert info.value.code == 401
    assert info.value.headers.get("WWW-Authenticate") == "Bearer"


def test_stats_exposes_latency_histograms(served):
    server, _app, ctx = served
    example_id = ctx.benchmark("bird").dev.examples[0].example_id
    for _ in range(3):
        assert query(
            server, {"benchmark": "bird", "example_id": example_id, "task": "table"}
        )[0] == 200
    assert get(server, "/healthz")[0] == 200
    assert get(server, "/v1/stats")[0] == 200  # so the stats histogram is warm
    status, stats = get(server, "/v1/stats")
    assert status == 200
    latency = stats["latency"]
    query_histogram = latency["endpoints"]["query"]
    # The histogram counts exactly the queries that returned 200 — the
    # same measurement the per-response diagnostics.latency_ms carries.
    assert query_histogram["count"] == stats["requests"]["n_queries"]
    assert query_histogram["count"] >= 3
    assert sum(query_histogram["bucket_counts"]) == query_histogram["count"]
    assert query_histogram["sum_ms"] > 0
    assert query_histogram["bucket_le_ms"][-1] == "+Inf"
    for quantile in ("p50_ms", "p95_ms", "p99_ms"):
        assert query_histogram[quantile] is not None
        assert query_histogram[quantile] >= 0
    assert query_histogram["p50_ms"] <= query_histogram["p99_ms"]
    for endpoint in ("healthz", "stats"):
        assert latency["endpoints"][endpoint]["count"] >= 1
    # Every query lands in exactly one cache-tier histogram too.
    tier_total = sum(h["count"] for h in latency["tiers"].values())
    assert tier_total == query_histogram["count"]
    assert "memory" in latency["tiers"]  # the repeats were L1 hits


def test_latency_histogram_percentiles_are_sane():
    from repro.runtime.serve import LatencyHistogram

    histogram = LatencyHistogram()
    assert histogram.snapshot()["count"] == 0
    assert histogram.snapshot()["p50_ms"] is None
    for value in (2.0, 3.0, 4.0, 30.0, 40.0, 90.0, 20_000.0):
        histogram.record(value)
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 7
    assert snapshot["sum_ms"] == pytest.approx(20_169.0)
    assert snapshot["p50_ms"] <= snapshot["p95_ms"] <= snapshot["p99_ms"]
    # The overflow bucket clamps to the largest finite bound instead of
    # inventing an infinite percentile.
    assert snapshot["p99_ms"] == 10_000.0
    assert sum(snapshot["bucket_counts"]) == 7


# -- the documented API cannot drift ------------------------------------------


def documented_bodies() -> "dict[str, dict]":
    """The response examples in docs/http-api.md, by live-check tag."""
    import pathlib
    import re

    doc = (
        pathlib.Path(__file__).resolve().parents[1] / "docs" / "http-api.md"
    ).read_text()
    blocks = re.findall(
        r"<!-- live-check: ([\w-]+) -->\s*```json\n(.*?)```", doc, flags=re.DOTALL
    )
    assert blocks, "docs/http-api.md lost its live-check tags"
    return {name: json.loads(body) for name, body in blocks}


def assert_documented_fields_exist(documented, live, path: str) -> None:
    """Every key the doc shows must exist in the live payload (values
    are illustrative; extra live keys are fine — docs may trail new
    fields by one PR, but must never describe fields that don't exist)."""
    if isinstance(documented, dict):
        assert isinstance(live, dict), f"{path}: documented object, live {type(live)}"
        for key, value in documented.items():
            assert key in live, f"{path}.{key} documented but missing live"
            assert_documented_fields_exist(value, live[key], f"{path}.{key}")
    elif isinstance(documented, list) and documented and isinstance(live, list):
        assert live, f"{path}: documented non-empty list, live empty"
        assert_documented_fields_exist(documented[0], live[0], f"{path}[0]")


def test_http_api_doc_fields_exist_live(served_process, monkeypatch):
    """docs/http-api.md is checked against a live process-backed server:
    every documented field of every example body must exist in a real
    response of the same kind."""
    import os
    import signal

    from repro.runtime.remote import CHAOS_DELAY_ENV

    server, app, ctx = served_process
    documented = documented_bodies()
    assert set(documented) == {
        "query", "healthz", "stats", "deadline", "unauthorized", "error",
    }
    example_id = ctx.benchmark("bird").dev.examples[0].example_id
    payload = {"benchmark": "bird", "example_id": example_id, "task": "table",
               "mode": "abstain"}
    live: "dict[str, dict]" = {}
    status, live["query"] = query(server, payload)
    assert status == 200
    assert query(server, payload)[0] == 200  # repeat: a memory-tier hit
    status, live["error"] = query(server, {**payload, "task": "views"})
    assert status == 400
    # The bearer gate, flipped on live for one request.
    app.auth_token = "s3cret"
    try:
        status, live["unauthorized"] = query(server, payload)
        assert status == 401
    finally:
        app.auth_token = None
    # A real deadline expiry: replace the worker with a chaos-delayed one.
    backend = app.backend
    monkeypatch.setenv(CHAOS_DELAY_ENV, "200")
    victims = backend.worker_pids()
    for pid in victims:
        os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        if set(backend.worker_pids()) - set(victims) and backend.check_health() == 1:
            break
        backend.check_health()
        time.sleep(0.05)
    second = ctx.benchmark("bird").dev.examples[1].example_id
    status, live["deadline"] = query(
        server,
        {"benchmark": "bird", "example_id": second, "task": "table",
         "mode": "abstain", "timeout_s": 0.05},
    )
    assert status == 503
    status, live["healthz"] = get(server, "/healthz")
    assert status == 200
    status, live["stats"] = get(server, "/v1/stats")
    assert status == 200
    for name, body in documented.items():
        assert_documented_fields_exist(body, live[name], name)


# -- the CLI parser -----------------------------------------------------------


def test_serve_parser_shares_the_backend_flag_vocabulary():
    args = build_serve_parser().parse_args(
        ["--benchmark", "bird", "spider", "--scale", "tiny",
         "--backend", "process", "--transport", "unix", "--gen-workers", "2"]
    )
    assert args.benchmark == ["bird", "spider"]
    assert args.backend == "process"
    assert args.transport == "unix"
    assert args.gen_workers == 2
    assert args.port == 0  # ephemeral by default
