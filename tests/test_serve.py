"""Tests for the ``repro-serve`` online serving tier.

Pins down the serving guarantees:

* ``POST /v1/query`` answers through the same fitted pipeline and
  generation service as the offline drivers — the embedded ``record``
  (key included) is byte-identical to the line ``repro-run --artifact``
  writes for the same example, and concurrent clients see exactly the
  bytes a serial client would;
* abstention and answering both ship complete payloads: an abstained
  query carries no SQL but full probe diagnostics, an answered one
  carries SQL generated from exactly the linked schema subset;
* the error surface is deliberate: malformed bodies and unknown
  tasks/modes are 400s, unknown routes/benchmarks/examples are 404s,
  and none of them kill the server;
* ``GET /healthz`` / ``GET /v1/stats`` report liveness, request
  counters and per-tier cache stats (the second identical query is a
  memory-tier hit).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.common import ExperimentContext
from repro.runtime.serve import ApiError, ReproServer, ServeApp, build_serve_parser

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def served():
    """One warmed, running server on an ephemeral port (simulator backend)."""
    ctx = ExperimentContext.tiny()
    app = ServeApp(ctx, benchmarks=("bird",))
    app.warm()
    server = ReproServer(("127.0.0.1", 0), app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, app, ctx
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        ctx.close()


def url(server: ReproServer, path: str) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def get(server: ReproServer, path: str) -> "tuple[int, dict]":
    try:
        with urllib.request.urlopen(url(server, path)) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post(server: ReproServer, path: str, body: bytes) -> "tuple[int, dict]":
    request = urllib.request.Request(
        url(server, path), data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def query(server: ReproServer, payload: dict) -> "tuple[int, dict]":
    return post(server, "/v1/query", json.dumps(payload).encode())


# -- byte-identity with the offline drivers -----------------------------------


def test_query_records_match_the_offline_artifact(served, tmp_path):
    server, app, ctx = served
    bench = ctx.benchmark("bird")
    instances = ctx.instances("bird", "dev", "table")
    path = tmp_path / "offline.jsonl"
    ctx.runner("bird").run_link(instances, mode="abstain", artifact=str(path))
    offline = {
        record["instance_id"].split("/")[0]: record
        for record in map(json.loads, path.read_text().splitlines())
        if "instance_id" in record
    }
    assert len(offline) == len(bench.dev.examples)
    for example_id, reference in offline.items():
        status, body = query(
            server,
            {"benchmark": "bird", "example_id": example_id,
             "task": "table", "mode": "abstain"},
        )
        assert status == 200
        assert json.dumps(body["record"], sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
        assert body["abstained"] is reference["abstained"]


def test_concurrent_clients_get_byte_identical_answers(served):
    server, _app, ctx = served
    examples = [e.example_id for e in ctx.benchmark("bird").dev.examples]
    payloads = [
        {"benchmark": "bird", "example_id": example_id, "task": task, "mode": "abstain"}
        for example_id in examples
        for task in ("table", "column")
    ]
    reference = [query(server, payload) for payload in payloads]
    with ThreadPoolExecutor(max_workers=8) as pool:
        concurrent = list(pool.map(lambda p: query(server, p), payloads * 2))
    for i, got in enumerate(concurrent):
        want = reference[i % len(payloads)]
        assert got[0] == 200
        # Everything but the per-request latency is deterministic.
        got[1]["diagnostics"].pop("latency_ms")
        expected = dict(want[1])
        expected["diagnostics"] = {
            k: v for k, v in want[1]["diagnostics"].items() if k != "latency_ms"
        }
        # After the first pass every generation sits in L1.
        expected["diagnostics"]["cache_tier"] = "memory"
        assert got[1] == expected


# -- answering and abstaining -------------------------------------------------


def test_abstained_query_has_probe_diagnostics_but_no_sql(served):
    server, _app, ctx = served
    example_id = ctx.benchmark("bird").dev.examples[0].example_id
    status, body = query(
        server,
        {"benchmark": "bird", "example_id": example_id,
         "task": "table", "mode": "abstain"},
    )
    assert status == 200
    assert body["abstained"] is True and body["sql"] is None
    assert body["probe"]["layer_aucs"] and body["probe"]["mean_auc"] > 0
    assert body["record"]["key"].endswith(f":{body['record']['instance_key']}")


def test_human_mode_answers_with_sql(served):
    server, _app, ctx = served
    for example in ctx.benchmark("bird").dev.examples:
        status, body = query(
            server,
            {"benchmark": "bird", "example_id": example.example_id,
             "task": "table", "mode": "human"},
        )
        assert status == 200
        assert body["abstained"] is False
        assert isinstance(body["sql"], str) and body["sql"].startswith("SELECT")


def test_joint_task_serves_both_layers(served):
    server, _app, ctx = served
    example = ctx.benchmark("bird").dev.examples[0]
    status, body = query(
        server,
        {"benchmark": "bird", "example_id": example.example_id,
         "task": "joint", "mode": "human"},
    )
    assert status == 200
    assert body["record"]["key"].endswith(f":{example.example_id}")
    assert body["probe"]["table_mean_auc"] > 0
    assert body["probe"]["column_mean_auc"] > 0
    assert body["sql"] is not None


def test_query_by_question_resolves_the_example(served):
    server, _app, ctx = served
    example = ctx.benchmark("bird").dev.examples[0]
    status, body = query(
        server, {"benchmark": "bird", "question": example.question, "task": "table"}
    )
    assert status == 200
    assert body["example_id"] == example.example_id


# -- the error surface --------------------------------------------------------


def test_error_responses(served):
    server, _app, ctx = served
    example_id = ctx.benchmark("bird").dev.examples[0].example_id
    assert get(server, "/nope")[0] == 404
    assert post(server, "/v1/nope", b"{}")[0] == 404
    assert post(server, "/v1/query", b"")[0] == 400  # empty body
    assert post(server, "/v1/query", b"{not json")[0] == 400
    assert post(server, "/v1/query", b"[1, 2]")[0] == 400  # non-object body
    assert query(server, {"benchmark": "bird"})[0] == 400  # no id, no question
    assert query(server, {"benchmark": "postgres", "example_id": example_id})[0] == 404
    assert query(server, {"example_id": "no-such-example"})[0] == 404
    assert query(server, {"example_id": example_id, "task": "views"})[0] == 400
    assert query(server, {"example_id": example_id, "mode": "prayer"})[0] == 400
    # The server survived all of it.
    assert get(server, "/healthz")[0] == 200


def test_api_error_carries_its_status():
    error = ApiError(418, "teapot")
    assert error.status == 418 and str(error) == "teapot"


# -- health and stats ---------------------------------------------------------


def test_healthz_reports_liveness(served):
    server, _app, _ctx = served
    status, body = get(server, "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["benchmarks"] == ["bird"]
    assert body["backend"] == "SimulatorBackend"
    assert body["uptime_s"] >= 0


def test_stats_counts_requests_and_tiers(served):
    server, app, ctx = served
    example_id = ctx.benchmark("bird").dev.examples[0].example_id
    payload = {"benchmark": "bird", "example_id": example_id, "task": "table"}
    assert query(server, payload)[0] == 200
    status, repeat = query(server, payload)
    assert status == 200
    assert repeat["diagnostics"]["cache_tier"] == "memory"  # second hit is L1
    status, stats = get(server, "/v1/stats")
    assert status == 200
    assert stats["requests"]["n_queries"] >= 2
    assert stats["requests"]["n_errors"] >= 0
    assert stats["tiers"]["memory"]["hits"] >= 1
    assert stats["cache"]["hits"] >= 1
    assert stats["namespace"] == ctx.service.namespace()
    assert "supervisor" not in stats  # simulator backend: no fleet


# -- the CLI parser -----------------------------------------------------------


def test_serve_parser_shares_the_backend_flag_vocabulary():
    args = build_serve_parser().parse_args(
        ["--benchmark", "bird", "spider", "--scale", "tiny",
         "--backend", "process", "--transport", "unix", "--gen-workers", "2"]
    )
    assert args.benchmark == ["bird", "spider"]
    assert args.backend == "process"
    assert args.transport == "unix"
    assert args.gen_workers == 2
    assert args.port == 0  # ephemeral by default
