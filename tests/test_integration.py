"""End-to-end integration: corpus -> RTS linking -> SQL generation -> EX."""

import pytest

from repro.abstention.human import EXPERT, HumanOracle
from repro.core.pipeline import RTSPipeline
from repro.sqlgen.evaluate import (
    evaluate_text2sql,
    full_schema,
    golden_schema,
    rts_schema_provider,
)
from repro.sqlgen.profiles import DEEPSEEK_7B


@pytest.fixture(scope="module")
def joint_outcomes(fitted_pipeline, bird_tiny):
    human = HumanOracle(EXPERT, seed=9)
    return {
        e.example_id: fitted_pipeline.link_joint(e, bird_tiny, mode="human", human=human)
        for e in bird_tiny.dev
    }


def test_rts_schema_between_full_and_golden(bird_tiny, joint_outcomes):
    golden = evaluate_text2sql(bird_tiny, "dev", golden_schema, DEEPSEEK_7B, seed=21)
    rts = evaluate_text2sql(
        bird_tiny, "dev", rts_schema_provider(joint_outcomes), DEEPSEEK_7B, seed=21
    )
    full = evaluate_text2sql(bird_tiny, "dev", full_schema, DEEPSEEK_7B, seed=21)
    assert golden.execution_accuracy >= rts.execution_accuracy - 10.0
    assert rts.execution_accuracy >= full.execution_accuracy - 10.0


def test_rts_provider_falls_back_on_abstention(bird_tiny, joint_outcomes):
    provider = rts_schema_provider(joint_outcomes)
    example = bird_tiny.dev.examples[0]
    db = bird_tiny.database(example.db_id).schema
    provided = provider(example, db)
    assert len(provided.tables) >= 1


def test_whole_pipeline_is_deterministic(bird_tiny, llm):
    """Two fresh pipelines with identical seeds agree on every outcome."""
    from repro.core.config import RTSConfig

    outcomes = []
    for _ in range(2):
        pipe = RTSPipeline(llm, RTSConfig(seed=3)).fit_benchmark(
            bird_tiny, tasks=("table",)
        )
        run = [
            pipe.link(RTSPipeline.instance_for(e, bird_tiny, "table"), mode="abstain")
            for e in bird_tiny.dev.examples[:10]
        ]
        outcomes.append([(o.predicted, o.abstained, o.flags) for o in run])
    assert outcomes[0] == outcomes[1]


def test_human_assistance_lifts_downstream_ex(bird_tiny, fitted_pipeline, joint_outcomes):
    """The RTS-linked schema must not trail the unassisted full schema."""
    rts = evaluate_text2sql(
        bird_tiny, "dev", rts_schema_provider(joint_outcomes), DEEPSEEK_7B, seed=33
    )
    full = evaluate_text2sql(bird_tiny, "dev", full_schema, DEEPSEEK_7B, seed=33)
    assert rts.execution_accuracy >= full.execution_accuracy - 5.0
