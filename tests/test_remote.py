"""Tests for the process-isolated generation backend.

Pins down the tentpole guarantees:

* the wire protocol round-trips frames and messages exactly (EOF and
  torn frames read as channel death, never as corrupt messages);
* `worker_main` serves init/generate/ping/shutdown over framed streams
  and reports request-level failures without dying;
* `ProcessBackend` traces are bit-identical to `SimulatorBackend`'s,
  its `identity()` keeps the persistent-cache namespace shared across
  the whole backend axis, and `--backend process` summaries are
  byte-identical through the CLI;
* crash recovery: a worker SIGKILLed mid-batch is restarted, its
  in-flight requests are requeued to a surviving worker, and the batch
  completes with zero lost or duplicated generations — while an
  exhausted restart budget fails the stranded callers loudly instead of
  hanging them;
* lifecycle: close() terminates the fleet (no worker outlives the
  backend), the backend restarts cleanly afterwards, and it pickles as
  configuration only;
* the shared-memory data plane engages by default on local workers,
  stays byte-identical to inline pickling, falls back inline when
  disabled / unoffered / undersized, and preserves crash recovery.
"""

from __future__ import annotations

import io
import json
import os
import signal
import threading
import time

import pytest

from helpers import assert_traces_equal

from repro.core.pipeline import RTSPipeline
from repro.llm.model import SIMULATOR_VERSION, TransparentLLM
from repro.runtime.remote import (
    CHAOS_DELAY_ENV,
    SHM_ARENA_ENV,
    ProcessBackend,
    WorkerCrashError,
    read_frame,
    recv_message,
    send_message,
    worker_main,
    write_frame,
)
from repro.runtime.service import (
    FORCED,
    FREE,
    GenerationRequest,
    GenerationService,
    SimulatorBackend,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def table_instances(bird_tiny):
    return [
        RTSPipeline.instance_for(e, bird_tiny, "table") for e in bird_tiny.dev.examples
    ]


@pytest.fixture(scope="module")
def reference_traces(table_instances):
    requests = mixed_requests(table_instances)
    return requests, SimulatorBackend(TransparentLLM(seed=11)).generate(requests)


def mixed_requests(instances) -> list:
    return [GenerationRequest(FREE, i) for i in instances] + [
        GenerationRequest(FORCED, i) for i in instances
    ]


def wait_for_exit(pid: int, timeout_s: float = 10.0) -> bool:
    """True once ``pid`` no longer exists (reaped subprocess)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        time.sleep(0.02)
    return False


# -- framing ------------------------------------------------------------------


def test_frame_roundtrip_including_empty_payload():
    stream = io.BytesIO()
    write_frame(stream, b"hello")
    write_frame(stream, b"")
    write_frame(stream, b"\x00" * 1000)
    stream.seek(0)
    assert read_frame(stream) == b"hello"
    assert read_frame(stream) == b""
    assert read_frame(stream) == b"\x00" * 1000
    assert read_frame(stream) is None  # EOF


def test_torn_frame_reads_as_eof():
    stream = io.BytesIO()
    write_frame(stream, b"complete")
    payload = stream.getvalue()
    for cut in (len(payload) - 1, len(payload) - 5, 2):
        assert read_frame(io.BytesIO(payload[:cut])) is None
    assert read_frame(io.BytesIO(b"")) is None


def test_message_roundtrip():
    stream = io.BytesIO()
    send_message(stream, {"op": "ping", "id": 7})
    stream.seek(0)
    assert recv_message(stream) == {"op": "ping", "id": 7}
    assert recv_message(stream) is None


# -- the worker loop, in process ----------------------------------------------


def test_worker_main_serves_generate_ping_shutdown(table_instances):
    instance = table_instances[0]
    stdin = io.BytesIO()
    send_message(stdin, {"op": "init", "llm": TransparentLLM(seed=11)})
    send_message(
        stdin, {"op": "generate", "id": 0, "request": GenerationRequest(FREE, instance)}
    )
    send_message(stdin, {"op": "ping", "id": 1})
    send_message(
        stdin,
        {"op": "generate", "id": 2, "request": GenerationRequest(FORCED, instance)},
    )
    send_message(stdin, {"op": "shutdown"})
    stdin.seek(0)
    stdout = io.BytesIO()
    assert worker_main(stdin, stdout) == 0
    stdout.seek(0)
    ready = recv_message(stdout)
    assert ready["op"] == "ready" and ready["pid"] == os.getpid()
    llm = TransparentLLM(seed=11)
    first = recv_message(stdout)
    assert first["op"] == "result" and first["id"] == 0
    assert_traces_equal(first["trace"], llm.generate(instance))
    assert recv_message(stdout) == {"op": "pong", "id": 1}
    second = recv_message(stdout)
    assert second["op"] == "result" and second["id"] == 2
    assert_traces_equal(second["trace"], llm.teacher_forced_trace(instance))
    assert recv_message(stdout) is None


def test_worker_main_reports_request_errors_and_keeps_serving(table_instances):
    # A request whose instance is None: the worker-side generate raises
    # (kind validation passes — only the simulator call explodes).
    stdin = io.BytesIO()
    send_message(stdin, {"op": "init", "llm": TransparentLLM(seed=11)})
    send_message(
        stdin, {"op": "generate", "id": 0, "request": GenerationRequest(FREE, None)}
    )
    send_message(stdin, {"op": "ping", "id": 1})
    stdin.seek(0)
    stdout = io.BytesIO()
    assert worker_main(stdin, stdout) == 0  # EOF after ping: clean exit
    stdout.seek(0)
    assert recv_message(stdout)["op"] == "ready"
    error = recv_message(stdout)
    assert error["op"] == "error" and error["id"] == 0
    assert "Traceback" in error["error"]
    assert recv_message(stdout) == {"op": "pong", "id": 1}


def test_worker_main_without_init_exits_nonzero():
    assert worker_main(io.BytesIO(), io.BytesIO()) == 1


# -- byte-identity with the in-process backends -------------------------------


def test_process_backend_bit_identical_to_simulator(reference_traces):
    requests, reference = reference_traces
    with ProcessBackend(TransparentLLM(seed=11), workers=2) as backend:
        traces = backend.generate(requests)
    assert len(traces) == len(reference)
    for a, b in zip(reference, traces):
        assert_traces_equal(a, b)


def test_process_backend_identity_is_the_simulator_identity():
    llm = TransparentLLM(seed=11)
    backend = ProcessBackend(llm)
    assert backend.identity() == SimulatorBackend(llm).identity()
    assert backend.identity()[0] == SIMULATOR_VERSION


def test_process_backend_shares_the_persistent_namespace(tmp_path, table_instances):
    """A store warmed by the simulator serves the process backend fully."""
    instances = table_instances[:3]
    writer = GenerationService.build(TransparentLLM(seed=11), cache_dir=tmp_path)
    cold = writer.free_traces(instances)
    writer.close()

    reader = GenerationService.build(
        TransparentLLM(seed=11), gen_backend="process", cache_dir=tmp_path, workers=1
    )
    with reader:
        warm = reader.free_traces(instances)
        assert reader.stats.misses == 0  # every trace came from the store
        assert reader.namespace() == writer.namespace()
    for a, b in zip(cold, warm):
        assert_traces_equal(a, b)


def test_process_backend_validates_config():
    llm = TransparentLLM(seed=11)
    with pytest.raises(ValueError):
        ProcessBackend(llm, workers=0)
    with pytest.raises(ValueError):
        ProcessBackend(llm, max_restarts=-1)


# -- crash recovery -----------------------------------------------------------


def test_sigkill_one_worker_mid_batch_loses_nothing(reference_traces, monkeypatch):
    """The acceptance bug: a killed worker must not lose or duplicate
    a generation — its in-flight requests requeue to a survivor, a
    replacement spawns, and the batch completes bit-identically."""
    requests, reference = reference_traces
    # Slow each generation down so the kill reliably lands mid-batch.
    monkeypatch.setenv(CHAOS_DELAY_ENV, "40")
    with ProcessBackend(TransparentLLM(seed=11), workers=2) as backend:
        assert len(backend.ping()) == 2
        victim = backend.worker_pids()[0]
        timer = threading.Timer(0.2, os.kill, (victim, signal.SIGKILL))
        timer.start()
        try:
            traces = backend.generate(requests)
        finally:
            timer.cancel()
        stats = backend.stats
    assert len(traces) == len(requests)  # nothing lost
    for a, b in zip(reference, traces):
        assert_traces_equal(a, b)  # nothing duplicated or reordered
    assert stats.n_restarts >= 1  # the victim was replaced
    assert stats.n_requeued >= 1  # its in-flight work moved to a survivor
    assert stats.n_duplicate_results == 0  # each request resolved once
    assert wait_for_exit(victim)


def test_exhausted_restart_budget_fails_loudly(table_instances, monkeypatch):
    monkeypatch.setenv(CHAOS_DELAY_ENV, "200")
    backend = ProcessBackend(TransparentLLM(seed=11), workers=1, max_restarts=0)
    try:
        (pid,) = backend.ping()
        timer = threading.Timer(0.05, os.kill, (pid, signal.SIGKILL))
        timer.start()
        with pytest.raises(WorkerCrashError, match="restart budget|worker"):
            backend.generate(mixed_requests(table_instances))
        timer.cancel()
    finally:
        backend.close()


def test_check_health_replaces_an_idle_dead_worker():
    with ProcessBackend(TransparentLLM(seed=11), workers=2) as backend:
        pids = backend.ping()
        assert len(pids) == 2
        os.kill(pids[0], signal.SIGKILL)
        assert wait_for_exit(pids[0])
        assert backend.check_health() == 2  # reaped and replenished
        fresh = backend.ping()
        assert len(fresh) == 2 and pids[0] not in fresh
        assert backend.restarts == 1


def test_worker_error_propagates_with_traceback(table_instances):
    """A request-level failure raises WorkerError; the fleet survives."""
    from repro.runtime.remote import WorkerError

    good = table_instances[0]
    with ProcessBackend(TransparentLLM(seed=11), workers=1) as backend:
        with pytest.raises(WorkerError, match="Traceback"):
            backend.generate([GenerationRequest(FREE, None)])
        # Same worker keeps serving afterwards.
        traces = backend.generate([GenerationRequest(FREE, good)])
        assert_traces_equal(traces[0], TransparentLLM(seed=11).generate(good))
        assert backend.restarts == 0


# -- lifecycle ----------------------------------------------------------------


def test_close_terminates_the_fleet_and_backend_restarts_cleanly(table_instances):
    backend = ProcessBackend(TransparentLLM(seed=11), workers=2)
    request = GenerationRequest(FREE, table_instances[0])
    first = backend.generate([request])[0]
    pids = backend.worker_pids()
    assert len(pids) == 2
    backend.close()
    for pid in pids:
        assert wait_for_exit(pid), f"worker {pid} outlived close()"
    # Reusable after close, like the async backend.
    second = backend.generate([request])[0]
    backend.close()
    assert_traces_equal(first, second)


def test_close_is_idempotent_and_safe_before_start():
    backend = ProcessBackend(TransparentLLM(seed=11))
    backend.close()
    backend.close()
    assert backend.worker_pids() == []
    assert backend.generate([]) == []  # empty batch never spawns workers
    assert backend.stats.n_spawned == 0


def test_worker_logs_are_captured_per_worker(tmp_path, table_instances):
    log_dir = tmp_path / "worker-logs"
    with ProcessBackend(TransparentLLM(seed=11), workers=2, log_dir=log_dir) as backend:
        backend.generate([GenerationRequest(FREE, table_instances[0])])
    logs = sorted(p.name for p in log_dir.glob("worker-*.log"))
    assert logs == ["worker-0.log", "worker-1.log"]


def test_process_backend_pickles_as_configuration(table_instances):
    import pickle

    backend = ProcessBackend(TransparentLLM(seed=11), workers=1)
    request = GenerationRequest(FREE, table_instances[0])
    with backend:
        trace = backend.generate([request])[0]
        clone = pickle.loads(pickle.dumps(backend))
    assert clone.worker_pids() == []  # config only: no inherited fleet
    with clone:
        assert_traces_equal(clone.generate([request])[0], trace)


# -- socket transports --------------------------------------------------------


@pytest.mark.parametrize("transport", ["unix", "tcp"])
def test_socket_transport_bit_identical_to_simulator(reference_traces, transport):
    """Generations over socket workers are the same bytes as in-process,
    and the supervisor observes per-worker latency for scheduling."""
    requests, reference = reference_traces
    llm = TransparentLLM(seed=11)
    with ProcessBackend(llm, workers=2, transport=transport) as backend:
        traces = backend.generate(requests)
        assert backend.address is not None
        assert backend.address.startswith(f"{transport}:")
        snapshot = backend.worker_snapshot()
        stats = backend.stats
    assert len(traces) == len(reference)
    for a, b in zip(reference, traces):
        assert_traces_equal(a, b)
    assert stats.transport == transport
    assert len(snapshot) == 2
    assert any(entry["ewma_ms"] is not None for entry in snapshot)


def test_socket_sigkill_one_worker_mid_batch_loses_nothing(
    reference_traces, monkeypatch
):
    """The pipe-transport kill invariant holds across sockets: a worker
    SIGKILLed mid-batch disconnects, is replaced, its in-flight requests
    requeue, and the batch completes bit-identically."""
    requests, reference = reference_traces
    monkeypatch.setenv(CHAOS_DELAY_ENV, "40")
    with ProcessBackend(
        TransparentLLM(seed=11), workers=2, transport="unix"
    ) as backend:
        assert len(backend.ping()) == 2
        victim = backend.worker_pids()[0]
        timer = threading.Timer(0.2, os.kill, (victim, signal.SIGKILL))
        timer.start()
        try:
            traces = backend.generate(requests)
        finally:
            timer.cancel()
        stats = backend.stats
    assert len(traces) == len(requests)  # nothing lost
    for a, b in zip(reference, traces):
        assert_traces_equal(a, b)  # nothing duplicated or reordered
    assert stats.n_restarts >= 1
    assert stats.n_requeued >= 1
    assert stats.n_duplicate_results == 0
    assert wait_for_exit(victim)


def test_socket_workers_heartbeat():
    with ProcessBackend(
        TransparentLLM(seed=11), workers=1, transport="unix", heartbeat_s=0.05
    ) as backend:
        backend.start()
        deadline = time.monotonic() + 5.0
        while backend.stats.n_heartbeats < 2 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert backend.stats.n_heartbeats >= 2


def test_external_repro_worker_joins_an_accept_only_supervisor(table_instances):
    """workers=0 over TCP: the supervisor serves no local workers and
    waits for a ``repro-worker --connect`` to dial in — generations then
    run on the external worker, byte-identically."""
    import subprocess
    import sys
    from pathlib import Path

    import repro.runtime.remote as remote_module

    backend = ProcessBackend(TransparentLLM(seed=11), workers=0, transport="tcp")
    proc = None
    try:
        backend.start()
        address = backend.address
        assert address is not None and address.startswith("tcp:")
        assert backend.worker_pids() == []  # accept-only: nothing spawned
        env = dict(os.environ)
        src_root = str(Path(remote_module.__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing else f"{src_root}{os.pathsep}{existing}"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.remote", "--connect", address],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        requests = mixed_requests(table_instances[:2])
        traces = backend.generate(requests)
        reference = SimulatorBackend(TransparentLLM(seed=11)).generate(requests)
        for a, b in zip(reference, traces):
            assert_traces_equal(a, b)
        stats = backend.stats
        assert stats.n_external == 1
        assert stats.n_alive == 1
        assert backend.worker_pids() == [proc.pid]
    finally:
        backend.close()
        if proc is not None:
            try:
                proc.wait(timeout=10)  # EOF from close() ends the worker
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


# -- CLI byte-identity --------------------------------------------------------


def test_run_cli_process_backend_matches_simulator_summary(tmp_path, capsys, monkeypatch):
    from repro.runtime.cli import main

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    args = [
        "--benchmark", "bird",
        "--split", "dev",
        "--task", "table",
        "--scale", "tiny",
        "--limit", "2",
        "--workers", "2",
    ]
    assert main([*args, "--backend", "simulator"]) == 0
    simulator = json.loads(capsys.readouterr().out)
    log_dir = tmp_path / "worker-logs"
    assert main([*args, "--backend", "process", "--worker-log-dir", str(log_dir)]) == 0
    process = json.loads(capsys.readouterr().out)
    assert process["backend"] == "process"
    assert simulator["summary"] == process["summary"]
    assert sorted(log_dir.glob("worker-*.log"))  # logs captured via the CLI


# -- SLO hardening: deadlines, draining, fleet auth ---------------------------


def test_deadline_expiry_disowns_without_duplicates(table_instances, monkeypatch):
    """A request past --request-timeout-s fails with DeadlineExceeded;
    the in-flight generation is disowned (not requeued, not restarted)
    and its late result is absorbed without counting as a duplicate."""
    from repro.runtime.service import DeadlineExceeded, deadline_scope

    monkeypatch.setenv(CHAOS_DELAY_ENV, "200")
    with ProcessBackend(
        TransparentLLM(seed=11), workers=1, request_timeout_s=0.05
    ) as backend:
        with pytest.raises(DeadlineExceeded) as info:
            backend.generate([GenerationRequest(FREE, table_instances[0])])
        assert info.value.timeout_s == 0.05
        # The worker is still sane: an undeadlined follow-up on the same
        # (single) worker queues behind the disowned generation and
        # completes byte-identically.
        with deadline_scope(None):
            traces = backend.generate([GenerationRequest(FREE, table_instances[1])])
        assert_traces_equal(
            traces[0], TransparentLLM(seed=11).generate(table_instances[1])
        )
        stats = backend.stats
    assert stats.n_deadline_exceeded == 1
    assert stats.n_duplicate_results == 0  # the late result was absorbed
    assert stats.n_requeued == 0  # disowned, never re-dispatched
    assert stats.n_restarts == 0  # the worker was never punished


def test_drain_during_burst_finishes_inflight_with_zero_requeues(
    reference_traces, monkeypatch
):
    """drain(worker_id) mid-burst: the drained worker finishes what it
    holds, new dispatch avoids it, a replacement spawns outside the
    restart budget, and the batch completes bit-identically with zero
    requeues and zero duplicates."""
    requests, reference = reference_traces
    monkeypatch.setenv(CHAOS_DELAY_ENV, "40")
    with ProcessBackend(
        TransparentLLM(seed=11), workers=2, transport="unix"
    ) as backend:
        assert len(backend.ping()) == 2
        victim_index = backend.worker_snapshot()[0]["index"]
        victim_pid = backend.worker_pids()[0]
        drained: list = []
        timer = threading.Timer(0.2, lambda: drained.append(backend.drain(victim_index)))
        timer.start()
        try:
            traces = backend.generate(requests)
        finally:
            timer.cancel()
        assert drained == [True]
        deadline = time.monotonic() + 10.0
        while backend.stats.n_drained < 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        stats = backend.stats
        snapshot = backend.worker_snapshot()
    assert len(traces) == len(requests)
    for a, b in zip(reference, traces):
        assert_traces_equal(a, b)  # nothing lost, duplicated, or reordered
    assert stats.n_drained == 1
    assert stats.n_requeued == 0  # graceful: in-flight work finished in place
    assert stats.n_duplicate_results == 0
    assert stats.n_restarts == 0  # the rotation spent no restart budget
    assert stats.n_spawned == 3  # 2 initial + 1 replacement
    assert victim_index not in [entry["index"] for entry in snapshot]
    assert wait_for_exit(victim_pid)


def test_drain_rejects_unknown_worker_id():
    with ProcessBackend(TransparentLLM(seed=11), workers=1) as backend:
        backend.start()
        assert backend.drain(worker_id=999) is False


def test_sigterm_drains_an_external_socket_worker(table_instances):
    """SIGTERM to repro-worker = graceful drain: it announces draining,
    finishes in-flight work, and exits 0 once the supervisor releases it
    — zero requeues. The worker authenticates via $REPRO_FLEET_TOKEN."""
    import subprocess
    import sys
    from pathlib import Path

    import repro.runtime.remote as remote_module
    from repro.runtime.service import FLEET_TOKEN_ENV

    backend = ProcessBackend(
        TransparentLLM(seed=11), workers=0, transport="tcp", fleet_token="s3cret"
    )
    proc = None
    try:
        backend.start()
        address = backend.address
        env = dict(os.environ)
        src_root = str(Path(remote_module.__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else f"{src_root}{os.pathsep}{existing}"
        )
        env[FLEET_TOKEN_ENV] = "s3cret"  # env fallback for --fleet-token
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.remote", "--connect", address],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        requests = mixed_requests(table_instances[:2])
        traces = backend.generate(requests)
        reference = SimulatorBackend(TransparentLLM(seed=11)).generate(requests)
        for a, b in zip(reference, traces):
            assert_traces_equal(a, b)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=15) == 0  # polite shutdown, not a kill
        deadline = time.monotonic() + 10.0
        while backend.stats.n_drained < 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        stats = backend.stats
        assert stats.n_drained == 1
        assert stats.n_requeued == 0
        assert stats.n_alive == 0
    finally:
        backend.close()
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait()


def test_fleet_token_gates_external_hellos():
    """Wrong or missing fleet tokens are rejected at hello with a
    goodbye frame and a closed channel; the right token gets init."""
    from repro.runtime.remote import SocketTransport, connect_address

    backend = ProcessBackend(
        TransparentLLM(seed=11), workers=0, transport="tcp", fleet_token="s3cret"
    )
    try:
        backend.start()
        address = backend.address

        def hello(token) -> SocketTransport:
            transport = SocketTransport(connect_address(address))
            transport.send(
                {
                    "op": "hello",
                    "pid": os.getpid(),
                    "host": "test",
                    "token": token,
                    "capabilities": {"kinds": [FREE, FORCED]},
                }
            )
            return transport

        for bad in ("wrong", None):
            transport = hello(bad)
            reply = transport.recv()
            assert reply is not None and reply["op"] == "goodbye"
            assert "fleet token" in reply["reason"]
            assert transport.recv() is None  # channel closed behind it
            transport.close()
        assert backend.stats.n_rejected_hellos == 2
        assert backend.stats.n_alive == 0  # nothing joined

        transport = hello("s3cret")
        init = transport.recv()
        assert init is not None and init["op"] == "init"
        transport.close()
    finally:
        backend.close()


def test_fleet_token_does_not_block_supervisor_spawned_workers(table_instances):
    """Locally-spawned workers authenticate with one-shot spawn tokens,
    so turning on --fleet-token never breaks the supervisor's own fleet."""
    with ProcessBackend(
        TransparentLLM(seed=11), workers=1, transport="unix", fleet_token="s3cret"
    ) as backend:
        assert len(backend.ping()) == 1
        traces = backend.generate([GenerationRequest(FREE, table_instances[0])])
        assert_traces_equal(
            traces[0], TransparentLLM(seed=11).generate(table_instances[0])
        )


# -- shared-memory data plane --------------------------------------------------


def test_shm_data_plane_engages_and_stays_byte_identical(reference_traces):
    requests, reference = reference_traces
    with ProcessBackend(TransparentLLM(seed=11), workers=2) as backend:
        traces = backend.generate(requests)
        stats = backend.stats
    assert stats.n_shm_results > 0, f"arena never engaged: {stats}"
    assert stats.n_shm_bytes > 0
    for want, got in zip(reference, traces):
        assert_traces_equal(got, want)
        assert got.hidden_matrix().tobytes() == want.hidden_matrix().tobytes()


def test_shm_disabled_backend_is_inline_and_identical(reference_traces):
    requests, reference = reference_traces
    with ProcessBackend(
        TransparentLLM(seed=11), workers=2, shared_memory=False
    ) as backend:
        traces = backend.generate(requests)
        stats = backend.stats
    assert stats.n_shm_results == 0 and stats.n_shm_bytes == 0
    for want, got in zip(reference, traces):
        assert_traces_equal(got, want)


def test_worker_side_arena_opt_out_falls_back_inline(
    reference_traces, monkeypatch
):
    monkeypatch.setenv(SHM_ARENA_ENV, "0")  # workers offer no arena at all
    requests, reference = reference_traces
    with ProcessBackend(TransparentLLM(seed=11), workers=1) as backend:
        traces = backend.generate(requests)
        stats = backend.stats
    assert stats.n_shm_results == 0 and stats.n_shm_bytes == 0
    for want, got in zip(reference, traces):
        assert_traces_equal(got, want)


def test_tiny_arena_falls_back_per_result(reference_traces, monkeypatch):
    """Payloads that don't fit the arena ship inline, bit-identically."""
    monkeypatch.setenv(SHM_ARENA_ENV, "4096")  # below every trace payload
    requests, reference = reference_traces
    with ProcessBackend(TransparentLLM(seed=11), workers=1) as backend:
        traces = backend.generate(requests)
        stats = backend.stats
    assert stats.n_shm_results == 0, f"oversized payload used the arena: {stats}"
    for want, got in zip(reference, traces):
        assert_traces_equal(got, want)


def test_shm_kill_one_worker_mid_batch_loses_nothing(
    reference_traces, monkeypatch
):
    """Crash recovery under the shm data plane: the in-flight work of a
    SIGKILLed worker requeues and every result stays byte-identical."""
    monkeypatch.setenv(CHAOS_DELAY_ENV, "40")
    requests, reference = reference_traces
    with ProcessBackend(TransparentLLM(seed=11), workers=2) as backend:
        victim = backend.ping()[0]
        threading.Timer(0.2, os.kill, (victim, signal.SIGKILL)).start()
        traces = backend.generate(requests)
        stats = backend.stats
    assert len(traces) == len(reference)
    for want, got in zip(reference, traces):
        assert_traces_equal(got, want)
        assert got.hidden_matrix().tobytes() == want.hidden_matrix().tobytes()
    assert stats.n_restarts >= 1 and stats.n_requeued >= 1
    assert stats.n_duplicate_results == 0
