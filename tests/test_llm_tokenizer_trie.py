"""Tests for the tokenizer (lossless subwords) and the decoding trie."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.llm.tokenizer import (
    EOS,
    MAX_PIECE,
    SEP,
    detokenize,
    tokenize_identifier,
    tokenize_items,
)
from repro.llm.trie import ItemTrie

identifiers = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,14}", fullmatch=True)


class TestTokenizer:
    @pytest.mark.parametrize(
        "name,tokens",
        [
            ("lapTimes", ("lap", "Times")),
            ("L_TMS", ("L", "_", "TMS")),
            ("races", ("races",)),
            ("lap_times", ("lap", "_", "times")),
        ],
    )
    def test_examples(self, name, tokens):
        assert tokenize_identifier(name) == tokens

    def test_long_pieces_chunked(self):
        for tok in tokenize_identifier("milliseconds"):
            assert len(tok) <= MAX_PIECE

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tokenize_identifier("")

    @given(identifiers)
    @settings(max_examples=200, deadline=None)
    def test_lossless(self, name):
        assert "".join(tokenize_identifier(name)) == name

    @given(st.lists(identifiers, min_size=1, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_items_roundtrip(self, items):
        assert detokenize(tokenize_items(items)) == items

    def test_item_stream_layout(self):
        stream = tokenize_items(["races", "drivers"])
        assert stream[-1] == EOS
        assert SEP in stream

    def test_detokenize_keeps_partial_tail(self):
        assert detokenize(("lap", "Times")) == ["lapTimes"]

    def test_detokenize_stops_at_eos(self):
        assert detokenize(("a", EOS, "b")) == ["a"]


class TestTrie:
    @pytest.fixture
    def trie(self):
        return ItemTrie(["races", "race_days", "drivers"])

    def test_valid_prefix(self, trie):
        assert trie.valid_prefix(("race",))
        assert trie.valid_prefix(())
        assert not trie.valid_prefix(("xyz",))

    def test_next_tokens(self, trie):
        nxt = trie.next_tokens(("race",))
        assert "_" in nxt  # race_days continues with '_'

    def test_completed_item(self, trie):
        assert trie.completed_item(tokenize_identifier("races")) == "races"
        assert trie.completed_item(("race",)) is None

    def test_completions(self, trie):
        comps = set(trie.completions(("race",)))
        assert comps == {"race_days"}
        assert set(trie.completions(())) == {"races", "race_days", "drivers"}

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            ItemTrie([])

    def test_all_generated_item_tokens_walk_the_trie(self, bird_tiny):
        for pdb in bird_tiny.databases.values():
            names = [t.name for t in pdb.schema.tables]
            trie = ItemTrie(names)
            for name in names:
                tokens = tokenize_identifier(name)
                for i in range(len(tokens) + 1):
                    assert trie.valid_prefix(tokens[:i])
                assert trie.completed_item(tokens) == name
