"""Tests for repro-lint, the AST-based invariant analyzer.

Pins down the tentpole guarantees:

* each checker catches its seeded-violation fixture with exactly the
  expected rule, and passes the matching clean fixture;
* ``# repro-lint: ignore[rule] reason`` suppresses (same line or the
  standalone line above), and a reasonless suppression is itself a
  finding;
* baselines round-trip: ``--write-baseline`` then ``--baseline``
  silences exactly the recorded findings, and fingerprints survive
  line-number shifts;
* the CLI speaks text/json/github, exits 0/1/2 correctly, and
  ``repro-lint src/repro`` runs clean on the real tree — the same
  self-check CI gates on.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cli import main_lint
from repro.analysis.core import Finding, LintConfig, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]

# Fixture configs open the zone gates so snippets land inside them.
ALL_ZONES = LintConfig(deterministic_zones=("",), exception_zones=("",))


def run_lint(tmp_path: Path, source: str, config: LintConfig = ALL_ZONES, name: str = "snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([path], config=config, root=tmp_path)


def rules_of(findings) -> "set[str]":
    return {finding.rule for finding in findings}


# -- determinism ---------------------------------------------------------------


class TestDeterminism:
    def test_wall_clock_and_entropy_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import os
            import random
            import time
            import uuid

            def stamp():
                a = time.time()
                b = random.random()
                c = uuid.uuid4()
                d = os.urandom(8)
                return a, b, c, d
            """,
        )
        assert rules_of(findings) == {"determinism"}
        assert len(findings) == 4

    def test_unseeded_default_rng_flagged_seeded_ok(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import numpy as np

            def make():
                bad = np.random.default_rng()
                good = np.random.default_rng(1234)
                gen = np.random.Generator(np.random.PCG64(7))
                return bad, good, gen
            """,
        )
        assert rules_of(findings) == {"determinism"}
        assert len(findings) == 1
        assert "default_rng" in findings[0].message

    def test_global_numpy_rng_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import numpy as np

            def shuffle(items):
                np.random.shuffle(items)
            """,
        )
        assert rules_of(findings) == {"determinism"}

    def test_unsorted_listing_flagged_sorted_ok(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import os
            from pathlib import Path

            def bad(d):
                return [name for name in os.listdir(d)]

            def bad_glob(d):
                for p in Path(d).glob("*.jsonl"):
                    yield p

            def good(d):
                return sorted(os.listdir(d))

            def good_set(d):
                return len(set(os.listdir(d)))
            """,
        )
        assert rules_of(findings) == {"determinism"}
        assert len(findings) == 2
        assert all("sorted" in finding.message for finding in findings)

    def test_zone_gating(self, tmp_path):
        # The same snippet outside every deterministic zone is clean.
        config = LintConfig(deterministic_zones=("repro/llm/",))
        findings = run_lint(tmp_path, "import time\nx = time.time()\n", config)
        assert findings == []


# -- lock discipline -----------------------------------------------------------

LOCKED_CLASS = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._n = 0  # guarded-by: self._lock

        def bump(self):
            with self._lock:
                self._n += 1

        def read(self):
            return self._n

        def _bump_locked(self):  # caller holds self._lock
            self._n += 1
"""


class TestLockDiscipline:
    def test_unlocked_access_flagged(self, tmp_path):
        findings = run_lint(tmp_path, LOCKED_CLASS)
        assert rules_of(findings) == {"lock-discipline"}
        assert len(findings) == 1
        assert findings[0].symbol == "Counter.read._n"

    def test_with_lock_and_caller_holds_pass(self, tmp_path):
        source = LOCKED_CLASS.replace(
            "        def read(self):\n            return self._n\n", ""
        )
        findings = run_lint(tmp_path, source)
        assert findings == []

    def test_nested_def_does_not_inherit_lock(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import threading

            class Spawner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._fleet = []  # guarded-by: self._lock

                def start(self):
                    with self._lock:
                        def reader():
                            return list(self._fleet)  # runs on another thread
                        threading.Thread(target=reader).start()
            """,
        )
        assert rules_of(findings) == {"lock-discipline"}

    def test_non_self_guard_is_documentation_only(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            class Worker:
                def __init__(self):
                    self.dead = False  # guarded-by: Supervisor._lock

                def mark(self):
                    self.dead = True  # the supervisor's lock is not ours to check
            """,
        )
        assert findings == []

    def test_init_exempt(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import threading

            class Plain:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: self._lock
                    self._n += 1  # still __init__: unshared, exempt
            """,
        )
        assert findings == []


# -- lifecycle -----------------------------------------------------------------


class TestLifecycle:
    def test_bare_construction_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            def boot():
                ctx = ExperimentContext("run")
                return ctx.seed
            """,
        )
        assert rules_of(findings) == {"lifecycle"}
        assert findings[0].symbol == "ExperimentContext"

    def test_with_and_finally_close_pass(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            def good_with():
                with ExperimentContext("run") as ctx:
                    return ctx.seed

            def good_finally():
                ctx = ExperimentContext("run")
                try:
                    return ctx.seed
                finally:
                    ctx.close()

            def good_return():
                return ExperimentContext("run")

            def good_handoff(registry):
                svc = GenerationService.build(llm=None)
                registry.adopt(svc)

            def good_attr(self):
                self.backend = ProcessBackend(llm=None)
            """,
        )
        assert findings == []

    def test_classmethod_factory_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            def boot():
                ctx = ExperimentContext.default()
                ctx.benchmark("spider")
            """,
        )
        assert rules_of(findings) == {"lifecycle"}

    def test_unrelated_classes_ignored(self, tmp_path):
        findings = run_lint(tmp_path, "def f():\n    x = Widget()\n    x.spin()\n")
        assert findings == []


# -- ipc protocol --------------------------------------------------------------

IPC_MODULE = """
    class ProcessBackend:
        def ping(self, transport):
            transport.send({"op": "ping"})

        def on_message(self, message):
            if message.get("op") == "pong":
                return True
            return False

    def worker_main(recv, send):
        while True:
            message = recv()
            op = message.get("op")
            if op == "ping":
                send({"op": "pong"})
"""


class TestIpcProtocol:
    def test_matched_vocabulary_clean(self, tmp_path):
        findings = run_lint(tmp_path, IPC_MODULE)
        assert findings == []

    def test_sent_but_unhandled_flagged(self, tmp_path):
        source = IPC_MODULE + """
    class ShmBackend(ProcessBackend):
        def free(self, transport):
            transport.send({"op": "arena_free"})
"""
        findings = run_lint(tmp_path, source)
        assert rules_of(findings) == {"ipc-protocol"}
        assert "arena_free" in findings[0].message
        assert "never matched" in findings[0].message

    def test_dead_handler_arm_flagged(self, tmp_path):
        source = IPC_MODULE.replace(
            'if op == "ping":',
            'if op in ("ping", "shutdown"):',
        )
        findings = run_lint(tmp_path, source)
        assert rules_of(findings) == {"ipc-protocol"}
        assert "shutdown" in findings[0].message
        assert "dead protocol arm" in findings[0].message

    def test_one_sided_module_ignored(self, tmp_path):
        # A module that only builds {"op": ...} dicts is not an IPC module.
        findings = run_lint(
            tmp_path,
            """
            def payload():
                return {"op": "whatever"}
            """,
        )
        assert findings == []


# -- exception hygiene ---------------------------------------------------------


class TestExceptionHygiene:
    def test_silent_swallow_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            def risky(task):
                try:
                    task()
                except Exception:
                    pass
            """,
        )
        assert rules_of(findings) == {"exception-hygiene"}

    def test_bare_except_flagged(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            def risky(task):
                try:
                    task()
                except:
                    return None
            """,
        )
        assert rules_of(findings) == {"exception-hygiene"}
        assert "bare except" in findings[0].message

    def test_traced_handlers_pass(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import traceback

            class Stats:
                def a(self, task):
                    try:
                        task()
                    except Exception:
                        raise RuntimeError("wrapped")

                def b(self, task):
                    try:
                        task()
                    except Exception:
                        self._n_errors += 1

                def c(self, task):
                    try:
                        task()
                    except Exception:
                        traceback.print_exc()

                def d(self, task, future):
                    try:
                        task()
                    except BaseException as exc:
                        future.set_exception(exc)
            """,
        )
        assert findings == []

    def test_narrow_handlers_ignored(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            def narrow(task):
                try:
                    task()
                except (OSError, ValueError):
                    pass
            """,
        )
        assert findings == []

    def test_zone_gating(self, tmp_path):
        config = LintConfig(exception_zones=("repro/runtime/",))
        findings = run_lint(
            tmp_path,
            "def f(t):\n    try:\n        t()\n    except Exception:\n        pass\n",
            config,
        )
        assert findings == []


# -- suppressions --------------------------------------------------------------


class TestSuppression:
    def test_inline_suppression_with_reason(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()  # repro-lint: ignore[determinism] operator-facing uptime only
            """,
        )
        assert findings == []

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import time

            def stamp():
                # repro-lint: ignore[determinism] operator-facing uptime only
                return time.time()
            """,
        )
        assert findings == []

    def test_reasonless_suppression_is_a_finding(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()  # repro-lint: ignore[determinism]
            """,
        )
        assert rules_of(findings) == {"suppression"}

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()  # repro-lint: ignore[lifecycle] wrong rule
            """,
        )
        assert rules_of(findings) == {"determinism"}


# -- baseline ------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_silences_exactly_the_recorded_findings(self, tmp_path):
        source = textwrap.dedent(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        snippet = tmp_path / "snippet.py"
        snippet.write_text(source, encoding="utf-8")
        findings = lint_paths([snippet], config=ALL_ZONES, root=tmp_path)
        assert len(findings) == 1

        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        fingerprints = load_baseline(baseline)
        assert fingerprints == {findings[0].fingerprint()}

        # Shift the finding down two lines: the fingerprint must hold.
        snippet.write_text("# moved\n# down\n" + source, encoding="utf-8")
        moved = lint_paths([snippet], config=ALL_ZONES, root=tmp_path)
        assert len(moved) == 1
        assert moved[0].line != findings[0].line
        assert moved[0].fingerprint() == findings[0].fingerprint()

        # A *new* violation is not covered by the old baseline.
        snippet.write_text(source + "\ndef stamp2():\n    return time.time()\n")
        grown = lint_paths([snippet], config=ALL_ZONES, root=tmp_path)
        fresh = [f for f in grown if f.fingerprint() not in fingerprints]
        assert len(grown) == 2 and len(fresh) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(bad)


# -- CLI -----------------------------------------------------------------------


class TestCli:
    # Lifecycle is not zone-gated, so the violation fires under the
    # CLI's default config no matter where tmp_path lives.
    def _violating_file(self, tmp_path) -> Path:
        path = tmp_path / "snippet.py"
        path.write_text(
            "def boot():\n    ctx = ExperimentContext('run')\n    ctx.ping()\n",
            encoding="utf-8",
        )
        return path

    def test_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main_lint([str(clean)]) == 0
        assert main_lint([str(self._violating_file(tmp_path))]) == 1
        assert main_lint([str(tmp_path / "missing.py")]) == 2
        assert main_lint(["--rules", "made-up", str(clean)]) == 2
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        path = self._violating_file(tmp_path)
        assert main_lint([str(path), "--format", "json", "--root", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "lifecycle"
        assert payload[0]["path"] == "snippet.py"
        assert payload[0]["fingerprint"]

    def test_github_format(self, tmp_path, capsys):
        path = self._violating_file(tmp_path)
        assert main_lint([str(path), "--format", "github", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=snippet.py,line=2,")
        assert "title=repro-lint[lifecycle]" in out

    def test_write_then_check_baseline(self, tmp_path, capsys):
        path = self._violating_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main_lint([str(path), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert main_lint([str(path), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_rules_subset(self, tmp_path, capsys):
        path = self._violating_file(tmp_path)
        assert main_lint([str(path), "--rules", "determinism"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main_lint(["--list-rules"]) == 0
        out = capsys.readouterr().out
        rules = ("determinism", "lock-discipline", "lifecycle", "ipc-protocol", "exception-hygiene")
        for rule in rules:
            assert rule in out

    def test_parse_error_exit_2(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n", encoding="utf-8")
        assert main_lint([str(path)]) == 2
        assert "parse-error" in capsys.readouterr().out


# -- the self-check CI gates on ------------------------------------------------


class TestSelfCheck:
    def test_real_tree_is_clean(self, capsys):
        src = REPO_ROOT / "src" / "repro"
        assert src.is_dir()
        code = main_lint([str(src), "--root", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert code == 0, f"repro-lint found regressions:\n{out}"

    def test_real_ipc_module_has_both_sides(self):
        # Guard against the ipc checker silently disengaging from
        # remote.py (e.g. the role heuristic drifting): it must see
        # traffic on both sides, including the shm data-plane ops.
        from repro.analysis.ipc import _collect
        from repro.analysis.core import SourceFile

        remote = REPO_ROOT / "src" / "repro" / "runtime" / "remote.py"
        source = SourceFile.load(remote, "src/repro/runtime/remote.py")
        sent, handled = _collect(source, ("Backend", "Supervisor"))
        assert "generate" in sent["supervisor"]
        assert "arena_free" in sent["supervisor"]
        assert "result" in sent["worker"]
        assert "hello" in sent["worker"]
        assert "generate" in handled["worker"]
        assert "result" in handled["supervisor"]
