"""Tests for the downstream SQL generator: profiles, corruption, EX."""

import numpy as np
import pytest

from repro.sqlgen.corruption import corrupt_query
from repro.sqlgen.evaluate import evaluate_text2sql, full_schema, golden_schema
from repro.sqlgen.generator import SqlGenerator
from repro.sqlgen.profiles import CHESS, CODES_15B, DEEPSEEK_7B
from repro.sqlengine.executor import Executor


class TestProfiles:
    def test_success_decreases_with_difficulty(self, bird_tiny):
        by_difficulty = {}
        for e in bird_tiny.dev:
            p = DEEPSEEK_7B.success_probability(e, 0)
            by_difficulty.setdefault(e.difficulty, []).append(p)
        if "simple" in by_difficulty and "challenging" in by_difficulty:
            assert np.mean(by_difficulty["simple"]) > np.mean(
                by_difficulty["challenging"]
            )

    def test_distraction_monotone(self):
        assert DEEPSEEK_7B.distraction(0) == 0.0
        assert DEEPSEEK_7B.distraction(40) > DEEPSEEK_7B.distraction(5)


class TestCorruption:
    def test_corrupted_differs_and_executes(self, bird_tiny):
        executor = Executor(bird_tiny.databases)
        rng = np.random.default_rng(0)
        changed = executed = total = 0
        for e in bird_tiny.dev:
            db = bird_tiny.database(e.db_id).schema
            corrupted = corrupt_query(e.query, db, rng)
            total += 1
            if corrupted.render() != e.gold_sql:
                changed += 1
            if executor.execute(e.db_id, corrupted.render()).ok:
                executed += 1
        executor.close()
        assert changed == total  # corruption must change the query
        assert executed / total > 0.9  # and almost always stay executable

    def test_missing_table_falls_back(self, bird_tiny):
        e = bird_tiny.dev.examples[0]
        db = bird_tiny.database(e.db_id).schema
        other_tables = [
            t.name for t in db.tables if t.name.lower() not in
            {x.lower() for x in e.gold_tables}
        ]
        if not other_tables:
            pytest.skip("gold uses every table")
        provided = db.subset(other_tables[:1])
        corrupted = corrupt_query(e.query, provided, np.random.default_rng(1))
        assert set(corrupted.tables_used()) <= {t.name for t in provided.tables}


class TestGenerator:
    def test_impossible_without_gold_tables(self, bird_tiny):
        gen = SqlGenerator(DEEPSEEK_7B, seed=0)
        e = bird_tiny.dev.examples[0]
        db = bird_tiny.database(e.db_id).schema
        non_gold = [
            t.name for t in db.tables
            if t.name.lower() not in {x.lower() for x in e.gold_tables}
        ]
        if not non_gold:
            pytest.skip("gold uses every table")
        provided = db.subset(non_gold)
        assert gen.success_probability(e, provided) == 0.0
        sql = gen.generate(e, provided)
        assert sql != e.gold_sql

    def test_deterministic(self, bird_tiny):
        gen = SqlGenerator(DEEPSEEK_7B, seed=5)
        e = bird_tiny.dev.examples[0]
        db = bird_tiny.database(e.db_id).schema
        assert gen.generate(e, db) == gen.generate(e, db)

    def test_golden_schema_counts_extras_correctly(self, bird_tiny):
        e = bird_tiny.dev.examples[0]
        db = bird_tiny.database(e.db_id).schema
        golden = golden_schema(e, db)
        extras_golden = SqlGenerator.extra_columns(e, golden)
        extras_full = SqlGenerator.extra_columns(e, db)
        assert extras_golden < extras_full


class TestEvaluation:
    def test_golden_beats_full_schema(self, bird_tiny):
        golden = evaluate_text2sql(bird_tiny, "dev", golden_schema, CHESS, seed=21)
        full = evaluate_text2sql(bird_tiny, "dev", full_schema, CHESS, seed=21)
        assert golden.execution_accuracy >= full.execution_accuracy

    def test_report_counts(self, bird_tiny):
        report = evaluate_text2sql(
            bird_tiny, "dev", golden_schema, DEEPSEEK_7B, seed=21, limit=5
        )
        assert report.n == 5
        assert 0 <= report.n_correct <= 5

    def test_profiles_distinct_names(self):
        assert len({p.name for p in (DEEPSEEK_7B, CODES_15B, CHESS)}) == 3
