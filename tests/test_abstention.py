"""Tests for Algorithm 2 trace-back, the surrogate filter, and the human
oracle."""

import pytest

from repro.abstention.human import BEGINNER, EXPERT, HumanOracle, HumanProfile
from repro.abstention.traceback import trace_back
from repro.core.pipeline import RTSPipeline
from repro.llm.errors import ErrorEvent
from repro.llm.model import GenerationSession

from helpers import make_instance, make_racing_db


@pytest.fixture(scope="module")
def db():
    return make_racing_db()


class TestTraceBack:
    def walk_to_branching(self, session):
        while True:
            step = session.propose()
            if step.is_branching:
                return step
            session.commit()

    def test_substitution_traces_to_distractor(self, llm, db):
        inst = make_instance(db, ("races",), instance_id="tb1/table")
        s = GenerationSession(llm, inst, [ErrorEvent(0, "substitute", "pit_stops")])
        self.walk_to_branching(s)
        result = trace_back(s)
        assert result.items == ("pit_stops",)
        assert not result.hit_eos

    def test_insertion_traces_to_spurious(self, llm, db):
        inst = make_instance(db, ("races", "drivers"), instance_id="tb2/table")
        s = GenerationSession(llm, inst, [ErrorEvent(1, "insert", "pit_stops")])
        self.walk_to_branching(s)
        result = trace_back(s)
        assert result.items == ("pit_stops",)

    def test_eos_omission_returns_last_item(self, llm, db):
        inst = make_instance(db, ("races", "drivers"), instance_id="tb3/table")
        s = GenerationSession(llm, inst, [ErrorEvent(1, "omit")])
        self.walk_to_branching(s)  # proposal EOS where gold wants SEP
        result = trace_back(s)
        assert result.hit_eos
        assert result.items == ("races",)  # paper's T[-1:] interpretation

    def test_traceback_does_not_commit(self, llm, db):
        inst = make_instance(db, ("races",), instance_id="tb4/table")
        s = GenerationSession(llm, inst, [ErrorEvent(0, "substitute", "pit_stops")])
        self.walk_to_branching(s)
        before = s.n_committed
        trace_back(s)
        assert s.n_committed == before

    def test_requires_pending_branching_context(self, llm, db):
        inst = make_instance(db, ("races",), instance_id="tb5/table")
        s = GenerationSession(llm, inst, [])
        s.propose()
        result = trace_back(s)  # not branching, still well-defined
        assert result.items == ("races",)


class TestSurrogate:
    def test_accuracy_in_paper_band(self, surrogate_tiny, bird_tiny):
        instances = [
            RTSPipeline.instance_for(e, bird_tiny, "table") for e in bird_tiny.dev
        ]
        acc = surrogate_tiny.accuracy(instances)
        assert 0.80 <= acc <= 1.0

    def test_judges_gold_item_relevant_usually(self, surrogate_tiny, bird_tiny):
        hits = total = 0
        for e in bird_tiny.dev:
            inst = RTSPipeline.instance_for(e, bird_tiny, "table")
            if inst.gold_items:
                hits += surrogate_tiny.judge(inst, inst.gold_items[:1])
                total += 1
        assert hits / total > 0.8

    def test_empty_set_is_relevant(self, surrogate_tiny, bird_tiny):
        inst = RTSPipeline.instance_for(bird_tiny.dev.examples[0], bird_tiny, "table")
        assert surrogate_tiny.judge(inst, ())

    def test_unfitted_raises(self, bird_tiny):
        from repro.abstention.surrogate import SurrogateFilter

        inst = RTSPipeline.instance_for(bird_tiny.dev.examples[0], bird_tiny, "table")
        with pytest.raises(RuntimeError):
            SurrogateFilter().relevance_prob(inst, inst.candidates[0])

    def test_judgement_deterministic(self, surrogate_tiny, bird_tiny):
        inst = RTSPipeline.instance_for(bird_tiny.dev.examples[0], bird_tiny, "table")
        item = inst.candidates[0]
        assert surrogate_tiny.judge(inst, (item,)) == surrogate_tiny.judge(inst, (item,))

    def test_column_head_trained_too(self, surrogate_tiny, bird_tiny):
        inst = RTSPipeline.instance_for(bird_tiny.dev.examples[0], bird_tiny, "column")
        p = surrogate_tiny.relevance_prob(inst, inst.candidates[0])
        assert 0.0 <= p <= 1.0


class TestHumanOracle:
    def make_inst(self, bird_tiny, difficulty):
        for e in bird_tiny.dev:
            if e.difficulty == difficulty:
                return RTSPipeline.instance_for(e, bird_tiny, "table")
        pytest.skip(f"no {difficulty} example in tiny benchmark")

    def test_simple_questions_always_correct(self, bird_tiny):
        inst = self.make_inst(bird_tiny, "simple")
        oracle = HumanOracle(BEGINNER, seed=1)
        for i in range(50):
            answer = oracle.confirm_relevance(inst, inst.gold_items[:1], i)
            assert answer is True
        assert oracle.answer_accuracy == 1.0

    def test_expert_beats_beginner_on_challenging(self, bird_tiny):
        inst = self.make_inst(bird_tiny, "challenging")
        results = {}
        for profile in (BEGINNER, EXPERT):
            oracle = HumanOracle(profile, seed=2)
            correct = sum(
                oracle.confirm_relevance(inst, inst.gold_items[:1], i) is True
                for i in range(400)
            )
            results[profile.name] = correct
        assert results["expert"] >= results["beginner"]

    def test_irrelevant_item_detected(self, bird_tiny):
        inst = self.make_inst(bird_tiny, "simple")
        non_gold = next(c for c in inst.candidates if c not in inst.gold_items)
        oracle = HumanOracle(EXPERT, seed=3)
        assert oracle.confirm_relevance(inst, (non_gold,), 0) is False

    def test_unknown_difficulty_raises(self):
        profile = HumanProfile("p", {"simple": 1.0}, {"simple": 1.0})
        with pytest.raises(KeyError):
            profile.accuracy("table", "impossible")

    def test_question_counter(self, bird_tiny):
        inst = self.make_inst(bird_tiny, "simple")
        oracle = HumanOracle(EXPERT, seed=4)
        oracle.confirm_relevance(inst, inst.gold_items[:1], 0)
        oracle.confirm_relevance(inst, inst.gold_items[:1], 1)
        assert oracle.questions_asked == 2
