"""Tests for sharded sweeps and the persistent generation cache.

Pins down the tentpole guarantees:

* shard plans are a pure function of the spec (same spec → same shards);
* the persistent store survives interleaved concurrent writers and
  rehydrates traces bit-exactly;
* an interrupted shard resumes to the same merged output;
* a sweep split into N shards merges byte-identically to the unsharded
  run, and a warm re-run performs zero new LLM generations.
"""

from __future__ import annotations

import json
import threading

import pytest

from helpers import assert_traces_equal, make_trace

from repro.llm.model import SIMULATOR_VERSION, TransparentLLM
from repro.runtime.cache import CacheStats, CachingLLM
from repro.runtime.persist import (
    PersistentGenerationCache,
    generation_namespace,
    trace_from_record,
    trace_to_record,
)
from repro.runtime.sweep import (
    STATS_NAME,
    SUMMARY_NAME,
    ShardPlan,
    SweepRunner,
    SweepSpec,
    merge_sweep,
    run_sweep,
)

TINY_SPEC = SweepSpec(
    benchmarks=("bird",),
    splits=("dev",),
    tasks=("table",),
    modes=("abstain", "human"),
    seeds=(3,),
    scale="tiny",
    limit=4,
)


# (make_trace / assert_traces_equal live in helpers.py, shared with the
# service tests.)


# -- spec and shard plan ------------------------------------------------------


def test_spec_expansion_is_deterministic():
    spec = SweepSpec(
        benchmarks=("bird", "spider"),
        splits=("dev", "test"),
        tasks=("table", "joint"),
        modes=("abstain",),
        seeds=(3, 5),
    )
    ids = [u.unit_id for u in spec.units()]
    assert len(ids) == 16 and len(set(ids)) == 16
    assert ids == [u.unit_id for u in spec.units()]  # stable across calls
    assert ids[0] == "bird-dev-table-abstain-s3"
    assert spec.digest() == spec.digest()


def test_spec_roundtrip_and_digest():
    restored = SweepSpec.from_dict(json.loads(json.dumps(TINY_SPEC.to_dict())))
    assert restored == TINY_SPEC
    assert restored.digest() == TINY_SPEC.digest()
    assert restored.digest() != SweepSpec(limit=5).digest()


def test_spec_validates_axes():
    with pytest.raises(ValueError, match="benchmarks"):
        SweepSpec(benchmarks=("postgres",))
    with pytest.raises(ValueError, match="modes"):
        SweepSpec(modes=("yolo",))
    with pytest.raises(ValueError, match="scale"):
        SweepSpec(scale="huge")
    with pytest.raises(ValueError, match="non-empty"):
        SweepSpec(splits=())


def test_shard_plan_determinism_and_coverage():
    spec = SweepSpec(
        benchmarks=("bird", "spider"), modes=("abstain", "human", "surrogate")
    )
    for count in (1, 2, 3, 4, 7):
        plan = ShardPlan(spec, count)
        again = ShardPlan(spec, count)
        assert plan.shards() == again.shards()  # same spec -> same shards
        flat = [u for shard in plan.shards() for u in shard]
        assert sorted(u.unit_id for u in flat) == sorted(
            u.unit_id for u in spec.units()
        )
        sizes = [len(s) for s in plan.shards()]
        assert max(sizes) - min(sizes) <= 1  # round-robin balance
    with pytest.raises(ValueError):
        ShardPlan(spec, 0)
    with pytest.raises(ValueError):
        ShardPlan(spec, 2).shard(2)


# -- cache stats arithmetic ---------------------------------------------------


def test_cache_stats_arithmetic():
    a = CacheStats(hits=2, misses=1, disk_hits=3)
    b = CacheStats(hits=1, misses=1)
    assert a + b == CacheStats(hits=3, misses=2, disk_hits=3)
    assert (a + b) - b == a
    assert a.lookups == 6
    assert a.hit_rate == pytest.approx(5 / 6)
    assert CacheStats.total([a.as_dict(), b, None]) == a + b
    assert CacheStats.zero().hit_rate == 0.0


# -- trace serialization ------------------------------------------------------


def test_trace_record_roundtrip_is_exact():
    trace = make_trace("roundtrip", n_steps=4)
    payload = json.loads(json.dumps(trace_to_record(trace), sort_keys=True))
    assert_traces_equal(trace_from_record(payload), trace)


def test_trace_roundtrip_from_real_llm(bird_tiny):
    from repro.core.pipeline import RTSPipeline

    llm = TransparentLLM(seed=11)
    instance = RTSPipeline.instance_for(bird_tiny.dev.examples[0], bird_tiny, "table")
    for trace in (llm.generate(instance), llm.teacher_forced_trace(instance)):
        restored = trace_from_record(json.loads(json.dumps(trace_to_record(trace))))
        assert_traces_equal(restored, trace)


# -- persistent cache ---------------------------------------------------------


def test_persistent_cache_shares_across_instances(tmp_path):
    first = PersistentGenerationCache(tmp_path, namespace="ns")
    trace = make_trace("shared")
    computed = first.get_or_compute(("free", "k1"), lambda: trace)
    assert computed is trace
    assert first.stats == CacheStats(hits=0, misses=1, disk_hits=0)

    second = PersistentGenerationCache(tmp_path, namespace="ns")
    loaded = second.get_or_compute(
        ("free", "k1"), lambda: pytest.fail("must not recompute")
    )
    assert_traces_equal(loaded, trace)
    assert second.stats == CacheStats(hits=0, misses=0, disk_hits=1)
    # Second lookup is served from memory.
    second.get_or_compute(("free", "k1"), lambda: pytest.fail("must not recompute"))
    assert second.stats == CacheStats(hits=1, misses=0, disk_hits=1)


def test_persistent_cache_namespaces_do_not_alias(tmp_path):
    a = PersistentGenerationCache(tmp_path, namespace="llm-a")
    a.get_or_compute(("free", "k"), lambda: make_trace("a"))
    b = PersistentGenerationCache(tmp_path, namespace="llm-b")
    fresh = make_trace("b")
    assert b.get_or_compute(("free", "k"), lambda: fresh) is fresh
    assert b.stats.misses == 1 and b.stats.disk_hits == 0


def test_persistent_cache_tolerates_truncated_segment(tmp_path):
    cache = PersistentGenerationCache(tmp_path, namespace="ns")
    cache.get_or_compute(("free", "k1"), lambda: make_trace("ok"))
    cache.close()
    segment = next((tmp_path / "ns").glob("*.jsonl"))
    # Simulate a writer killed mid-append: a dangling half record.
    with segment.open("a") as handle:
        handle.write('{"k": "dead", "v": {"instance')

    reader = PersistentGenerationCache(tmp_path, namespace="ns")
    loaded = reader.get_or_compute(
        ("free", "k1"), lambda: pytest.fail("complete entry must survive")
    )
    assert loaded.instance_id == "inst-ok"
    assert reader.stats.disk_hits == 1


def test_persistent_cache_concurrent_writers(tmp_path):
    """Interleaved writers (two instances × many threads) never corrupt."""
    writers = [PersistentGenerationCache(tmp_path, namespace="ns") for _ in range(2)]
    errors = []

    def work(writer, offset):
        try:
            for i in range(25):
                key = ("free", f"k{offset + i}")
                writer.get_or_compute(key, lambda k=key: make_trace(k[1]))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=work, args=(writers[t % 2], 25 * (t // 2)))
        for t in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    for writer in writers:
        writer.close()

    reader = PersistentGenerationCache(tmp_path, namespace="ns")
    assert reader.disk_entries() == 100
    for i in (0, 42, 99):
        loaded = reader.get_or_compute(
            ("free", f"k{i}"), lambda: pytest.fail("must be on disk")
        )
        assert_traces_equal(loaded, make_trace(f"k{i}"))
    assert reader.stats.misses == 0


def test_persistent_cache_compact_dedupes(tmp_path):
    import shutil

    cache = PersistentGenerationCache(tmp_path, namespace="ns")
    for i in range(4):
        cache.get_or_compute(("free", f"k{i}"), lambda i=i: make_trace(f"k{i}"))
    cache.close()
    namespace_dir = tmp_path / "ns"
    segment = next(namespace_dir.glob("*.jsonl"))
    # Two racing writers that both computed the same keys (the store
    # tolerates duplicates; compaction folds them away).
    shutil.copy(segment, namespace_dir / "w-999-dup.jsonl")
    assert len(list(namespace_dir.glob("*.jsonl"))) == 2

    compactor = PersistentGenerationCache(tmp_path, namespace="ns")
    assert compactor.compact() == 4
    assert len(list(namespace_dir.glob("*.jsonl"))) == 1
    reader = PersistentGenerationCache(tmp_path, namespace="ns")
    assert reader.disk_entries() == 4
    loaded = reader.get_or_compute(("free", "k2"), lambda: pytest.fail("on disk"))
    assert_traces_equal(loaded, make_trace("k2"))


def test_persistent_cache_clear_resets_all_counters(tmp_path):
    cache = PersistentGenerationCache(tmp_path, namespace="ns")
    cache.get_or_compute(("free", "k"), lambda: make_trace("x"))
    cache.get_or_compute(("free", "k"), lambda: pytest.fail("memoized"))
    assert cache.stats.lookups == 2
    cache.clear()
    assert cache.stats == CacheStats.zero()
    # Disk entries survive a clear (eviction = deleting the directory).
    reloaded = cache.get_or_compute(("free", "k"), lambda: pytest.fail("on disk"))
    assert reloaded.instance_id == "inst-x"
    assert cache.stats == CacheStats(hits=0, misses=0, disk_hits=1)


def test_persistent_cache_pickles_to_fresh_store_view(tmp_path):
    import pickle

    cache = PersistentGenerationCache(tmp_path, namespace="ns")
    cache.get_or_compute(("free", "k"), lambda: make_trace("pickled"))
    clone = pickle.loads(pickle.dumps(cache))
    assert clone.cache_dir == cache.cache_dir and clone.namespace == "ns"
    loaded = clone.get_or_compute(("free", "k"), lambda: pytest.fail("on disk"))
    assert loaded.instance_id == "inst-pickled"


def test_caching_llm_over_persistent_store(bird_tiny, tmp_path):
    from repro.core.pipeline import RTSPipeline

    instance = RTSPipeline.instance_for(bird_tiny.dev.examples[0], bird_tiny, "table")
    base = TransparentLLM(seed=11)
    namespace = generation_namespace(SIMULATOR_VERSION, base.config, base.seed)

    warm = CachingLLM(base, cache=PersistentGenerationCache(tmp_path, namespace))
    expected = warm.generate(instance)
    assert warm.stats.misses == 1

    class NoGenerate(TransparentLLM):
        def generate(self, instance):  # pragma: no cover - must not run
            raise AssertionError("generation must come from the store")

    cold = CachingLLM(
        NoGenerate(seed=11), cache=PersistentGenerationCache(tmp_path, namespace)
    )
    assert_traces_equal(cold.generate(instance), expected)
    assert cold.stats == CacheStats(hits=0, misses=0, disk_hits=1)


# -- sweep execution, resume, merge -------------------------------------------


@pytest.fixture(scope="module")
def sweep_dirs(tmp_path_factory):
    """A cold 2-shard sweep and a warm unsharded one over a shared cache."""
    root = tmp_path_factory.mktemp("sweep")
    cache_dir = root / "gen-cache"
    sharded = root / "sharded"
    for shard_index in range(2):  # separate runners = separate cold processes
        SweepRunner(TINY_SPEC, sharded, cache_dir=cache_dir).run_shard(shard_index, 2)
    merge_sweep(sharded)

    unsharded = root / "unsharded"
    warm_manifest = SweepRunner(TINY_SPEC, unsharded, cache_dir=cache_dir).run_shard()
    merge_sweep(unsharded)
    return {
        "root": root,
        "cache_dir": cache_dir,
        "sharded": sharded,
        "unsharded": unsharded,
        "warm_manifest": warm_manifest,
    }


def test_sharded_merge_is_byte_identical_to_unsharded(sweep_dirs):
    sharded = (sweep_dirs["sharded"] / SUMMARY_NAME).read_bytes()
    unsharded = (sweep_dirs["unsharded"] / SUMMARY_NAME).read_bytes()
    assert sharded == unsharded


def test_warm_sweep_performs_zero_new_generations(sweep_dirs):
    stats = sweep_dirs["warm_manifest"]["runtime"]["generation_cache"]
    assert stats["misses"] == 0
    assert stats["disk_hits"] > 0
    assert stats["hit_rate"] == 1.0


def test_merge_aggregates_fleet_wide_cache_stats(sweep_dirs):
    stats = json.loads((sweep_dirs["sharded"] / STATS_NAME).read_text())
    fleet = stats["generation_cache"]
    per_shard = [
        shard["generation_cache"] for shard in stats["shards"].values()
    ]
    assert len(per_shard) == 2
    assert fleet["hits"] == sum(s["hits"] for s in per_shard)
    assert fleet["misses"] == sum(s["misses"] for s in per_shard)
    assert fleet["disk_hits"] == sum(s["disk_hits"] for s in per_shard)
    # The cold shard computed everything the other shard then reused.
    assert fleet["misses"] > 0 and fleet["disk_hits"] > 0


def test_unit_stats_sidecars_carry_cache_deltas(sweep_dirs):
    """Cache deltas live in *.stats.json; *.summary.json stays pure."""
    unit_dir = sweep_dirs["unsharded"] / "units"
    stats_files = sorted(unit_dir.glob("*.stats.json"))
    assert len(stats_files) == len(TINY_SPEC.units())
    for stats_file in stats_files:
        payload = json.loads(stats_file.read_text())
        assert payload["generation_cache"]["misses"] >= 0
    for summary_file in unit_dir.glob("*.summary.json"):
        assert "generation_cache" not in json.loads(summary_file.read_text())


def test_unit_summaries_byte_stable_across_cache_warmth(sweep_dirs):
    """Warm/cold runs of the same unit write identical summary files."""
    cold = sweep_dirs["sharded"] / "units"
    warm = sweep_dirs["unsharded"] / "units"
    summaries = sorted(p.name for p in cold.glob("*.summary.json"))
    assert summaries
    for name in summaries:
        assert (cold / name).read_bytes() == (warm / name).read_bytes()


def test_interrupted_shard_resumes_to_identical_merge(sweep_dirs, tmp_path):
    """Kill a shard mid-unit; re-running converges to the same bytes."""
    cache_dir = sweep_dirs["cache_dir"]
    out = tmp_path / "resumed"
    runner = SweepRunner(TINY_SPEC, out, cache_dir=cache_dir)
    runner.run_shard(0, 1)

    # Simulate the interrupt: keep 2 records of one unit, drop the rest,
    # including every manifest (the shard never finished).
    unit = runner.unit_artifact(TINY_SPEC.units()[0])
    lines = unit.read_text().splitlines(keepends=True)
    unit.write_text("".join(lines[:2]))
    manifest_path = runner.shard_manifest_path(0, 1)
    manifest_path.unlink()
    (out / SUMMARY_NAME).unlink(missing_ok=True)

    resumed = SweepRunner(TINY_SPEC, out, cache_dir=cache_dir).run_shard(0, 1)
    unit_id = TINY_SPEC.units()[0].unit_id
    assert resumed["runtime"]["units"][unit_id]["n_resumed"] == 2
    merge_sweep(out)
    reference = (sweep_dirs["unsharded"] / SUMMARY_NAME).read_bytes()
    assert (out / SUMMARY_NAME).read_bytes() == reference


def test_merge_rejects_incomplete_and_mixed_shards(sweep_dirs, tmp_path):
    out = tmp_path / "partial"
    SweepRunner(TINY_SPEC, out, cache_dir=sweep_dirs["cache_dir"]).run_shard(0, 2)
    with pytest.raises(ValueError, match="coverage"):
        merge_sweep(out)  # shard 1 of 2 never ran
    with pytest.raises(FileNotFoundError):
        merge_sweep(tmp_path / "nowhere")


def test_run_sweep_convenience_matches_reference(sweep_dirs, tmp_path):
    out = tmp_path / "convenience"
    merged = run_sweep(
        TINY_SPEC, out, cache_dir=sweep_dirs["cache_dir"], shard_count=3
    )
    assert merged["summary"]["n_units"] == len(TINY_SPEC.units())
    reference = (sweep_dirs["unsharded"] / SUMMARY_NAME).read_bytes()
    assert (out / SUMMARY_NAME).read_bytes() == reference


def test_memory_only_sweep_matches_persistent(sweep_dirs, tmp_path):
    """cache_dir is an optimization, never an outcome-changer."""
    out = tmp_path / "memory-only"
    SweepRunner(TINY_SPEC, out).run_shard()
    merge_sweep(out)
    reference = (sweep_dirs["unsharded"] / SUMMARY_NAME).read_bytes()
    assert (out / SUMMARY_NAME).read_bytes() == reference


# -- CLI ----------------------------------------------------------------------


def test_sweep_cli_plan_run_merge(tmp_path, capsys):
    from repro.runtime.cli import main_sweep

    axes = [
        "--benchmarks", "bird",
        "--splits", "dev",
        "--tasks", "table",
        "--modes", "abstain",
        "--seeds", "3",
        "--scale", "tiny",
        "--limit", "3",
    ]
    assert main_sweep(["plan", *axes, "--shard-count", "2"]) == 0
    plan = json.loads(capsys.readouterr().out)
    assert plan["n_units"] == 1
    assert plan["shards"]["shard-0"] == ["bird-dev-table-abstain-s3"]
    assert plan["shards"]["shard-1"] == []

    out = tmp_path / "cli-sweep"
    cache = tmp_path / "cli-cache"
    run_args = ["run", *axes, "--out", str(out), "--cache-dir", str(cache)]
    assert main_sweep(run_args) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["runtime"]["generation_cache"]["misses"] > 0

    assert main_sweep(["merge", "--out", str(out)]) == 0
    merged = json.loads(capsys.readouterr().out)
    assert merged["summary"]["n_units"] == 1
    assert (out / SUMMARY_NAME).exists()

    # Warm CLI re-run into a fresh out dir: everything from the store.
    out2 = tmp_path / "cli-sweep-warm"
    assert main_sweep(["run", *axes, "--out", str(out2), "--cache-dir", str(cache)]) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["runtime"]["generation_cache"]["misses"] == 0


def test_sweep_cli_rejects_out_of_range_shard_index(tmp_path, capsys):
    from repro.runtime.cli import main_sweep

    for bad in ("2", "-1"):
        with pytest.raises(SystemExit) as excinfo:
            main_sweep(
                ["run", "--shard-index", bad, "--shard-count", "2",
                 "--out", str(tmp_path / "never")]
            )
        assert excinfo.value.code == 2  # argparse usage error, no traceback
        assert "out of range" in capsys.readouterr().err
