"""Tests for the SQLite execution substrate."""

import pytest

from repro.corpus.generator import CorpusScale, DatabaseFactory
from repro.schema.naming import NamingStyle
from repro.sqlengine.accuracy import ExecutionEvaluator
from repro.sqlengine.comparator import normalize_row, results_match
from repro.sqlengine.executor import ExecutionResult, Executor
from repro.sqlengine.materialize import materialize


@pytest.fixture(scope="module")
def pdb():
    factory = DatabaseFactory(seed=3, style=NamingStyle.SNAKE, scale=CorpusScale.tiny())
    return factory.build_database(0)


class TestMaterialize:
    def test_all_rows_inserted(self, pdb):
        conn = materialize(pdb)
        for table in pdb.schema.tables:
            count = conn.execute(f'SELECT COUNT(*) FROM "{table.name}"').fetchone()[0]
            assert count == len(pdb.rows[table.name])
        conn.close()

    def test_queryable_with_joins(self, pdb):
        conn = materialize(pdb)
        db = pdb.schema
        child = next(t for t in db.tables if t.foreign_keys)
        fk = child.foreign_keys[0]
        rows = conn.execute(
            f'SELECT COUNT(*) FROM "{child.name}" c JOIN "{fk.ref_table}" p '
            f'ON c."{fk.column}" = p."{fk.ref_column}"'
        ).fetchone()
        assert rows[0] >= 0
        conn.close()


class TestExecutor:
    def test_error_captured_not_raised(self, pdb):
        ex = Executor({pdb.name: pdb})
        result = ex.execute(pdb.name, "SELECT nonsense FROM nowhere")
        assert not result.ok
        assert "no such table" in result.error
        ex.close()

    def test_unknown_database_raises(self, pdb):
        ex = Executor({pdb.name: pdb})
        with pytest.raises(KeyError):
            ex.execute("missing_db", "SELECT 1")

    def test_connection_cached(self, pdb):
        ex = Executor({pdb.name: pdb})
        c1 = ex.connection(pdb.name)
        c2 = ex.connection(pdb.name)
        assert c1 is c2
        ex.close()

    def test_context_manager_closes(self, pdb):
        with Executor({pdb.name: pdb}) as ex:
            assert ex.execute(pdb.name, "SELECT 1").rows == ((1,),)

    def test_result_invariant(self):
        with pytest.raises(ValueError):
            ExecutionResult(ok=True, error="boom")


class TestComparator:
    def ok(self, *rows):
        return ExecutionResult(ok=True, rows=tuple(rows))

    def test_unordered_multiset_match(self):
        a = self.ok((1, "x"), (2, "y"))
        b = self.ok((2, "y"), (1, "x"))
        assert results_match(a, b, ordered=False)
        assert not results_match(a, b, ordered=True)

    def test_multiset_counts_matter(self):
        a = self.ok((1,), (1,), (2,))
        b = self.ok((1,), (2,), (2,))
        assert not results_match(a, b, ordered=False)

    def test_float_tolerance(self):
        a = self.ok((1.0000001,))
        b = self.ok((1.0,))
        assert results_match(a, b, ordered=True)

    def test_int_float_unification(self):
        assert normalize_row((2.0, True)) == (2, 1)

    def test_failed_execution_never_matches(self):
        bad = ExecutionResult(ok=False, error="x")
        good = self.ok((1,))
        assert not results_match(bad, good, ordered=False)
        assert not results_match(good, bad, ordered=False)

    def test_row_count_mismatch(self):
        assert not results_match(self.ok((1,)), self.ok((1,), (1,)), ordered=False)


class TestExecutionEvaluator:
    def test_gold_vs_gold_is_perfect(self, bird_tiny):
        evaluator = ExecutionEvaluator(bird_tiny.databases)
        pairs = [(e, e.gold_sql) for e in bird_tiny.dev]
        report = evaluator.evaluate(pairs)
        assert report.execution_accuracy == 100.0
        assert report.n_errors == 0
        evaluator.close()

    def test_broken_sql_scores_zero(self, bird_tiny):
        evaluator = ExecutionEvaluator(bird_tiny.databases)
        example = bird_tiny.dev.examples[0]
        outcome = evaluator.evaluate_one(example, "SELECT * FROM missing_table")
        assert not outcome.correct
        assert outcome.predicted_error is not None
        evaluator.close()

    def test_report_empty(self):
        from repro.sqlengine.accuracy import ExecutionReport
        import math

        assert math.isnan(ExecutionReport().execution_accuracy)
