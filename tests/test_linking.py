"""Tests for linking instances, metrics, and D_branch construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import RTSPipeline
from repro.linking.dataset import collect_branch_dataset
from repro.linking.instance import (
    SchemaLinkingInstance,
    column_item,
    parse_column_item,
)
from repro.linking.linker import SchemaLinker
from repro.linking.metrics import evaluate_linking, exact_match, precision_recall

from helpers import make_instance, make_racing_db


class TestInstances:
    def test_for_tables_gold_in_canonical_order(self, bird_tiny):
        example = bird_tiny.dev.examples[0]
        db = bird_tiny.database(example.db_id).schema
        inst = SchemaLinkingInstance.for_tables(example, db)
        order = {name: i for i, name in enumerate(db.table_names)}
        indices = [order[g] for g in inst.gold_items]
        assert indices == sorted(indices)

    def test_for_columns_universe(self, bird_tiny):
        example = bird_tiny.dev.examples[0]
        db = bird_tiny.database(example.db_id).schema
        inst = SchemaLinkingInstance.for_columns(example, db)
        assert len(inst.candidates) == db.n_columns
        assert all("." in c for c in inst.candidates)

    def test_for_columns_restricted(self, bird_tiny):
        example = bird_tiny.dev.examples[0]
        db = bird_tiny.database(example.db_id).schema
        first = db.tables[0].name
        inst = SchemaLinkingInstance.for_columns(example, db, restrict_tables=(first,))
        assert all(parse_column_item(c)[0] == first for c in inst.candidates)

    def test_column_item_roundtrip(self):
        assert parse_column_item(column_item("t", "c")) == ("t", "c")
        with pytest.raises(ValueError):
            parse_column_item("plain")

    def test_gold_must_be_candidate(self):
        db = make_racing_db()
        with pytest.raises(ValueError):
            SchemaLinkingInstance(
                instance_id="x/table",
                db=db,
                question="q",
                features=make_instance(db, ("races",)).features,
                task="table",
                candidates=("races",),
                gold_items=("drivers",),
            )

    def test_unknown_task_rejected(self, racing_db):
        inst = make_instance(racing_db, ("races",))
        with pytest.raises(ValueError):
            SchemaLinkingInstance(
                instance_id="x/other",
                db=racing_db,
                question="q",
                features=inst.features,
                task="other",
                candidates=("races",),
                gold_items=("races",),
            )


class TestMetrics:
    def test_exact_match_case_insensitive(self):
        assert exact_match(["Races"], ["races"])

    def test_precision_recall_hand_case(self):
        p, r = precision_recall(["a", "b"], ["b", "c"])
        assert p == 0.5 and r == 0.5

    def test_empty_prediction_precision_one(self):
        p, r = precision_recall(["a"], [])
        assert p == 1.0 and r == 0.0

    def test_evaluate_linking_aggregates(self):
        m = evaluate_linking([(["a"], ["a"]), (["a", "b"], ["a"])])
        assert m.exact_match == 0.5
        assert m.n == 2

    def test_empty_input(self):
        import math

        m = evaluate_linking([])
        assert math.isnan(m.exact_match)

    @given(
        st.lists(
            st.sets(st.sampled_from("abcdef"), min_size=1, max_size=4),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_perfect_prediction_is_perfect(self, golds):
        pairs = [(sorted(g), sorted(g)) for g in golds]
        m = evaluate_linking(pairs)
        assert m.exact_match == 1.0
        assert m.precision == 1.0
        assert m.recall == 1.0

    @given(
        st.sets(st.sampled_from("abcdef"), min_size=1, max_size=5),
        st.sets(st.sampled_from("abcdef"), min_size=0, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_em_implies_perfect_pr(self, gold, pred):
        if exact_match(gold, pred):
            p, r = precision_recall(gold, pred)
            assert p == 1.0 and r == 1.0


class TestBranchDataset:
    @pytest.fixture(scope="class")
    def dataset(self, llm, bird_tiny):
        instances = [
            RTSPipeline.instance_for(e, bird_tiny, "table")
            for e in bird_tiny.train
        ]
        return collect_branch_dataset(llm, instances)

    def test_alignment(self, dataset):
        assert dataset.hidden.shape[0] == dataset.n_tokens
        assert len(dataset.labels) == len(dataset.groups) == dataset.n_tokens

    def test_layer_extraction(self, dataset):
        layer0 = dataset.layer(0)
        assert layer0.shape == (dataset.n_tokens, dataset.hidden.shape[2])

    def test_split_by_group_disjoint(self, dataset):
        rng = np.random.default_rng(0)
        a, b = dataset.split_by_group(0.5, rng)
        assert a.n_tokens + b.n_tokens == dataset.n_tokens
        assert not set(np.unique(a.groups)) & set(np.unique(b.groups))

    def test_split_fraction_validated(self, dataset):
        with pytest.raises(ValueError):
            dataset.split_by_group(0.0, np.random.default_rng(0))

    def test_branching_counts_nonnegative(self, dataset):
        counts = dataset.branching_counts_per_generation()
        assert (counts >= 0).all()
        assert counts.sum() == dataset.labels.sum()

    def test_positive_rate_small_but_nonzero(self, dataset):
        assert 0.0 < dataset.positive_rate < 0.5


class TestSchemaLinker:
    def test_correct_without_errors(self, llm, racing_db):
        inst = make_instance(racing_db, ("races",), instance_id="clean/table")
        linker = SchemaLinker(llm)
        # This particular instance may or may not draw an error; assert
        # the API contract instead: items decode to candidates.
        pred = linker.predict(inst)
        assert all(item in inst.candidates for item in pred.items)

    def test_evaluate_returns_metrics(self, llm, bird_tiny):
        instances = [
            RTSPipeline.instance_for(e, bird_tiny, "table")
            for e in bird_tiny.dev.examples[:8]
        ]
        metrics = SchemaLinker(llm).evaluate(instances)
        assert 0.0 <= metrics.exact_match <= 1.0
        assert metrics.n == 8
