"""Setuptools entry point.

Kept alongside pyproject.toml so ``pip install -e .`` works in offline
environments whose setuptools lacks PEP 660 wheel support.
"""

from setuptools import setup

setup()
