"""Table 2: baseline schema-linking model performance (no abstention)."""

from __future__ import annotations

from repro.experiments.common import DATASETS, ExperimentContext, ExperimentResult
from repro.linking.linker import SchemaLinker

PAPER = {
    ("Bird", "Table"): (79.70, 92.85, 95.00),
    ("Bird", "Column"): (75.32, 89.87, 88.79),
    ("Spider-dev", "Table"): (93.71, 98.17, 96.95),
    ("Spider-dev", "Column"): (88.98, 94.41, 94.09),
    ("Spider-test", "Table"): (92.72, 97.64, 96.74),
    ("Spider-test", "Column"): (87.99, 92.21, 93.02),
}


def run(ctx: ExperimentContext) -> ExperimentResult:
    linker = SchemaLinker(ctx.llm)
    rows = []
    paper_rows = []
    for display, name, split in DATASETS:
        for task, label in (("table", "Table"), ("column", "Column")):
            metrics = linker.evaluate(ctx.instances(name, split, task))
            em, p, r = metrics.as_row()
            rows.append([label, display, em, p, r])
            pem, pp, pr = PAPER[(display, label)]
            paper_rows.append([label, display, pem, pp, pr])
    return ExperimentResult(
        experiment_id="Table 2",
        title="Schema linking model performance",
        headers=["Type", "Dataset", "Exact Match (%)", "Precision (%)", "Recall (%)"],
        rows=rows,
        paper_rows=paper_rows,
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
