"""Figure 6: coverage vs. extra abstention rate across error levels.

For each alpha, the per-layer conformal thresholds are re-calibrated
(probes are reused) and the mBPP is evaluated on the BIRD dev traces.
The paper's claims: empirical coverage envelopes the theoretical
guarantee at every alpha, stays nearly flat for small alpha, and EAR
falls as alpha grows.
"""

from __future__ import annotations

from repro.conformal.aggregate import majority_guarantee
from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.probes.metrics import evaluate_bpp

ALPHAS = (0.02, 0.05, 0.10, 0.15, 0.20, 0.30)


def sweep(ctx: ExperimentContext, task: str, alphas=ALPHAS) -> list[list]:
    """(alpha, coverage, EAR, guarantee) rows for one task."""
    pipe = ctx.pipeline("bird")
    dataset = ctx.branch_dataset("bird", "dev", task)
    base = pipe.mbpp(task)
    rows = []
    for alpha in alphas:
        mbpp = base.with_alpha(alpha)
        ev = evaluate_bpp(mbpp, dataset)
        rows.append(
            [alpha, ev.coverage, ev.ear, majority_guarantee(alpha, theta=0.5)]
        )
    return rows


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    for task, label in (("table", "Table"), ("column", "Column")):
        for alpha, coverage, ear, guarantee in sweep(ctx, task):
            rows.append([label, alpha, coverage, ear, guarantee])
    return ExperimentResult(
        experiment_id="Figure 6",
        title="Coverage vs EAR per error level (BIRD; mBPP, k=5, permutation)",
        headers=["Type", "alpha", "Coverage", "EAR", "Guarantee (1 - 2a)"],
        rows=rows,
        paper_rows=None,
        notes=(
            "The paper's figure is qualitative; the reproduction claim is "
            "coverage >= the aggregated guarantee at every alpha, with EAR "
            "decreasing in alpha. Checked by tests and visible in the rows."
        ),
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
