"""Shared experiment infrastructure.

:class:`ExperimentContext` memoizes the expensive artifacts — benchmarks,
the simulated LLM, fitted RTS pipelines, surrogate filters, joint linking
outcomes — so the thirteen experiment runners can share them within one
process (the report runner and the benchmark suite rely on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.abstention.human import BEGINNER, EXPERT, HumanOracle, HumanProfile
from repro.abstention.surrogate import SurrogateFilter
from repro.corpus.bird import BirdBuilder
from repro.corpus.dataset import Benchmark
from repro.corpus.generator import CorpusScale
from repro.corpus.spider import SpiderBuilder
from repro.core.config import RTSConfig
from repro.core.pipeline import RTSPipeline
from repro.core.results import JointOutcome
from repro.linking.instance import SchemaLinkingInstance
from repro.llm.model import TransparentLLM
from repro.utils.tabulate import render_table

__all__ = ["ExperimentContext", "ExperimentResult", "DATASETS"]

# (display name, benchmark name, split) triples used across tables.
DATASETS = (
    ("Bird", "bird", "dev"),
    ("Spider-dev", "spider", "dev"),
    ("Spider-test", "spider", "test"),
)


@dataclass
class ExperimentResult:
    """A rendered experiment: rows we measured, next to the paper's."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    paper_rows: "list[list] | None" = None
    notes: str = ""

    def render(self) -> str:
        parts = [
            render_table(
                self.headers, self.rows, title=f"{self.experiment_id}: {self.title}"
            )
        ]
        if self.paper_rows:
            parts.append("")
            parts.append(
                render_table(self.headers, self.paper_rows, title="Paper reports")
            )
        if self.notes:
            parts.append("")
            parts.append(f"Note: {self.notes}")
        return "\n".join(parts)

    def to_markdown(self) -> str:
        def md_table(rows: list[list]) -> str:
            head = "| " + " | ".join(self.headers) + " |"
            sep = "|" + "|".join("---" for _ in self.headers) + "|"
            body = [
                "| "
                + " | ".join(
                    f"{v:.2f}" if isinstance(v, float) else str(v) for v in row
                )
                + " |"
                for row in rows
            ]
            return "\n".join([head, sep, *body])

        parts = [f"### {self.experiment_id}: {self.title}", "", "Measured:", "", md_table(self.rows)]
        if self.paper_rows:
            parts += ["", "Paper:", "", md_table(self.paper_rows)]
        if self.notes:
            parts += ["", f"_Note: {self.notes}_"]
        return "\n".join(parts)


class ExperimentContext:
    """Shared, memoized state for the experiment runners."""

    def __init__(
        self,
        corpus_seed: int = 7,
        llm_seed: int = 11,
        rts_seed: int = 3,
        scale: "CorpusScale | None" = None,
    ):
        self.corpus_seed = corpus_seed
        self.llm_seed = llm_seed
        self.rts_seed = rts_seed
        self.scale = scale or CorpusScale.small()
        self._benchmarks: dict[str, Benchmark] = {}
        self._pipelines: dict[str, RTSPipeline] = {}
        self._surrogates: dict[str, SurrogateFilter] = {}
        self._joint: dict[tuple, list[JointOutcome]] = {}
        self._llm: "TransparentLLM | None" = None

    @classmethod
    def tiny(cls) -> "ExperimentContext":
        """A fast context for tests and benchmark timing."""
        return cls(scale=CorpusScale.tiny())

    # -- artifacts ----------------------------------------------------------

    @property
    def llm(self) -> TransparentLLM:
        if self._llm is None:
            self._llm = TransparentLLM(seed=self.llm_seed)
        return self._llm

    def benchmark(self, name: str) -> Benchmark:
        if name not in self._benchmarks:
            builder = {
                "bird": BirdBuilder(seed=self.corpus_seed, scale=self.scale),
                "spider": SpiderBuilder(seed=self.corpus_seed, scale=self.scale),
            }[name]
            self._benchmarks[name] = builder.build()
        return self._benchmarks[name]

    def pipeline(self, name: str) -> RTSPipeline:
        if name not in self._pipelines:
            pipe = RTSPipeline(self.llm, RTSConfig(seed=self.rts_seed))
            pipe.fit_benchmark(self.benchmark(name))
            self._pipelines[name] = pipe
        return self._pipelines[name]

    def surrogate(self, name: str) -> SurrogateFilter:
        if name not in self._surrogates:
            bench = self.benchmark(name)
            self._surrogates[name] = SurrogateFilter(seed=5).fit(
                list(bench.train), bench.databases
            )
        return self._surrogates[name]

    def instances(
        self, name: str, split: str, task: str
    ) -> "list[SchemaLinkingInstance]":
        bench = self.benchmark(name)
        return [
            RTSPipeline.instance_for(example, bench, task)
            for example in bench.split(split)
        ]

    def human(self, profile: HumanProfile = EXPERT, seed: int = 9) -> HumanOracle:
        return HumanOracle(profile, seed=seed)

    def joint_outcomes(
        self,
        name: str,
        split: str = "dev",
        profile: HumanProfile = EXPERT,
        limit: "int | None" = None,
    ) -> "list[JointOutcome]":
        key = (name, split, profile.name, limit)
        if key not in self._joint:
            bench = self.benchmark(name)
            pipe = self.pipeline(name)
            human = self.human(profile)
            examples = list(bench.split(split))
            if limit is not None:
                examples = examples[:limit]
            self._joint[key] = [
                pipe.link_joint(e, bench, mode="human", human=human)
                for e in examples
            ]
        return self._joint[key]
