"""Shared experiment infrastructure.

:class:`ExperimentContext` memoizes the expensive artifacts — benchmarks,
the simulated LLM, fitted RTS pipelines, surrogate filters, branch
datasets, linking outcomes — so the thirteen experiment runners can share
them within one process (the report runner and the benchmark suite rely
on this). All bulk evaluation routes through the
:class:`~repro.runtime.runner.BatchRunner` returned by :meth:`runner`,
and the LLM is a :class:`~repro.runtime.cache.CachingLLM` adapter over
a :class:`~repro.runtime.service.GenerationService`, so repeated
generations across tables/figures are computed once and the execution
backend is swappable (``gen_backend="simulator"`` for direct in-process
calls, ``"async"`` for microbatch-coalescing asyncio scheduling,
``"process"`` for crash-isolated worker subprocesses — all
byte-identical by construction).

With ``cache_dir`` (or the ``REPRO_CACHE_DIR`` environment variable via
:meth:`ExperimentContext.default`), the service's cache tiers include a
:class:`~repro.runtime.persist.PersistentGenerationCache`: generations
spill to disk and every driver, sweep shard and re-run sharing that
directory reuses them instead of recomputing (O(1) cold lookups once
``repro-cache compact`` has built the SQLite index tier).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.abstention.human import EXPERT, HumanOracle, HumanProfile
from repro.abstention.surrogate import SurrogateFilter
from repro.corpus.bird import BirdBuilder
from repro.corpus.dataset import Benchmark
from repro.corpus.generator import CorpusScale
from repro.corpus.spider import SpiderBuilder
from repro.core.config import ABSTAIN, RTSConfig
from repro.core.pipeline import RTSPipeline
from repro.core.results import JointOutcome, LinkOutcome
from repro.linking.dataset import BranchDataset
from repro.linking.instance import SchemaLinkingInstance
from repro.llm.model import TransparentLLM
from repro.runtime.cache import CachingLLM, GenerationCache
from repro.runtime.pool import THREAD, WorkerPool
from repro.runtime.runner import BatchRunner
from repro.runtime.service import BackendSpec, GenerationService
from repro.utils.tabulate import render_table

__all__ = ["ExperimentContext", "ExperimentResult", "DATASETS"]

# (display name, benchmark name, split) triples used across tables.
DATASETS = (
    ("Bird", "bird", "dev"),
    ("Spider-dev", "spider", "dev"),
    ("Spider-test", "spider", "test"),
)


@dataclass
class ExperimentResult:
    """A rendered experiment: rows we measured, next to the paper's."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    paper_rows: "list[list] | None" = None
    notes: str = ""

    def render(self) -> str:
        parts = [
            render_table(
                self.headers, self.rows, title=f"{self.experiment_id}: {self.title}"
            )
        ]
        if self.paper_rows:
            parts.append("")
            parts.append(
                render_table(self.headers, self.paper_rows, title="Paper reports")
            )
        if self.notes:
            parts.append("")
            parts.append(f"Note: {self.notes}")
        return "\n".join(parts)

    def to_markdown(self) -> str:
        def md_table(rows: list[list]) -> str:
            head = "| " + " | ".join(self.headers) + " |"
            sep = "|" + "|".join("---" for _ in self.headers) + "|"
            body = [
                "| "
                + " | ".join(
                    f"{v:.2f}" if isinstance(v, float) else str(v) for v in row
                )
                + " |"
                for row in rows
            ]
            return "\n".join([head, sep, *body])

        parts = [f"### {self.experiment_id}: {self.title}", "", "Measured:", "", md_table(self.rows)]
        if self.paper_rows:
            parts += ["", "Paper:", "", md_table(self.paper_rows)]
        if self.notes:
            parts += ["", f"_Note: {self.notes}_"]
        return "\n".join(parts)


class ExperimentContext:
    """Shared, memoized state for the experiment runners."""

    def __init__(
        self,
        corpus_seed: int = 7,
        llm_seed: int = 11,
        rts_seed: int = 3,
        scale: "CorpusScale | None" = None,
        workers: int = 1,
        backend: str = THREAD,
        cache: "GenerationCache | None" = None,
        cache_dir: "str | Path | None" = None,
        gen_backend: "str | None" = None,
        max_batch: "int | None" = None,
        max_wait_ms: "float | None" = None,
        worker_log_dir: "str | Path | None" = None,
        service: "GenerationService | None" = None,
        spec: "BackendSpec | None" = None,
    ):
        self.corpus_seed = corpus_seed
        self.llm_seed = llm_seed
        self.rts_seed = rts_seed
        self.scale = scale or CorpusScale.small()
        self.workers = workers
        self.backend = backend
        # One BackendSpec describes the generation backend; the loose
        # keyword arguments are the pre-spec surface, folded in here.
        if spec is None:
            overrides = {
                "kind": gen_backend,
                "workers": max(1, workers),
                "max_batch": max_batch,
                "max_wait_ms": max_wait_ms,
                "worker_log_dir": (
                    str(worker_log_dir) if worker_log_dir is not None else None
                ),
            }
            spec = BackendSpec(
                **{key: value for key, value in overrides.items() if value is not None}
            )
        elif any(
            value is not None
            for value in (gen_backend, max_batch, max_wait_ms, worker_log_dir)
        ):
            raise ValueError(
                "pass backend configuration on the spec, not alongside it"
            )
        self.spec = spec
        self._cache = cache
        self._service = service
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._benchmarks: dict[str, Benchmark] = {}
        self._pipelines: dict[str, RTSPipeline] = {}
        self._surrogates: dict[str, SurrogateFilter] = {}
        self._runners: dict[str, BatchRunner] = {}
        self._branch_datasets: dict[tuple, BranchDataset] = {}
        self._link: dict[tuple, list[LinkOutcome]] = {}
        self._joint: dict[tuple, list[JointOutcome]] = {}
        self._llm: "CachingLLM | None" = None
        self._pool: "WorkerPool | None" = None

    @classmethod
    def tiny(cls, workers: int = 1, **kwargs) -> "ExperimentContext":
        """A fast context for tests and benchmark timing."""
        return cls(scale=CorpusScale.tiny(), workers=workers, **kwargs)

    @classmethod
    def default(cls, **kwargs) -> "ExperimentContext":
        """The driver entry points' context.

        Honors ``REPRO_CACHE_DIR``: when set, every table/figure driver
        shares one persistent generation cache, so regenerating the
        evidence file after a sweep (or re-running a single driver)
        reuses all previously computed generations.
        """
        kwargs.setdefault("cache_dir", os.environ.get("REPRO_CACHE_DIR") or None)
        return cls(**kwargs)

    # -- artifacts ----------------------------------------------------------

    @property
    def llm(self) -> CachingLLM:
        if self._llm is None:
            if self._service is not None:
                # A shared, pre-wired service (e.g. one sweep runner's
                # service spanning every per-seed context).
                self._llm = CachingLLM(service=self._service)
            else:
                base = TransparentLLM(seed=self.llm_seed)
                self._service = self.spec.build(
                    base,
                    cache=self._cache,
                    cache_dir=self.cache_dir,
                    pool=self.pool,
                )
                self._llm = CachingLLM(base, service=self._service)
        return self._llm

    @property
    def gen_backend(self) -> str:
        """Back-compat alias for ``spec.kind`` (pre-spec surface)."""
        return self.spec.kind

    @property
    def service(self) -> GenerationService:
        """The generation service every consumer in this context shares."""
        return self.llm.service

    def close(self) -> None:
        """Shut down the generation service — only if one was ever built.

        Deliberately does not construct the LLM just to close it (and
        so never raises on a half-initialized context); safe to call
        from ``finally`` blocks.
        """
        if self._service is not None:
            self._service.close()

    def __enter__(self) -> "ExperimentContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def pool(self) -> WorkerPool:
        """The shared worker pool (serial unless ``workers > 1``)."""
        if self._pool is None:
            self._pool = WorkerPool(workers=self.workers, backend=self.backend)
        return self._pool

    def benchmark(self, name: str) -> Benchmark:
        if name not in self._benchmarks:
            builder = {
                "bird": BirdBuilder(seed=self.corpus_seed, scale=self.scale),
                "spider": SpiderBuilder(seed=self.corpus_seed, scale=self.scale),
            }[name]
            self._benchmarks[name] = builder.build()
        return self._benchmarks[name]

    def pipeline(self, name: str) -> RTSPipeline:
        if name not in self._pipelines:
            pipe = RTSPipeline(self.llm, RTSConfig(seed=self.rts_seed))
            pipe.fit_benchmark(self.benchmark(name), pool=self.pool)
            self._pipelines[name] = pipe
        return self._pipelines[name]

    def runner(self, name: str) -> BatchRunner:
        """The batch runner every bulk evaluation routes through."""
        if name not in self._runners:
            self._runners[name] = self.pipeline(name).batch(
                workers=self.workers, backend=self.backend
            )
        return self._runners[name]

    def surrogate(self, name: str) -> SurrogateFilter:
        if name not in self._surrogates:
            bench = self.benchmark(name)
            self._surrogates[name] = SurrogateFilter(seed=5).fit(
                list(bench.train), bench.databases
            )
        return self._surrogates[name]

    def instances(
        self, name: str, split: str, task: str
    ) -> "list[SchemaLinkingInstance]":
        bench = self.benchmark(name)
        return [
            RTSPipeline.instance_for(example, bench, task)
            for example in bench.split(split)
        ]

    def human(self, profile: HumanProfile = EXPERT, seed: int = 9) -> HumanOracle:
        return HumanOracle(profile, seed=seed)

    def branch_dataset(self, name: str, split: str, task: str) -> BranchDataset:
        """Memoized D_branch over one split — shared by the figure sweeps."""
        key = (name, split, task)
        if key not in self._branch_datasets:
            self._branch_datasets[key] = self.runner(name).branch_dataset(
                self.instances(name, split, task)
            )
        return self._branch_datasets[key]

    def link_outcomes(
        self, name: str, split: str, task: str, mode: str = ABSTAIN
    ) -> "list[LinkOutcome]":
        """Memoized per-task linking sweep via the batch runner."""
        key = (name, split, task, mode)
        if key not in self._link:
            surrogate = self.surrogate(name) if mode == "surrogate" else None
            human = self.human() if mode == "human" else None
            result = self.runner(name).run_link(
                self.instances(name, split, task),
                mode=mode,
                surrogate=surrogate,
                human=human,
            )
            self._link[key] = result.outcomes
        return self._link[key]

    def joint_outcomes(
        self,
        name: str,
        split: str = "dev",
        profile: HumanProfile = EXPERT,
        limit: "int | None" = None,
    ) -> "list[JointOutcome]":
        key = (name, split, profile.name, limit)
        if key not in self._joint:
            bench = self.benchmark(name)
            human = self.human(profile)
            examples = list(bench.split(split))
            if limit is not None:
                examples = examples[:limit]
            result = self.runner(name).run_joint(
                examples, bench, mode="human", human=human
            )
            self._joint[key] = result.outcomes
        return self._joint[key]
