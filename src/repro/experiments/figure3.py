"""Figure 3: fine-tuned linker statistics on BIRD-dev.

(a) The next-token max softmax probability concentrates near 1 for
correct *and* erroneous tokens — the over-confidence that makes
logit-based uncertainty useless (§3.1).

(b) Over 90% of erroneous generations contain only one or two branching
points — which is what makes human repair tractable.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.utils.stats import histogram


def run(ctx: ExperimentContext) -> ExperimentResult:
    instances = ctx.instances("bird", "dev", "table")
    correct_probs: list[float] = []
    branch_probs: list[float] = []
    for trace in ctx.runner("bird").teacher_forced_traces(instances):
        for step in trace.steps:
            if step.is_branching:
                branch_probs.append(step.max_prob)
            else:
                correct_probs.append(step.max_prob)
    dataset = ctx.branch_dataset("bird", "dev", "table")
    counts = dataset.branching_counts_per_generation()
    erroneous = counts[counts > 0]
    hist = np.bincount(erroneous, minlength=4)

    rows = [
        ["mean max-prob (correct tokens)", float(np.mean(correct_probs))],
        ["mean max-prob (branching tokens)", float(np.mean(branch_probs))],
        ["P(max-prob > 0.9 | correct)", float(np.mean(np.array(correct_probs) > 0.9))],
        ["P(max-prob > 0.9 | branching)", float(np.mean(np.array(branch_probs) > 0.9))],
        ["share of erroneous generations with <= 2 branching points",
         float((hist[1] + hist[2]) / max(1, erroneous.size))],
        ["erroneous generations with 1 branching point", int(hist[1])],
        ["erroneous generations with 2 branching points", int(hist[2])],
        ["erroneous generations with 3+ branching points", int(erroneous.size - hist[1] - hist[2])],
    ]
    paper = [
        ["softmax concentrated near 1 for both classes (Fig 3a)", "qualitative"],
        ["share of erroneous generations with <= 2 branching points", ">= 0.90"],
    ]
    return ExperimentResult(
        experiment_id="Figure 3",
        title="Overconfidence (a) and branching points per erroneous generation (b)",
        headers=["Statistic", "Value"],
        rows=rows,
        paper_rows=paper,
        notes=(
            "Fig 3a is reproduced as summary statistics of the two max-prob "
            "distributions; both classes concentrate above 0.9, so a "
            "probability threshold cannot separate them."
        ),
    )


def probability_histograms(ctx: ExperimentContext, bins: int = 12):
    """The raw Figure 3a histograms (used by the plotting example)."""
    instances = ctx.instances("bird", "dev", "table")
    correct, branch = [], []
    for trace in ctx.runner("bird").teacher_forced_traces(instances):
        for step in trace.steps:
            (branch if step.is_branching else correct).append(step.max_prob)
    return (
        histogram(np.array(correct), bins=bins, lo=0.8, hi=1.0),
        histogram(np.array(branch), bins=bins, lo=0.8, hi=1.0),
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
