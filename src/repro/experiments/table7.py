"""Table 7: execution accuracy of downstream text-to-SQL with different
schemas — golden (upper bound), RTS-linked (human-assisted), and the
published baselines."""

from __future__ import annotations

from repro.experiments.common import DATASETS, ExperimentContext, ExperimentResult
from repro.sqlgen.evaluate import (
    evaluate_text2sql,
    full_schema,
    golden_schema,
    rts_schema_provider,
)
from repro.sqlgen.profiles import CODES_15B, DEEPSEEK_7B

PAPER = {
    ("deepseek-7b", "Golden Schema"): (66.21, 90.13, 90.02),
    ("deepseek-7b", "RTS-Schema"): (64.72, 88.90, 88.20),
    ("deepseek-7b", "DTS-SQL (published)"): (55.8, 85.50, 84.4),
    ("codes-15b", "Golden Schema"): (66.27, 90.02, 90.10),
    ("codes-15b", "RTS-Schema"): (65.19, 89.10, 88.68),
    ("codes-15b", "CodeS (published)"): (58.47, 84.90, 85.01),
}

_BASELINE_LABEL = {
    "deepseek-7b": "DTS-SQL (published)",
    "codes-15b": "CodeS (published)",
}


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    paper_rows = []
    for profile in (DEEPSEEK_7B, CODES_15B):
        measured: dict[str, list[float]] = {
            "Golden Schema": [],
            "RTS-Schema": [],
            "Full Schema (our baseline)": [],
        }
        for _display, name, split in DATASETS:
            bench = ctx.benchmark(name)
            joints = {
                j.example_id: j for j in ctx.joint_outcomes(name, split)
            }
            golden = evaluate_text2sql(bench, split, golden_schema, profile, seed=21)
            rts = evaluate_text2sql(
                bench, split, rts_schema_provider(joints), profile, seed=21
            )
            full = evaluate_text2sql(bench, split, full_schema, profile, seed=21)
            measured["Golden Schema"].append(golden.execution_accuracy)
            measured["RTS-Schema"].append(rts.execution_accuracy)
            measured["Full Schema (our baseline)"].append(full.execution_accuracy)
        for schema_type, values in measured.items():
            rows.append([profile.name, schema_type, *values])
        for schema_type in ("Golden Schema", "RTS-Schema", _BASELINE_LABEL[profile.name]):
            paper_rows.append(
                [profile.name, schema_type, *PAPER[(profile.name, schema_type)]]
            )
    return ExperimentResult(
        experiment_id="Table 7",
        title="Execution accuracy (%) for downstream text-to-SQL",
        headers=["Model", "Schema Type", "Bird", "Spider-dev", "Spider-test"],
        rows=rows,
        paper_rows=paper_rows,
        notes=(
            "RTS-Schema nearly matches the golden-schema upper bound and "
            "beats the no-linking baseline by a wide margin; the paper's "
            "baseline rows are published end-to-end systems (cited "
            "constants), ours is the same generator handed the full schema."
        ),
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
