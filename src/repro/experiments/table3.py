"""Table 3: average sBPP AUC over the selected (top-k) probes."""

from __future__ import annotations

from repro.experiments.common import DATASETS, ExperimentContext, ExperimentResult

PAPER = {
    ("Table", "Bird"): 97.16,
    ("Table", "Spider-dev"): 98.43,
    ("Table", "Spider-test"): 97.90,
    ("Column", "Bird"): 96.70,
    ("Column", "Spider-dev"): 96.90,
    ("Column", "Spider-test"): 96.60,
}


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    paper_rows = []
    for task, label in (("table", "Table"), ("column", "Column")):
        row = [label]
        paper_row = [label]
        for display, name, _split in DATASETS:
            # The mBPP is trained on the benchmark's train split; AUC is
            # its calibration-set score (§4.1 Implementation Details).
            mbpp = ctx.pipeline(name).mbpp(task)
            row.append(100.0 * mbpp.mean_auc)
            paper_row.append(PAPER[(label, display)])
        rows.append(row)
        paper_rows.append(paper_row)
    return ExperimentResult(
        experiment_id="Table 3",
        title="Average sBPP AUC (%) of the selected top-k probes",
        headers=["Type", "Bird", "Spider-dev", "Spider-test"],
        rows=rows,
        paper_rows=paper_rows,
        notes=(
            "Spider dev/test share one fitted pipeline (the paper likewise "
            "reports near-identical dev/test AUC)."
        ),
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
