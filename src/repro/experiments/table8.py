"""Table 8: schema linking performance by participant expertise.

100 BIRD questions, joint pipeline with human feedback; beginners answer
the RTS questions less accurately (Table 9), which propagates into lower
final linking EM.
"""

from __future__ import annotations

from repro.abstention.human import BEGINNER, EXPERT
from repro.experiments.common import ExperimentContext, ExperimentResult

PAPER = {
    "Beginner": (96.2, 93.3),
    "Expert": (98.3, 95.8),
}

N_QUESTIONS = 100


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    paper_rows = []
    for profile in (BEGINNER, EXPERT):
        joints = ctx.joint_outcomes("bird", "dev", profile=profile, limit=N_QUESTIONS)
        n = max(1, len(joints))
        em_tables = 100.0 * sum(j.tables_correct for j in joints) / n
        em_columns = 100.0 * sum(j.columns_correct for j in joints) / n
        label = profile.name.capitalize()
        rows.append([label, "Table", em_tables])
        rows.append([label, "Column", em_columns])
        pt, pc = PAPER[label]
        paper_rows.append([label, "Table", pt])
        paper_rows.append([label, "Column", pc])
    return ExperimentResult(
        experiment_id="Table 8",
        title=f"Schema linking EM by expertise ({N_QUESTIONS} BIRD questions)",
        headers=["Participant Group", "Type", "EM (%)"],
        rows=rows,
        paper_rows=paper_rows,
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
