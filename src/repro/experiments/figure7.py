"""Figure 7: the effect of k (number of sBPPs) and the aggregation rule.

Random permutation (Algorithm 1) keeps coverage and EAR nearly constant
in k; majority voting degrades as low-AUC probes join the committee.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.probes.metrics import evaluate_bpp


def sweep(ctx: ExperimentContext, method: str, ks=None) -> list[list]:
    pipe = ctx.pipeline("bird")
    dataset = ctx.branch_dataset("bird", "dev", "table")
    base = pipe.mbpp("table")
    n = len(base.all_probes)
    ks = ks or [1, 3, 5, 7, 9, n]
    rows = []
    for k in ks:
        mbpp = base.subset(k, method=method)
        ev = evaluate_bpp(mbpp, dataset)
        rows.append([k, ev.coverage, ev.ear])
    return rows


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    for method, label in (("permutation", "Random Permutation"), ("majority", "Majority Vote")):
        for k, coverage, ear in sweep(ctx, method):
            rows.append([label, k, coverage, ear])
    return ExperimentResult(
        experiment_id="Figure 7",
        title="Coverage vs EAR for different k (BIRD table linking, alpha=0.1)",
        headers=["Aggregation", "k", "Coverage", "EAR"],
        rows=rows,
        paper_rows=None,
        notes=(
            "Shape claim: permutation is stable in k; majority vote's EAR "
            "fluctuates for small k and grows when low-AUC layers join "
            "(k near the full depth)."
        ),
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
