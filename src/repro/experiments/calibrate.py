"""Calibration summary: where the simulator's emergent metrics sit
relative to the paper's measurements.

The simulated LLM's error process and hidden-state signal parameters
(`llm/errors.py`, `llm/hidden.py`) were calibrated against Table 2 /
Table 3 — this module prints the current emergent values next to the
targets so re-calibration after any corpus or signal change is a
one-command check::

    python -m repro.experiments.calibrate
"""

from __future__ import annotations

from repro.experiments.common import DATASETS, ExperimentContext, ExperimentResult
from repro.linking.linker import SchemaLinker
from repro.llm.errors import error_propensity

TARGETS = {
    ("Bird", "table"): (79.70, 92.85, 95.00),
    ("Bird", "column"): (75.32, 89.87, 88.79),
    ("Spider-dev", "table"): (93.71, 98.17, 96.95),
    ("Spider-dev", "column"): (88.98, 94.41, 94.09),
    ("Spider-test", "table"): (92.72, 97.64, 96.74),
    ("Spider-test", "column"): (87.99, 92.21, 93.02),
}


def run(ctx: ExperimentContext) -> ExperimentResult:
    linker = SchemaLinker(ctx.llm)
    rows = []
    for display, name, split in DATASETS:
        for task in ("table", "column"):
            instances = ctx.instances(name, split, task)
            metrics = linker.evaluate(instances)
            em, p, r = metrics.as_row()
            propensity = sum(
                error_propensity(i.features, i.task, i.difficulty)
                for i in instances
            ) / max(1, len(instances))
            t_em, t_p, t_r = TARGETS[(display, task)]
            rows.append(
                [display, task, em, t_em, p, t_p, r, t_r, propensity]
            )
    return ExperimentResult(
        experiment_id="Calibration",
        title="Emergent linking quality vs paper targets (Table 2)",
        headers=[
            "Dataset", "Task",
            "EM", "EM paper",
            "P", "P paper",
            "R", "R paper",
            "mean propensity",
        ],
        rows=rows,
        paper_rows=None,
        notes=(
            "Emergent = measured by free generation on the current corpus "
            "and error-model coefficients; no per-benchmark constants are "
            "used anywhere."
        ),
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
