"""Table 4: surrogate model relevance-classification accuracy."""

from __future__ import annotations

from repro.experiments.common import DATASETS, ExperimentContext, ExperimentResult

PAPER = {
    ("Table", "Bird"): 92.37,
    ("Table", "Spider-dev"): 96.45,
    ("Table", "Spider-test"): 96.02,
    ("Column", "Bird"): 94.06,
    ("Column", "Spider-dev"): 96.30,
    ("Column", "Spider-test"): 96.00,
}


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    paper_rows = []
    for task, label in (("table", "Table"), ("column", "Column")):
        row = [label]
        paper_row = [label]
        for display, name, split in DATASETS:
            surrogate = ctx.surrogate(name)
            accuracy = surrogate.accuracy(ctx.instances(name, split, task))
            row.append(100.0 * accuracy)
            paper_row.append(PAPER[(label, display)])
        rows.append(row)
        paper_rows.append(paper_row)
    return ExperimentResult(
        experiment_id="Table 4",
        title="Surrogate model accuracy (%)",
        headers=["Type", "Bird", "Spider-dev", "Spider-test"],
        rows=rows,
        paper_rows=paper_rows,
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
