"""Ablations of RTS design choices (beyond the paper's figures).

1. Mondrian (class-conditional) vs marginal conformal calibration.
2. Exchangeable split conformal vs the non-exchangeable KNN variant.
3. The per-layer AUC depth profile (why top-k selection matters).
4. Probe training-data fraction (the paper trains on ~10% of the
   training split at full benchmark scale).
"""

from __future__ import annotations

from repro.core.config import RTSConfig
from repro.core.pipeline import RTSPipeline
from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.probes.metrics import evaluate_bpp


def _eval_config(ctx: ExperimentContext, config: RTSConfig, task: str = "table"):
    bench = ctx.benchmark("bird")
    pipe = RTSPipeline(ctx.llm, config)
    instances = [
        RTSPipeline.instance_for(e, bench, task) for e in bench.train
    ]
    pipe.fit_task(task, instances, pool=ctx.pool)
    # The dev-split D_branch is identical across all ablation variants,
    # so it comes from the context's memoized batch collection.
    dataset = ctx.branch_dataset("bird", "dev", task)
    return evaluate_bpp(pipe.mbpp(task), dataset)


def _logit_baseline_rows(ctx: ExperimentContext) -> list[list]:
    """The §3.1 claim, quantified: a logit threshold cannot match mBPP."""
    from repro.core.pipeline import RTSPipeline
    from repro.probes.baselines import LogitThresholdDetector, collect_max_probs

    bench = ctx.benchmark("bird")
    train = [RTSPipeline.instance_for(e, bench, "table") for e in bench.train]
    dev = [RTSPipeline.instance_for(e, bench, "table") for e in bench.dev]
    detector = LogitThresholdDetector().fit(*collect_max_probs(ctx.llm, train))
    ev = detector.evaluate(*collect_max_probs(ctx.llm, dev))
    return [
        ["Logit-threshold baseline (best Youden J)", ev.coverage, ev.ear],
        [f"  (baseline max-prob AUC = {detector.auc:.3f})", float("nan"), float("nan")],
    ]


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    variants = [
        ("Mondrian split conformal (default)", RTSConfig(seed=3)),
        ("Marginal split conformal", RTSConfig(seed=3, mondrian=False)),
        ("Non-exchangeable (KNN-weighted)", RTSConfig(seed=3, conformal_mode="nonexchangeable")),
        ("Probe fraction 0.5", RTSConfig(seed=3, train_fraction=0.5)),
        ("Probe fraction 0.25", RTSConfig(seed=3, train_fraction=0.25)),
        ("Majority-vote aggregation", RTSConfig(seed=3, aggregation="majority")),
    ]
    for label, config in variants:
        ev = _eval_config(ctx, config)
        rows.append([label, ev.coverage, ev.ear])

    rows.extend(_logit_baseline_rows(ctx))

    # Depth profile of per-layer probe AUC.
    base = ctx.pipeline("bird").mbpp("table")
    profile_rows = [
        [f"layer {p.layer_index} AUC", p.auc, float("nan")]
        for p in base.all_probes
    ]
    return ExperimentResult(
        experiment_id="Ablations",
        title="RTS design-choice ablations (BIRD table linking)",
        headers=["Variant", "Coverage", "EAR"],
        rows=rows + profile_rows,
        paper_rows=None,
        notes=(
            "Marginal calibration loses class-conditional coverage on the "
            "rare branching class; small probe fractions cost coverage; the "
            "AUC depth profile peaks mid-late, motivating top-k selection; "
            "the logit-threshold baseline (over-confidence, Figure 3a) "
            "cannot reach mBPP's coverage without an order-of-magnitude "
            "higher EAR."
        ),
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
