"""Table 1: Text-to-SQL performance under schema-linking configurations.

The paper measures the CHESS pipeline on BIRD-dev with (a) correct tables
+ correct columns, (b) full tables + full columns, and cites the best
reported Gemini-based method. The headline: accurate schema linking is
worth ~8 EX points, and closes most of the gap to the best method.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.sqlgen.evaluate import evaluate_text2sql, full_schema, golden_schema
from repro.sqlgen.profiles import CHESS

BEST_REPORTED_EX = 73.01  # CHASE-SQL (Gemini) on the BIRD leaderboard


def run(ctx: ExperimentContext) -> ExperimentResult:
    bench = ctx.benchmark("bird")
    golden = evaluate_text2sql(bench, "dev", golden_schema, CHESS, seed=21, pool=ctx.pool)
    full = evaluate_text2sql(bench, "dev", full_schema, CHESS, seed=21, pool=ctx.pool)
    rows = [
        ["Correct tables + Correct columns", golden.execution_accuracy],
        ["Full tables + Full columns", full.execution_accuracy],
        ["Best reported based method (cited)", BEST_REPORTED_EX],
    ]
    paper = [
        ["Correct tables + Correct columns", 72.4],
        ["Full tables + Full columns", 64.52],
        ["Best reported based method (cited)", 73.01],
    ]
    return ExperimentResult(
        experiment_id="Table 1",
        title="Text-to-SQL EX on BIRD-dev by schema configuration (CHESS profile)",
        headers=["Schema Linking Configuration", "Execution Accuracy (EX)"],
        rows=rows,
        paper_rows=paper,
        notes=(
            "Golden schema beats full schema by the distraction cost of "
            "irrelevant columns; the best-reported row is a cited leaderboard "
            "constant in both the paper and here."
        ),
    )


def main() -> None:  # pragma: no cover - exercised via CLI
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
