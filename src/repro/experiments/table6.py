"""Table 6: joint table+column schema linking with human feedback.

Tables are linked first, then columns restricted to the predicted
tables; the (expert) human is consulted at every detected branching
point. TAR/FAR are joint — "abstain" means the human was solicited —
and come out far below the sum of Table 5's per-task rates because
hard instances trigger both tasks (§4.3).
"""

from __future__ import annotations

from repro.experiments.common import DATASETS, ExperimentContext, ExperimentResult

PAPER = {
    "Bird": (96.90, 96.02, 18.95, 13.65),
    "Spider-dev": (98.93, 96.71, 6.46, 8.15),
    "Spider-test": (99.02, 96.11, 6.61, 8.20),
}


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    paper_rows = []
    for display, name, split in DATASETS:
        joints = ctx.joint_outcomes(name, split)
        n = max(1, len(joints))
        em_tables = 100.0 * sum(j.tables_correct for j in joints) / n
        em_columns = 100.0 * sum(j.columns_correct for j in joints) / n
        tar = 100.0 * sum(1 for j in joints if j.signalled and not j.unassisted_correct) / n
        far = 100.0 * sum(1 for j in joints if j.signalled and j.unassisted_correct) / n
        rows.append([display, em_tables, em_columns, tar, far])
        paper_rows.append([display, *PAPER[display]])
    return ExperimentResult(
        experiment_id="Table 6",
        title="Schema linking with human feedback (joint pipeline, expert)",
        headers=["Dataset", "Table EM (%)", "Column EM (%)", "TAR (%)", "FAR (%)"],
        rows=rows,
        paper_rows=paper_rows,
        notes=(
            "Residual EM errors are omissions: Algorithm 2 attributes them "
            "to a genuinely relevant item, which even a perfect human "
            "confirms (see abstention/traceback.py)."
        ),
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
