"""Table 9: accuracy of answering RTS-generated questions, by expertise
and query difficulty.

The oracle's *measured* answer accuracy is estimated by Monte Carlo over
actual RTS relevance questions (mixing genuinely relevant and irrelevant
items per difficulty tier) and compared with the paper's user-study
rates, which parameterize the oracle. Agreement validates that the
simulation wiring (task, difficulty routing, seeding) is faithful — the
rates themselves are the paper's measurements by construction.
"""

from __future__ import annotations

from repro.abstention.human import BEGINNER, EXPERT, HumanOracle
from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.linking.instance import COLUMN_TASK, TABLE_TASK

PAPER = {
    ("Beginner", "Table"): (100.0, 96.0, 93.0),
    ("Beginner", "Column"): (100.0, 92.0, 89.0),
    ("Expert", "Table"): (100.0, 100.0, 99.0),
    ("Expert", "Column"): (100.0, 97.0, 94.0),
}

DIFFICULTIES = ("simple", "moderate", "challenging")


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    paper_rows = []
    for profile in (BEGINNER, EXPERT):
        for task, label in ((TABLE_TASK, "Table"), (COLUMN_TASK, "Column")):
            instances = ctx.instances("bird", "dev", task)
            accuracies = []
            for difficulty in DIFFICULTIES:
                subset = [i for i in instances if i.difficulty == difficulty]
                oracle = HumanOracle(profile, seed=13)
                correct = total = 0
                for instance in subset:
                    if not instance.gold_items:
                        continue
                    # One genuinely relevant and one irrelevant query each.
                    queries = [(instance.gold_items[:1], True)]
                    non_gold = [
                        c for c in instance.candidates
                        if c not in set(instance.gold_items)
                    ]
                    if non_gold:
                        queries.append(((non_gold[0],), False))
                    for qidx, (items, truth) in enumerate(queries):
                        answer = oracle.confirm_relevance(instance, items, qidx)
                        correct += int(answer == truth)
                        total += 1
                accuracies.append(100.0 * correct / max(1, total))
            rows.append([profile.name.capitalize(), label, *accuracies])
            paper_rows.append(
                [profile.name.capitalize(), label, *PAPER[(profile.name.capitalize(), label)]]
            )
    return ExperimentResult(
        experiment_id="Table 9",
        title="Accuracy (%) answering RTS questions by expertise and difficulty",
        headers=["Participant Group", "Type", "Simple", "Moderate", "Challenging"],
        rows=rows,
        paper_rows=paper_rows,
        notes=(
            "The oracle is parameterized by the paper's user-study rates; "
            "this experiment verifies the Monte Carlo estimates recover them "
            "through the real question-asking path."
        ),
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
