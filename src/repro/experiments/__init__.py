"""Experiment harness: one module per paper table/figure.

Run any experiment directly::

    python -m repro.experiments.table5
    python -m repro.experiments.figure6

or everything (regenerates the EXPERIMENTS.md evidence)::

    python -m repro.experiments.report
"""

from repro.experiments.common import ExperimentContext, ExperimentResult

__all__ = ["ExperimentContext", "ExperimentResult"]
