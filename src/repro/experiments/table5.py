"""Table 5: RTS schema linking with abstention (mBPP) and the surrogate
filter — EM over answered instances, TAR, FAR."""

from __future__ import annotations

from repro.core.results import build_report
from repro.experiments.common import DATASETS, ExperimentContext, ExperimentResult

PAPER = {
    ("mBPP-Abstention", "Table", "Bird"): (98.89, 19.10, 12.77),
    ("mBPP-Abstention", "Column", "Bird"): (97.38, 22.01, 13.53),
    ("mBPP-Abstention", "Table", "Spider-dev"): (99.86, 6.51, 5.27),
    ("mBPP-Abstention", "Column", "Spider-dev"): (97.73, 8.75, 7.46),
    ("mBPP-Abstention", "Table", "Spider-test"): (99.67, 6.28, 4.98),
    ("mBPP-Abstention", "Column", "Spider-test"): (97.52, 9.25, 8.32),
    ("Surrogate filter", "Table", "Bird"): (90.80, 10.90, 2.20),
    ("Surrogate filter", "Column", "Bird"): (89.76, 14.34, 5.98),
    ("Surrogate filter", "Table", "Spider-dev"): (96.77, 3.05, 1.70),
    ("Surrogate filter", "Column", "Spider-dev"): (92.71, 3.70, 3.35),
    ("Surrogate filter", "Table", "Spider-test"): (95.47, 4.10, 2.03),
    ("Surrogate filter", "Column", "Spider-test"): (90.18, 4.63, 4.12),
}


def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    paper_rows = []
    for method, mode in (("mBPP-Abstention", "abstain"), ("Surrogate filter", "surrogate")):
        for task, label in (("table", "Table"), ("column", "Column")):
            for display, name, split in DATASETS:
                report = build_report(ctx.link_outcomes(name, split, task, mode))
                em, tar, far = report.as_row()
                rows.append([method, label, display, em, tar, far])
                pem, ptar, pfar = PAPER[(method, label, display)]
                paper_rows.append([method, label, display, pem, ptar, pfar])
    return ExperimentResult(
        experiment_id="Table 5",
        title="RTS schema linking performance (abstention / surrogate filter)",
        headers=["Method", "Type", "Dataset", "EM (%)", "TAR (%)", "FAR (%)"],
        rows=rows,
        paper_rows=paper_rows,
        notes=(
            "The surrogate filter trades EM for fewer abstentions: it vetoes "
            "most false alarms (FAR drops) but also overrides a share of "
            "correct abstentions, forcing erroneous generations (EM and TAR "
            "drop) — the paper's observed trade-off."
        ),
    )


def main() -> None:  # pragma: no cover
    print(run(ExperimentContext.default()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
