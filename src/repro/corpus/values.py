"""Typed value pools for data population.

Each column carries a ``value_pool`` name; the materializer draws cell
values from the pool. Pools are deliberately small so filter predicates in
generated questions are selective but rarely empty.

Pool name grammar:

* plain names (``person_first``, ``city`` ...) — draw from the word lists
  below;
* ``choice:a|b|c`` — categorical over the listed options;
* ``int:lo..hi`` — uniform integer range;
* ``real:lo..hi`` — uniform real, rounded to 2 decimals;
* ``year:lo..hi`` — integer years;
* ``serial`` — handled by the materializer (row index), never drawn here.
"""

from __future__ import annotations

import numpy as np

__all__ = ["draw_value", "pool_values", "POOLS"]

POOLS: dict[str, tuple] = {
    "person_first": (
        "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
        "Linda", "David", "Elizabeth", "William", "Barbara", "Richard",
        "Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Carlos", "Yuki",
        "Amara", "Priya", "Lars", "Sofia", "Omar", "Ingrid",
    ),
    "person_last": (
        "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
        "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
        "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Nakamura",
        "Okafor", "Petrov", "Silva", "Kowalski", "Haddad",
    ),
    "city": (
        "Toronto", "Seattle", "Austin", "Denver", "Boston", "Chicago",
        "Portland", "Atlanta", "Madrid", "Lyon", "Osaka", "Melbourne",
        "Nairobi", "Oslo", "Prague", "Lima",
    ),
    "country": (
        "Canada", "United States", "Spain", "France", "Japan", "Australia",
        "Kenya", "Norway", "Czechia", "Peru", "Brazil", "Germany", "India",
        "Italy", "Mexico", "Poland",
    ),
    "nationality": (
        "Canadian", "American", "Spanish", "French", "Japanese",
        "Australian", "Kenyan", "Norwegian", "Czech", "Peruvian",
        "Brazilian", "German", "Indian", "Italian", "Mexican", "Polish",
    ),
    "company": (
        "Acme Corp", "Globex", "Initech", "Umbrella", "Stark Industries",
        "Wayne Enterprises", "Hooli", "Vehement Capital", "Massive Dynamic",
        "Soylent Corp", "Tyrell Corp", "Cyberdyne",
    ),
    "street": (
        "Maple Ave", "Oak St", "Pine Rd", "Cedar Blvd", "Elm Dr",
        "Birch Ln", "Willow Way", "Spruce Ct", "Aspen Pl", "Juniper Ter",
    ),
    "word": (
        "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
        "hotel", "india", "juliett", "kilo", "lima", "mike", "november",
    ),
    "color": ("red", "blue", "green", "yellow", "black", "white", "silver"),
    "month": (
        "January", "February", "March", "April", "May", "June", "July",
        "August", "September", "October", "November", "December",
    ),
}


def pool_values(pool: str) -> "tuple | None":
    """The finite option list for a pool, if it has one."""
    if pool.startswith("choice:"):
        return tuple(pool.split(":", 1)[1].split("|"))
    return POOLS.get(pool)


def draw_value(pool: str, rng: np.random.Generator) -> object:
    """Draw a single value from the named pool."""
    if pool.startswith("choice:"):
        options = pool.split(":", 1)[1].split("|")
        return str(rng.choice(options))
    if pool.startswith("int:"):
        lo, hi = pool.split(":", 1)[1].split("..")
        return int(rng.integers(int(lo), int(hi) + 1))
    if pool.startswith("real:"):
        lo, hi = pool.split(":", 1)[1].split("..")
        return round(float(rng.uniform(float(lo), float(hi))), 2)
    if pool.startswith("year:"):
        lo, hi = pool.split(":", 1)[1].split("..")
        return int(rng.integers(int(lo), int(hi) + 1))
    if pool == "date":
        year = int(rng.integers(2000, 2024))
        month = int(rng.integers(1, 13))
        day = int(rng.integers(1, 29))
        return f"{year:04d}-{month:02d}-{day:02d}"
    if pool == "bool":
        return int(rng.integers(0, 2))
    if pool == "generic":
        return int(rng.integers(0, 1000))
    values = POOLS.get(pool)
    if values is None:
        raise KeyError(f"unknown value pool {pool!r}")
    return str(rng.choice(values))
