"""Shared benchmark assembly used by the Spider and BIRD builders."""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.corpus.dataset import Benchmark, Split
from repro.corpus.generator import CorpusScale, DatabaseFactory, PopulatedDatabase
from repro.corpus.questions import QuestionFactory
from repro.schema.naming import NamingStyle
from repro.utils.rng import RngFactory

__all__ = ["assemble_benchmark"]


def assemble_benchmark(
    name: str,
    seed: int,
    scale: CorpusScale,
    style_for: Callable[[int], NamingStyle],
    difficulty_mix: dict[str, float],
    keep_knowledge: bool,
    knowledge_fraction: float,
) -> Benchmark:
    """Build a complete benchmark.

    Questions are split per-database into train/dev/test — the paper
    explicitly assumes "the training distribution aligns with the testing
    distribution" (§4), which the in-domain split realizes while keeping
    every database represented in every split.
    """
    rngs = RngFactory(seed)
    factory = DatabaseFactory(
        seed=rngs.seed_for("dbs"), style=NamingStyle.SNAKE, scale=scale
    )
    databases: dict[str, PopulatedDatabase] = {}
    for i in range(scale.n_databases):
        pdb = factory.build_database(i, style=style_for(i))
        if not keep_knowledge:
            pdb = PopulatedDatabase(
                schema=replace(pdb.schema, knowledge=()), rows=pdb.rows
            )
        databases[pdb.name] = pdb

    train, dev, test = Split("train"), Split("dev"), Split("test")
    for db_id, pdb in databases.items():
        qf = QuestionFactory(
            pdb,
            rngs.get("questions", db_id),
            difficulty_mix=difficulty_mix,
            knowledge_fraction=knowledge_fraction if keep_knowledge else 0.0,
        )
        train.examples.extend(qf.build(scale.train_per_db, f"{db_id}_train"))
        dev.examples.extend(qf.build(scale.dev_per_db, f"{db_id}_dev"))
        test.examples.extend(qf.build(scale.test_per_db, f"{db_id}_test"))
    return Benchmark(name=name, databases=databases, train=train, dev=dev, test=test)
