"""Question generation: templates that jointly emit NL text and gold SQL.

Every template phrases its question with the *semantic surface forms* of
tables/columns (``lap times``, ``education operations``) regardless of the
physical identifiers (``lapTimes``, ``EdOps``). On a dirty (BIRD-like)
schema this opens the semantic gap the paper identifies as the main
linking hazard; on a clean schema the surface form nearly matches the
identifier.

Templates are grouped by difficulty tier to match the benchmark's
simple / moderate / challenging classification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.dataset import Example, InstanceFeatures
from repro.corpus.generator import PopulatedDatabase
from repro.corpus.sqlast import (
    ColumnRef,
    Condition,
    JoinEdge,
    OrderTerm,
    SelectItem,
    SelectQuery,
    Subquery,
)
from repro.schema.column import Column
from repro.schema.database import Database
from repro.schema.table import Table

__all__ = ["QuestionFactory", "compute_features"]

# Words too common to signal ambiguity (every table has ids/names/dates).
_STOPWORDS = {"id", "name", "date", "year", "count", "number", "city", "type"}

_OP_PHRASE = {
    "=": "equal to",
    ">": "greater than",
    "<": "less than",
    ">=": "at least",
    "<=": "at most",
    "!=": "different from",
}

_AGG_PHRASE = {"AVG": "average", "MAX": "maximum", "MIN": "minimum", "SUM": "total"}


def _content_words(words: tuple[str, ...]) -> set[str]:
    return {w for w in words if w not in _STOPWORDS}


def compute_features(
    db: Database, query: SelectQuery, needs_knowledge: bool
) -> InstanceFeatures:
    """Measure the linking-difficulty features of a gold query on ``db``."""
    gold_tables = query.tables_used()
    gold_columns = query.columns_used()

    # Table ambiguity: gold tables whose content words also occur in other
    # tables (their names or their columns) — the Figure 1(a) hazard.
    ambiguous_tables = 0
    for tname in gold_tables:
        table = db.table(tname)
        words = _content_words(table.semantic_words)
        if not words:
            continue
        for other in db.tables:
            if other.name.lower() == table.name.lower():
                continue
            other_words = _content_words(other.semantic_words)
            for col in other.columns:
                other_words |= _content_words(col.semantic_words)
            if words & other_words:
                ambiguous_tables += 1
                break
    table_ambiguity = ambiguous_tables / max(1, len(gold_tables))

    # Column ambiguity: gold columns whose content words occur in other
    # columns anywhere in the database.
    n_gold_cols = 0
    ambiguous_cols = 0
    for tname, cols in gold_columns.items():
        table = db.table(tname)
        for cname in cols:
            n_gold_cols += 1
            col = table.column(cname)
            words = _content_words(col.semantic_words)
            if not words:
                continue
            clash = False
            for other_t in db.tables:
                for other_c in other_t.columns:
                    if other_t.name.lower() == tname.lower() and (
                        other_c.name.lower() == cname.lower()
                    ):
                        continue
                    if words & _content_words(other_c.semantic_words):
                        clash = True
                        break
                if clash:
                    break
            if clash:
                ambiguous_cols += 1
    column_ambiguity = ambiguous_cols / max(1, n_gold_cols)

    # Dirty gap: gold identifiers whose physical name shares no word with
    # the semantic phrase AND that carry no description — Figure 1(b).
    gap_hits = 0
    gap_total = 0
    for tname in gold_tables:
        table = db.table(tname)
        gap_total += 1
        if _is_opaque(table.name, table.semantic_words) and not table.description:
            gap_hits += 1
        for cname in gold_columns.get(tname, ()):
            col = table.column(cname)
            gap_total += 1
            if _is_opaque(col.name, col.semantic_words) and not col.description:
                gap_hits += 1
    dirty_gap = gap_hits / max(1, gap_total)

    return InstanceFeatures(
        table_ambiguity=table_ambiguity,
        column_ambiguity=column_ambiguity,
        dirty_gap=dirty_gap,
        needs_knowledge=needs_knowledge,
        n_tables=len(db.tables),
        n_gold_tables=len(gold_tables),
        n_gold_columns=n_gold_cols,
    )


def _is_opaque(physical: str, words: tuple[str, ...]) -> bool:
    """True when the physical name does not contain any semantic word."""
    lowered = physical.lower().replace("_", "")
    return not any(w.lower() in lowered for w in words if len(w) > 2)


@dataclass
class _Draft:
    """A template's output before example assembly."""

    question: str
    query: SelectQuery
    needs_knowledge: bool = False
    knowledge: "str | None" = None


class QuestionFactory:
    """Generates (question, gold SQL) examples for one populated database."""

    def __init__(
        self,
        pdb: PopulatedDatabase,
        rng: np.random.Generator,
        difficulty_mix: "dict[str, float] | None" = None,
        knowledge_fraction: float = 0.0,
    ):
        self.pdb = pdb
        self.db = pdb.schema
        self.rng = rng
        self.mix = difficulty_mix or {
            "simple": 0.40,
            "moderate": 0.40,
            "challenging": 0.20,
        }
        self.knowledge_fraction = knowledge_fraction
        self._templates = {
            "simple": [
                self._t_list_all,
                self._t_list_filter,
                self._t_count_filter,
                self._t_agg_simple,
                self._t_distinct,
            ],
            "moderate": [
                self._t_join_list,
                self._t_superlative,
                self._t_group_count,
                self._t_join_agg,
                self._t_order_topk,
            ],
            "challenging": [
                self._t_group_having,
                self._t_nested_avg,
                self._t_join_three,
                self._t_join_group_most,
            ],
        }

    # -- column/table selection helpers -------------------------------------

    def _display_columns(self, table: Table) -> list[Column]:
        fk_cols = {fk.column for fk in table.foreign_keys}
        return [
            c
            for c in table.columns
            if not c.is_primary and c.name not in fk_cols and c.value_pool != "serial"
        ]

    def _numeric_columns(self, table: Table) -> list[Column]:
        return [c for c in self._display_columns(table) if c.ctype.is_numeric]

    def _categorical_columns(self, table: Table) -> list[Column]:
        out = []
        for c in self._display_columns(table):
            if c.value_pool.startswith("choice:") or c.value_pool in (
                "person_first",
                "person_last",
                "city",
                "country",
                "nationality",
                "company",
                "word",
                "color",
                "month",
            ):
                out.append(c)
        return out

    def _name_column(self, table: Table) -> "Column | None":
        for c in self._display_columns(table):
            if not c.ctype.is_numeric:
                return c
        cols = self._display_columns(table)
        return cols[0] if cols else None

    def _pick(self, items: list):
        if not items:
            return None
        return items[int(self.rng.integers(0, len(items)))]

    def _pick_table(self) -> Table:
        return self.db.tables[int(self.rng.integers(0, len(self.db.tables)))]

    def _value_for(self, table: Table, col: Column):
        values = self.pdb.column_values(table.name, col.name)
        return self._pick(values)

    def _numeric_threshold(self, table: Table, col: Column):
        values = [
            v
            for v in self.pdb.column_values(table.name, col.name)
            if isinstance(v, (int, float))
        ]
        if not values:
            return None
        return sorted(values)[len(values) // 2]

    def _fk_pairs(self) -> list[tuple[Table, Table]]:
        """(child, parent) pairs connected by an FK edge."""
        pairs = []
        for t in self.db.tables:
            for fk in t.foreign_keys:
                pairs.append((t, self.db.table(fk.ref_table)))
        return pairs

    # -- simple templates ----------------------------------------------------

    def _t_list_all(self) -> "_Draft | None":
        table = self._pick_table()
        col = self._pick(self._display_columns(table))
        if col is None:
            return None
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef(table.name, col.name)),),
            tables=(table.name,),
        )
        text = f"List the {col.surface} of every {table.surface} record."
        return _Draft(text, q)

    def _t_list_filter(self) -> "_Draft | None":
        table = self._pick_table()
        show = self._pick(self._display_columns(table))
        cond_col = self._pick(self._categorical_columns(table))
        if show is None or cond_col is None or show.name == cond_col.name:
            return None
        value = self._value_for(table, cond_col)
        if value is None:
            return None
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef(table.name, show.name)),),
            tables=(table.name,),
            where=(Condition(ColumnRef(table.name, cond_col.name), "=", value),),
        )
        text = (
            f"What is the {show.surface} of the {table.surface} records "
            f"whose {cond_col.surface} is {value}?"
        )
        return _Draft(text, q)

    def _t_count_filter(self) -> "_Draft | None":
        table = self._pick_table()
        col = self._pick(self._numeric_columns(table))
        if col is None:
            return None
        threshold = self._numeric_threshold(table, col)
        if threshold is None:
            return None
        op = str(self.rng.choice([">", "<", ">="]))
        q = SelectQuery(
            select=(SelectItem(col=None, agg="COUNT"),),
            tables=(table.name,),
            where=(Condition(ColumnRef(table.name, col.name), op, threshold),),
        )
        text = (
            f"How many {table.surface} records have a {col.surface} "
            f"{_OP_PHRASE[op]} {threshold}?"
        )
        return _Draft(text, q)

    def _t_agg_simple(self) -> "_Draft | None":
        table = self._pick_table()
        col = self._pick(self._numeric_columns(table))
        if col is None:
            return None
        agg = str(self.rng.choice(["AVG", "MAX", "MIN"]))
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef(table.name, col.name), agg=agg),),
            tables=(table.name,),
        )
        text = (
            f"What is the {_AGG_PHRASE[agg]} {col.surface} "
            f"across all {table.surface} records?"
        )
        return _Draft(text, q)

    def _t_distinct(self) -> "_Draft | None":
        table = self._pick_table()
        col = self._pick(self._categorical_columns(table))
        if col is None:
            return None
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef(table.name, col.name), distinct=True),),
            tables=(table.name,),
        )
        text = f"List the distinct {col.surface} values among all {table.surface} records."
        return _Draft(text, q)

    # -- moderate templates ----------------------------------------------------

    def _join_query_parts(self):
        pair = self._pick(self._fk_pairs())
        if pair is None:
            return None
        child, parent = pair
        edge = self.db.join_condition(child.name, parent.name)
        if edge is None:
            return None
        lt, lc, rt, rc = edge
        join = JoinEdge(ColumnRef(lt, lc), ColumnRef(rt, rc))
        return child, parent, join

    def _t_join_list(self) -> "_Draft | None":
        parts = self._join_query_parts()
        if parts is None:
            return None
        child, parent, join = parts
        child_col = self._pick(self._display_columns(child))
        parent_col = self._pick(self._display_columns(parent))
        if child_col is None or parent_col is None:
            return None
        cond_col = self._pick(self._categorical_columns(parent))
        where: tuple[Condition, ...] = ()
        cond_text = ""
        if cond_col is not None and cond_col.name != parent_col.name:
            value = self._value_for(parent, cond_col)
            if value is not None:
                where = (
                    Condition(ColumnRef(parent.name, cond_col.name), "=", value),
                )
                cond_text = f" for the {parent.surface} whose {cond_col.surface} is {value}"
        q = SelectQuery(
            select=(
                SelectItem(col=ColumnRef(child.name, child_col.name)),
                SelectItem(col=ColumnRef(parent.name, parent_col.name)),
            ),
            tables=(child.name, parent.name),
            joins=(join,),
            where=where,
        )
        text = (
            f"Show each {child.surface} record's {child_col.surface} together with "
            f"the {parent_col.surface} of its {parent.surface}{cond_text}."
        )
        return _Draft(text, q)

    def _t_superlative(self) -> "_Draft | None":
        table = self._pick_table()
        num = self._pick(self._numeric_columns(table))
        name = self._name_column(table)
        if num is None or name is None or num.name == name.name:
            return None
        direction = str(self.rng.choice(["DESC", "ASC"]))
        phrase = "highest" if direction == "DESC" else "lowest"
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef(table.name, name.name)),),
            tables=(table.name,),
            order_by=(OrderTerm(ColumnRef(table.name, num.name), direction),),
            limit=1,
        )
        text = (
            f"Which {table.surface} record has the {phrase} {num.surface}? "
            f"Give its {name.surface}."
        )
        return _Draft(text, q)

    def _t_group_count(self) -> "_Draft | None":
        table = self._pick_table()
        group = self._pick(self._categorical_columns(table))
        if group is None:
            return None
        ref = ColumnRef(table.name, group.name)
        q = SelectQuery(
            select=(SelectItem(col=ref), SelectItem(col=None, agg="COUNT")),
            tables=(table.name,),
            group_by=(ref,),
        )
        text = f"For each {group.surface}, how many {table.surface} records are there?"
        return _Draft(text, q)

    def _t_join_agg(self) -> "_Draft | None":
        parts = self._join_query_parts()
        if parts is None:
            return None
        child, parent, join = parts
        num = self._pick(self._numeric_columns(child))
        cond_col = self._pick(self._categorical_columns(parent))
        if num is None or cond_col is None:
            return None
        value = self._value_for(parent, cond_col)
        if value is None:
            return None
        agg = str(self.rng.choice(["AVG", "MAX", "SUM"]))
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef(child.name, num.name), agg=agg),),
            tables=(child.name, parent.name),
            joins=(join,),
            where=(Condition(ColumnRef(parent.name, cond_col.name), "=", value),),
        )
        text = (
            f"What is the {_AGG_PHRASE[agg]} {num.surface} of {child.surface} records "
            f"for the {parent.surface} whose {cond_col.surface} is {value}?"
        )
        return _Draft(text, q)

    def _t_order_topk(self) -> "_Draft | None":
        table = self._pick_table()
        num = self._pick(self._numeric_columns(table))
        name = self._name_column(table)
        if num is None or name is None or num.name == name.name:
            return None
        k = int(self.rng.integers(2, 6))
        q = SelectQuery(
            select=(
                SelectItem(col=ColumnRef(table.name, name.name)),
                SelectItem(col=ColumnRef(table.name, num.name)),
            ),
            tables=(table.name,),
            order_by=(OrderTerm(ColumnRef(table.name, num.name), "DESC"),),
            limit=k,
        )
        text = (
            f"List the {name.surface} and {num.surface} of the top {k} "
            f"{table.surface} records by {num.surface}."
        )
        return _Draft(text, q)

    # -- challenging templates --------------------------------------------------

    def _t_group_having(self) -> "_Draft | None":
        table = self._pick_table()
        group = self._pick(self._categorical_columns(table))
        if group is None:
            return None
        n = int(self.rng.integers(1, 4))
        ref = ColumnRef(table.name, group.name)
        q = SelectQuery(
            select=(SelectItem(col=ref),),
            tables=(table.name,),
            group_by=(ref,),
            having=(Condition(None, ">", n, agg="COUNT"),),
        )
        text = (
            f"Which {group.surface} values appear in more than {n} "
            f"{table.surface} records?"
        )
        return _Draft(text, q)

    def _t_nested_avg(self) -> "_Draft | None":
        table = self._pick_table()
        num = self._pick(self._numeric_columns(table))
        name = self._name_column(table)
        if num is None or name is None or num.name == name.name:
            return None
        inner = SelectQuery(
            select=(SelectItem(col=ColumnRef(table.name, num.name), agg="AVG"),),
            tables=(table.name,),
        )
        q = SelectQuery(
            select=(SelectItem(col=ColumnRef(table.name, name.name)),),
            tables=(table.name,),
            where=(
                Condition(ColumnRef(table.name, num.name), ">", Subquery(inner)),
            ),
        )
        text = (
            f"List the {name.surface} of {table.surface} records whose {num.surface} "
            f"is above the average {num.surface}."
        )
        return _Draft(text, q)

    def _t_join_three(self) -> "_Draft | None":
        # A path child -> mid -> top through two FK edges.
        for _ in range(6):
            parts = self._join_query_parts()
            if parts is None:
                return None
            child, mid, join1 = parts
            grand_edges = [
                (fk, self.db.table(fk.ref_table))
                for fk in mid.foreign_keys
                if fk.ref_table.lower() not in (child.name.lower(), mid.name.lower())
            ]
            if not grand_edges:
                continue
            fk, top = grand_edges[int(self.rng.integers(0, len(grand_edges)))]
            join2 = JoinEdge(
                ColumnRef(mid.name, fk.column), ColumnRef(top.name, fk.ref_column)
            )
            name = self._name_column(top)
            num = self._pick(self._numeric_columns(child))
            if name is None or num is None:
                continue
            threshold = self._numeric_threshold(child, num)
            if threshold is None:
                continue
            q = SelectQuery(
                select=(SelectItem(col=ColumnRef(top.name, name.name), distinct=True),),
                tables=(child.name, mid.name, top.name),
                joins=(join1, join2),
                where=(
                    Condition(ColumnRef(child.name, num.name), ">", threshold),
                ),
            )
            text = (
                f"List the distinct {name.surface} of the {top.surface} linked, through "
                f"{mid.surface}, to {child.surface} records with {num.surface} "
                f"{_OP_PHRASE['>']} {threshold}."
            )
            return _Draft(text, q)
        return None

    def _t_join_group_most(self) -> "_Draft | None":
        parts = self._join_query_parts()
        if parts is None:
            return None
        child, parent, join = parts
        name = self._name_column(parent)
        if name is None:
            return None
        ref = ColumnRef(parent.name, name.name)
        q = SelectQuery(
            select=(SelectItem(col=ref),),
            tables=(child.name, parent.name),
            joins=(join,),
            group_by=(ref,),
            order_by=(OrderTerm(None, "DESC", agg="COUNT"),),
            limit=1,
        )
        text = (
            f"Which {parent.surface} (by {name.surface}) has the most associated "
            f"{child.surface} records?"
        )
        return _Draft(text, q)

    # -- assembly -----------------------------------------------------------

    def _sample_difficulty(self) -> str:
        names = list(self.mix)
        probs = np.array([self.mix[n] for n in names], dtype=float)
        probs /= probs.sum()
        return names[int(self.rng.choice(len(names), p=probs))]

    def build_one(self, example_id: str) -> Example:
        """Generate one example (retrying templates until one applies)."""
        for _ in range(60):
            difficulty = self._sample_difficulty()
            template = self._pick(self._templates[difficulty])
            draft = template()
            if draft is None:
                continue
            needs_knowledge = draft.needs_knowledge
            knowledge = draft.knowledge
            # A slice of questions on knowledge-bearing databases requires
            # the external snippet to resolve a phrase (BIRD's protocol).
            if (
                not needs_knowledge
                and self.db.knowledge
                and self.rng.random() < self.knowledge_fraction
            ):
                needs_knowledge = True
                knowledge = str(
                    self.db.knowledge[int(self.rng.integers(0, len(self.db.knowledge)))]
                )
            features = compute_features(self.db, draft.query, needs_knowledge)
            return Example(
                example_id=example_id,
                db_id=self.db.name,
                question=draft.question,
                query=draft.query,
                difficulty=difficulty,
                features=features,
                knowledge=knowledge,
            )
        raise RuntimeError(
            f"could not instantiate any template on database {self.db.name!r}"
        )

    def build(self, n: int, id_prefix: str) -> list[Example]:
        return [self.build_one(f"{id_prefix}_{i:04d}") for i in range(n)]
