"""Domain archetypes: hand-written schema blueprints for twelve domains.

Each :class:`DomainSpec` describes the tables a database in that domain
*may* contain, with semantic words, column types, value pools, optional
descriptions and FK edges. The generator samples concrete databases from
these blueprints (core tables always present, optional tables sampled),
then applies a naming style (clean for Spider-like, dirty for BIRD-like).

The domains are modelled on the ones the paper's examples come from
(formula_1 racing, california schools, thrombosis laboratory tests) plus
the spread of professional domains BIRD advertises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.column import ColumnType

__all__ = ["ColumnSpec", "TableSpec", "DomainSpec", "ALL_DOMAINS", "domain_by_name"]

_TYPES = {
    "int": ColumnType.INTEGER,
    "real": ColumnType.REAL,
    "text": ColumnType.TEXT,
    "date": ColumnType.DATE,
    "bool": ColumnType.BOOLEAN,
}


@dataclass(frozen=True)
class ColumnSpec:
    """Blueprint for one column."""

    words: tuple[str, ...]
    ctype: ColumnType
    pool: str
    description: "str | None" = None
    is_primary: bool = False


@dataclass(frozen=True)
class TableSpec:
    """Blueprint for one table; ``fks`` are (column words, ref table words,
    ref column words) triples resolved at generation time."""

    words: tuple[str, ...]
    columns: tuple[ColumnSpec, ...]
    fks: tuple[tuple[str, str, str], ...] = ()
    core: bool = True
    description: "str | None" = None


@dataclass(frozen=True)
class DomainSpec:
    """Blueprint for a domain: tables plus external-knowledge snippets."""

    name: str
    tables: tuple[TableSpec, ...]
    knowledge: tuple[str, ...] = ()

    @property
    def core_tables(self) -> tuple[TableSpec, ...]:
        return tuple(t for t in self.tables if t.core)

    @property
    def optional_tables(self) -> tuple[TableSpec, ...]:
        return tuple(t for t in self.tables if not t.core)


def _c(
    words: str,
    ctype: str = "text",
    pool: str = "word",
    desc: "str | None" = None,
    pk: bool = False,
) -> ColumnSpec:
    """Compact column constructor; ``words`` is a space-separated phrase."""
    return ColumnSpec(
        words=tuple(words.split()),
        ctype=_TYPES[ctype],
        pool=pool,
        description=desc,
        is_primary=pk,
    )


def _pk(words: str, desc: "str | None" = None) -> ColumnSpec:
    return _c(words, "int", "serial", desc, pk=True)


def _fk(words: str) -> ColumnSpec:
    return _c(words, "int", "serial")


def _t(
    words: str,
    columns: list[ColumnSpec],
    fks: "list[tuple[str, str, str]] | None" = None,
    core: bool = True,
    desc: "str | None" = None,
) -> TableSpec:
    return TableSpec(
        words=tuple(words.split()),
        columns=tuple(columns),
        fks=tuple(fks or []),
        core=core,
        description=desc,
    )


# ---------------------------------------------------------------------------
# 1. Racing (formula_1-like; the paper's Figure 1(a) example domain)
# ---------------------------------------------------------------------------

RACING = DomainSpec(
    name="racing",
    tables=(
        _t("circuits", [
            _pk("circuit id"),
            _c("circuit name", "text", "word", "name of the racing circuit"),
            _c("location", "text", "city", "city where the circuit is"),
            _c("country", "text", "country"),
            _c("altitude", "int", "int:0..2200", "altitude in meters"),
        ]),
        _t("drivers", [
            _pk("driver id"),
            _c("forename", "text", "person_first", "driver first name"),
            _c("surname", "text", "person_last", "driver family name"),
            _c("nationality", "text", "nationality"),
            _c("birth year", "int", "year:1970..2002"),
            _c("career points", "real", "real:0..420", "total career points"),
        ]),
        _t("races", [
            _pk("race id"),
            _fk("circuit id"),
            _c("race name", "text", "word", "official name of the race"),
            _c("season year", "int", "year:2000..2023"),
            _c("round", "int", "int:1..22", "round number within the season"),
            _c("race date", "date", "date"),
        ], fks=[("circuit id", "circuits", "circuit id")]),
        _t("lap times", [
            _pk("lap record id"),
            _fk("race id"),
            _fk("driver id"),
            _c("lap", "int", "int:1..70", "lap number"),
            _c("lap milliseconds", "int", "int:68000..115000",
               "lap time in milliseconds"),
            _c("position", "int", "int:1..20", "track position on that lap"),
        ], fks=[("race id", "races", "race id"),
                ("driver id", "drivers", "driver id")]),
        _t("results", [
            _pk("result id"),
            _fk("race id"),
            _fk("driver id"),
            _c("grid", "int", "int:1..20", "starting grid position"),
            _c("final position", "int", "int:1..20"),
            _c("points", "real", "real:0..26", "championship points scored"),
        ], fks=[("race id", "races", "race id"),
                ("driver id", "drivers", "driver id")]),
        _t("pit stops", [
            _pk("stop id"),
            _fk("race id"),
            _fk("driver id"),
            _c("stop number", "int", "int:1..4"),
            _c("stop milliseconds", "int", "int:19000..41000",
               "pit stop duration in milliseconds"),
        ], fks=[("race id", "races", "race id"),
                ("driver id", "drivers", "driver id")], core=False),
        _t("constructors", [
            _pk("constructor id"),
            _c("constructor name", "text", "company", "name of the constructor team"),
            _c("base country", "text", "country"),
            _c("founded year", "int", "year:1950..2015"),
        ], core=False),
        _t("qualifying", [
            _pk("qualifying id"),
            _fk("race id"),
            _fk("driver id"),
            _c("qualifying position", "int", "int:1..20"),
            _c("best milliseconds", "int", "int:66000..95000",
               "best qualifying lap in milliseconds"),
        ], fks=[("race id", "races", "race id"),
                ("driver id", "drivers", "driver id")], core=False),
    ),
    knowledge=(
        "first lap time refers to lap milliseconds where lap = 1",
        "podium finish refers to final position <= 3",
    ),
)

# ---------------------------------------------------------------------------
# 2. Schools (california_schools-like; Figure 1(b) example domain)
# ---------------------------------------------------------------------------

SCHOOLS = DomainSpec(
    name="schools",
    tables=(
        _t("schools", [
            _pk("school id"),
            _fk("district id"),
            _c("school name", "text", "word", "name of the school"),
            _c("education operations", "text", "choice:Traditional|Charter|Virtual",
               None),  # deliberately undocumented, as in Figure 1(b)
            _c("record type", "text", "choice:Elementary|Middle|High", None),
            _c("city", "text", "city"),
            _c("charter", "bool", "bool", "whether the school is a charter school"),
            _c("open date", "date", "date"),
        ], fks=[("district id", "districts", "district id")]),
        _t("districts", [
            _pk("district id"),
            _c("district name", "text", "word", "name of the school district"),
            _c("county", "text", "city"),
            _c("superintendent", "text", "person_last"),
        ]),
        _t("test scores", [
            _pk("score id"),
            _fk("school id"),
            _c("subject", "text", "choice:Math|Reading|Science"),
            _c("average score", "real", "real:300..900", "mean scale score"),
            _c("test year", "int", "year:2015..2023"),
            _c("takers count", "int", "int:10..900", "number of test takers"),
        ], fks=[("school id", "schools", "school id")]),
        _t("staff", [
            _pk("staff id"),
            _fk("school id"),
            _c("full name", "text", "person_last"),
            _c("role", "text", "choice:Teacher|Counselor|Administrator"),
            _c("hire year", "int", "year:1995..2023"),
            _c("salary", "real", "real:38000..140000", "annual salary in dollars"),
        ], fks=[("school id", "schools", "school id")]),
        _t("programs", [
            _pk("program id"),
            _fk("school id"),
            _c("program name", "text", "choice:STEM|Arts|Athletics|Language"),
            _c("funded amount", "real", "real:4000..250000",
               "annual funding in dollars"),
        ], fks=[("school id", "schools", "school id")], core=False),
        _t("enrollment", [
            _pk("enrollment id"),
            _fk("school id"),
            _c("grade level", "int", "int:1..12"),
            _c("enrolled count", "int", "int:8..240", "students enrolled"),
            _c("year", "int", "year:2015..2023"),
        ], fks=[("school id", "schools", "school id")], core=False),
    ),
    knowledge=(
        "education operations describes how the school is operated, "
        "for example Charter or Traditional",
        "record type is the type of education record kept for the school",
    ),
)

# ---------------------------------------------------------------------------
# 3. Clinic (thrombosis_prediction-like; the T-BIL example)
# ---------------------------------------------------------------------------

CLINIC = DomainSpec(
    name="clinic",
    tables=(
        _t("patients", [
            _pk("patient id"),
            _c("first name", "text", "person_first"),
            _c("last name", "text", "person_last"),
            _c("birth date", "date", "date"),
            _c("sex", "text", "choice:F|M"),
            _c("admission", "bool", "bool", "whether the patient was admitted"),
        ]),
        _t("examinations", [
            _pk("examination id"),
            _fk("patient id"),
            _c("examination date", "date", "date"),
            _c("diagnosis", "text", "choice:SLE|APS|PSS|RA|Behcet"),
            _c("symptoms", "text", "choice:thrombosis|fever|rash|fatigue"),
            _c("severity", "int", "int:1..5", "clinical severity grade"),
        ], fks=[("patient id", "patients", "patient id")]),
        _t("laboratory results", [
            _pk("lab id"),
            _fk("patient id"),
            _c("lab date", "date", "date"),
            _c("total bilirubin", "real", "real:0.1..3.5", None),
            _c("total protein", "real", "real:4.0..9.5", None),
            _c("creatinine", "real", "real:0.4..2.8",
               "serum creatinine in mg/dL"),
            _c("glucose", "real", "real:60..240", "blood glucose in mg/dL"),
        ], fks=[("patient id", "patients", "patient id")]),
        _t("prescriptions", [
            _pk("prescription id"),
            _fk("patient id"),
            _c("drug name", "text", "choice:aspirin|warfarin|heparin|prednisone"),
            _c("daily dose", "real", "real:0.5..40", "dose in mg per day"),
            _c("start date", "date", "date"),
        ], fks=[("patient id", "patients", "patient id")], core=False),
        _t("doctors", [
            _pk("doctor id"),
            _c("doctor name", "text", "person_last"),
            _c("specialty", "text", "choice:hematology|rheumatology|internal"),
            _c("practice years", "int", "int:1..40"),
        ], core=False),
    ),
    knowledge=(
        "total bilirubin refers to the T-BIL laboratory measurement in mg/dL",
        "abnormal protein level refers to total protein < 6.0 or > 8.5",
    ),
)

# ---------------------------------------------------------------------------
# 4. Retail
# ---------------------------------------------------------------------------

RETAIL = DomainSpec(
    name="retail",
    tables=(
        _t("customers", [
            _pk("customer id"),
            _c("customer name", "text", "person_last"),
            _c("city", "text", "city"),
            _c("segment", "text", "choice:Consumer|Corporate|Home Office"),
            _c("signup date", "date", "date"),
        ]),
        _t("products", [
            _pk("product id"),
            _c("product name", "text", "word"),
            _c("category", "text", "choice:Furniture|Technology|Office Supplies"),
            _c("unit price", "real", "real:2..900", "price per unit in dollars"),
            _c("stock quantity", "int", "int:0..500"),
        ]),
        _t("orders", [
            _pk("order id"),
            _fk("customer id"),
            _c("order date", "date", "date"),
            _c("ship mode", "text", "choice:Standard|Express|Same Day"),
            _c("discount", "real", "real:0..0.5", "fractional discount applied"),
        ], fks=[("customer id", "customers", "customer id")]),
        _t("order items", [
            _pk("item id"),
            _fk("order id"),
            _fk("product id"),
            _c("quantity", "int", "int:1..12"),
            _c("sales amount", "real", "real:5..2400", "line revenue in dollars"),
        ], fks=[("order id", "orders", "order id"),
                ("product id", "products", "product id")]),
        _t("suppliers", [
            _pk("supplier id"),
            _c("supplier name", "text", "company"),
            _c("country", "text", "country"),
            _c("rating", "int", "int:1..5", "supplier quality rating"),
        ], core=False),
        _t("stores", [
            _pk("store id"),
            _c("store name", "text", "word"),
            _c("city", "text", "city"),
            _c("square feet", "int", "int:900..40000"),
        ], core=False),
    ),
    knowledge=("sales amount already includes the discount",),
)

# ---------------------------------------------------------------------------
# 5. Airlines
# ---------------------------------------------------------------------------

AIRLINES = DomainSpec(
    name="airlines",
    tables=(
        _t("airlines", [
            _pk("airline id"),
            _c("airline name", "text", "company"),
            _c("country", "text", "country"),
            _c("fleet size", "int", "int:4..300", "number of aircraft operated"),
        ]),
        _t("airports", [
            _pk("airport id"),
            _c("airport name", "text", "word"),
            _c("city", "text", "city"),
            _c("country", "text", "country"),
            _c("elevation", "int", "int:0..2700", "elevation in feet"),
        ]),
        _t("flights", [
            _pk("flight id"),
            _fk("airline id"),
            _fk("origin airport id"),
            _fk("destination airport id"),
            _c("flight date", "date", "date"),
            _c("departure delay", "int", "int:-10..180",
               "departure delay in minutes; negative means early"),
            _c("distance", "int", "int:90..5400", "distance in miles"),
        ], fks=[("airline id", "airlines", "airline id"),
                ("origin airport id", "airports", "airport id"),
                ("destination airport id", "airports", "airport id")]),
        _t("passengers", [
            _pk("passenger id"),
            _c("passenger name", "text", "person_last"),
            _c("nationality", "text", "nationality"),
            _c("frequent flyer", "bool", "bool"),
        ], core=False),
        _t("bookings", [
            _pk("booking id"),
            _fk("flight id"),
            _fk("passenger id"),
            _c("seat class", "text", "choice:Economy|Business|First"),
            _c("fare", "real", "real:60..4200", "ticket price in dollars"),
        ], fks=[("flight id", "flights", "flight id"),
                ("passenger id", "passengers", "passenger id")], core=False),
    ),
    knowledge=("a delayed flight refers to departure delay > 15 minutes",),
)

# ---------------------------------------------------------------------------
# 6. Library
# ---------------------------------------------------------------------------

LIBRARY = DomainSpec(
    name="library",
    tables=(
        _t("authors", [
            _pk("author id"),
            _c("author name", "text", "person_last"),
            _c("birth year", "int", "year:1890..1995"),
            _c("nationality", "text", "nationality"),
        ]),
        _t("books", [
            _pk("book id"),
            _fk("author id"),
            _c("title", "text", "word"),
            _c("publish year", "int", "year:1950..2023"),
            _c("genre", "text", "choice:Fiction|History|Science|Poetry"),
            _c("page count", "int", "int:60..1200"),
        ], fks=[("author id", "authors", "author id")]),
        _t("members", [
            _pk("member id"),
            _c("member name", "text", "person_last"),
            _c("join date", "date", "date"),
            _c("membership level", "text", "choice:Basic|Plus|Student"),
        ]),
        _t("loans", [
            _pk("loan id"),
            _fk("book id"),
            _fk("member id"),
            _c("loan date", "date", "date"),
            _c("days out", "int", "int:1..60", "days the book has been out"),
            _c("returned", "bool", "bool"),
        ], fks=[("book id", "books", "book id"),
                ("member id", "members", "member id")]),
        _t("branches", [
            _pk("branch id"),
            _c("branch name", "text", "word"),
            _c("city", "text", "city"),
            _c("opened year", "int", "year:1930..2020"),
        ], core=False),
        _t("reservations", [
            _pk("reservation id"),
            _fk("book id"),
            _fk("member id"),
            _c("reserved date", "date", "date"),
            _c("fulfilled", "bool", "bool"),
        ], fks=[("book id", "books", "book id"),
                ("member id", "members", "member id")], core=False),
    ),
    knowledge=("an overdue loan refers to days out > 28 and returned = 0",),
)

# ---------------------------------------------------------------------------
# 7. Company HR
# ---------------------------------------------------------------------------

COMPANY = DomainSpec(
    name="company",
    tables=(
        _t("departments", [
            _pk("department id"),
            _c("department name", "text",
               "choice:Engineering|Sales|Finance|Marketing|Support"),
            _c("budget", "real", "real:200000..9000000", "annual budget in dollars"),
        ]),
        _t("employees", [
            _pk("employee id"),
            _fk("department id"),
            _c("employee name", "text", "person_last"),
            _c("hire date", "date", "date"),
            _c("annual salary", "real", "real:42000..260000"),
            _c("performance rating", "int", "int:1..5", None),
        ], fks=[("department id", "departments", "department id")]),
        _t("projects", [
            _pk("project id"),
            _fk("department id"),
            _c("project name", "text", "word"),
            _c("start date", "date", "date"),
            _c("budget amount", "real", "real:10000..2000000"),
            _c("status", "text", "choice:active|completed|cancelled"),
        ], fks=[("department id", "departments", "department id")]),
        _t("assignments", [
            _pk("assignment id"),
            _fk("employee id"),
            _fk("project id"),
            _c("allocated hours", "int", "int:10..800"),
            _c("role", "text", "choice:lead|contributor|reviewer"),
        ], fks=[("employee id", "employees", "employee id"),
                ("project id", "projects", "project id")]),
        _t("offices", [
            _pk("office id"),
            _c("office city", "text", "city"),
            _c("capacity", "int", "int:10..800"),
            _c("lease cost", "real", "real:4000..220000", "monthly lease in dollars"),
        ], core=False),
    ),
    knowledge=("a senior employee refers to performance rating >= 4",),
)

# ---------------------------------------------------------------------------
# 8. Movies
# ---------------------------------------------------------------------------

MOVIES = DomainSpec(
    name="movies",
    tables=(
        _t("directors", [
            _pk("director id"),
            _c("director name", "text", "person_last"),
            _c("birth year", "int", "year:1930..1992"),
            _c("nationality", "text", "nationality"),
        ]),
        _t("movies", [
            _pk("movie id"),
            _fk("director id"),
            _c("title", "text", "word"),
            _c("release year", "int", "year:1970..2023"),
            _c("runtime minutes", "int", "int:70..210"),
            _c("gross revenue", "real", "real:100000..900000000",
               "worldwide gross in dollars"),
        ], fks=[("director id", "directors", "director id")]),
        _t("actors", [
            _pk("actor id"),
            _c("actor name", "text", "person_last"),
            _c("birth year", "int", "year:1935..2003"),
        ]),
        _t("casts", [
            _pk("cast id"),
            _fk("movie id"),
            _fk("actor id"),
            _c("character name", "text", "person_first"),
            _c("billing order", "int", "int:1..12", "credit order in the cast list"),
        ], fks=[("movie id", "movies", "movie id"),
                ("actor id", "actors", "actor id")]),
        _t("ratings", [
            _pk("rating id"),
            _fk("movie id"),
            _c("source", "text", "choice:critics|audience"),
            _c("score", "real", "real:1..10", "rating score out of 10"),
            _c("votes", "int", "int:50..900000"),
        ], fks=[("movie id", "movies", "movie id")], core=False),
        _t("studios", [
            _pk("studio id"),
            _c("studio name", "text", "company"),
            _c("founded year", "int", "year:1910..2010"),
        ], core=False),
    ),
    knowledge=("a blockbuster refers to gross revenue > 100000000",),
)

# ---------------------------------------------------------------------------
# 9. Soccer
# ---------------------------------------------------------------------------

SOCCER = DomainSpec(
    name="soccer",
    tables=(
        _t("teams", [
            _pk("team id"),
            _c("team name", "text", "word"),
            _c("city", "text", "city"),
            _c("founded year", "int", "year:1880..2005"),
        ]),
        _t("players", [
            _pk("player id"),
            _fk("team id"),
            _c("player name", "text", "person_last"),
            _c("position", "text", "choice:GK|DF|MF|FW"),
            _c("birth year", "int", "year:1985..2006"),
            _c("market value", "real", "real:100000..120000000",
               "market value in euros"),
        ], fks=[("team id", "teams", "team id")]),
        _t("matches", [
            _pk("match id"),
            _fk("home team id"),
            _fk("away team id"),
            _c("match date", "date", "date"),
            _c("home score", "int", "int:0..6"),
            _c("away score", "int", "int:0..6"),
            _c("attendance", "int", "int:800..85000"),
        ], fks=[("home team id", "teams", "team id"),
                ("away team id", "teams", "team id")]),
        _t("goals", [
            _pk("goal id"),
            _fk("match id"),
            _fk("player id"),
            _c("minute", "int", "int:1..95", "minute the goal was scored"),
            _c("penalty", "bool", "bool"),
        ], fks=[("match id", "matches", "match id"),
                ("player id", "players", "player id")]),
        _t("stadiums", [
            _pk("stadium id"),
            _c("stadium name", "text", "word"),
            _c("capacity", "int", "int:5000..99000"),
            _c("city", "text", "city"),
        ], core=False),
        _t("transfers", [
            _pk("transfer id"),
            _fk("player id"),
            _c("fee", "real", "real:0..200000000", "transfer fee in euros"),
            _c("transfer date", "date", "date"),
        ], fks=[("player id", "players", "player id")], core=False),
    ),
    knowledge=("a hat-trick refers to a player scoring 3 goals in one match",),
)

# ---------------------------------------------------------------------------
# 10. Banking
# ---------------------------------------------------------------------------

BANKING = DomainSpec(
    name="banking",
    tables=(
        _t("clients", [
            _pk("client id"),
            _c("client name", "text", "person_last"),
            _c("birth date", "date", "date"),
            _c("district", "text", "city"),
        ]),
        _t("accounts", [
            _pk("account id"),
            _fk("client id"),
            _c("open date", "date", "date"),
            _c("account type", "text", "choice:checking|savings|credit"),
            _c("balance", "real", "real:-2000..400000", "current balance in dollars"),
        ], fks=[("client id", "clients", "client id")]),
        _t("transactions", [
            _pk("transaction id"),
            _fk("account id"),
            _c("transaction date", "date", "date"),
            _c("amount", "real", "real:1..9000", "transaction amount in dollars"),
            _c("operation", "text", "choice:deposit|withdrawal|transfer|payment"),
        ], fks=[("account id", "accounts", "account id")]),
        _t("loans", [
            _pk("loan id"),
            _fk("account id"),
            _c("loan amount", "real", "real:1000..500000"),
            _c("duration months", "int", "int:6..360"),
            _c("loan status", "text", "choice:active|paid|defaulted"),
        ], fks=[("account id", "accounts", "account id")]),
        _t("cards", [
            _pk("card id"),
            _fk("account id"),
            _c("card type", "text", "choice:debit|classic|gold"),
            _c("issued date", "date", "date"),
        ], fks=[("account id", "accounts", "account id")], core=False),
        _t("branches", [
            _pk("branch id"),
            _c("branch city", "text", "city"),
            _c("established year", "int", "year:1950..2015"),
        ], core=False),
    ),
    knowledge=("an overdrawn account refers to balance < 0",),
)

# ---------------------------------------------------------------------------
# 11. Music
# ---------------------------------------------------------------------------

MUSIC = DomainSpec(
    name="music",
    tables=(
        _t("artists", [
            _pk("artist id"),
            _c("artist name", "text", "person_last"),
            _c("country", "text", "country"),
            _c("formed year", "int", "year:1960..2018"),
        ]),
        _t("albums", [
            _pk("album id"),
            _fk("artist id"),
            _c("album title", "text", "word"),
            _c("release year", "int", "year:1965..2023"),
            _c("label", "text", "company"),
        ], fks=[("artist id", "artists", "artist id")]),
        _t("tracks", [
            _pk("track id"),
            _fk("album id"),
            _c("track title", "text", "word"),
            _c("duration seconds", "int", "int:90..720"),
            _c("play count", "int", "int:1000..90000000", "streaming play count"),
        ], fks=[("album id", "albums", "album id")]),
        _t("playlists", [
            _pk("playlist id"),
            _c("playlist name", "text", "word"),
            _c("follower count", "int", "int:10..4000000"),
        ], core=False),
        _t("playlist tracks", [
            _pk("entry id"),
            _fk("playlist id"),
            _fk("track id"),
            _c("added date", "date", "date"),
        ], fks=[("playlist id", "playlists", "playlist id"),
                ("track id", "tracks", "track id")], core=False),
        _t("concerts", [
            _pk("concert id"),
            _fk("artist id"),
            _c("venue city", "text", "city"),
            _c("concert date", "date", "date"),
            _c("tickets sold", "int", "int:200..90000"),
        ], fks=[("artist id", "artists", "artist id")], core=False),
    ),
    knowledge=("a hit track refers to play count > 10000000",),
)

# ---------------------------------------------------------------------------
# 12. University
# ---------------------------------------------------------------------------

UNIVERSITY = DomainSpec(
    name="university",
    tables=(
        _t("departments", [
            _pk("department id"),
            _c("department name", "text",
               "choice:Computer Science|Mathematics|Physics|History|Biology"),
            _c("building", "text", "word"),
            _c("research budget", "real", "real:100000..12000000"),
        ]),
        _t("instructors", [
            _pk("instructor id"),
            _fk("department id"),
            _c("instructor name", "text", "person_last"),
            _c("rank", "text", "choice:assistant|associate|full"),
            _c("salary", "real", "real:60000..240000"),
        ], fks=[("department id", "departments", "department id")]),
        _t("students", [
            _pk("student id"),
            _fk("department id"),
            _c("student name", "text", "person_last"),
            _c("entry year", "int", "year:2016..2023"),
            _c("gpa", "real", "real:1.8..4.0", "grade point average"),
        ], fks=[("department id", "departments", "department id")]),
        _t("courses", [
            _pk("course id"),
            _fk("department id"),
            _c("course title", "text", "word"),
            _c("credits", "int", "int:1..6"),
            _c("capacity", "int", "int:10..300"),
        ], fks=[("department id", "departments", "department id")]),
        _t("enrollments", [
            _pk("enrollment id"),
            _fk("student id"),
            _fk("course id"),
            _c("semester", "text", "choice:Fall|Winter|Summer"),
            _c("grade", "real", "real:0..4.0", "final grade on a 4-point scale"),
        ], fks=[("student id", "students", "student id"),
                ("course id", "courses", "course id")]),
        _t("scholarships", [
            _pk("scholarship id"),
            _fk("student id"),
            _c("award amount", "real", "real:500..40000"),
            _c("award year", "int", "year:2016..2023"),
        ], fks=[("student id", "students", "student id")], core=False),
    ),
    knowledge=("dean's list refers to gpa >= 3.7",),
)

ALL_DOMAINS: tuple[DomainSpec, ...] = (
    RACING,
    SCHOOLS,
    CLINIC,
    RETAIL,
    AIRLINES,
    LIBRARY,
    COMPANY,
    MOVIES,
    SOCCER,
    BANKING,
    MUSIC,
    UNIVERSITY,
)


def domain_by_name(name: str) -> DomainSpec:
    for d in ALL_DOMAINS:
        if d.name == name:
            return d
    raise KeyError(f"unknown domain {name!r}")
