"""Spider-like benchmark builder.

Spider's signature properties, mirrored here: clean identifiers (a mix of
snake_case and camelCase databases), no external knowledge, and a
difficulty mix lighter than BIRD's. The real release has 200 databases and
8 659 training samples; ``CorpusScale`` scales this down by default (see
DESIGN.md §2).
"""

from __future__ import annotations

from repro.corpus.builders import assemble_benchmark
from repro.corpus.dataset import Benchmark
from repro.corpus.generator import CorpusScale
from repro.schema.naming import NamingStyle

__all__ = ["SpiderBuilder"]


class SpiderBuilder:
    """Builds a Spider-like clean, cross-domain benchmark."""

    DIFFICULTY_MIX = {"simple": 0.45, "moderate": 0.40, "challenging": 0.15}

    def __init__(self, seed: int = 0, scale: "CorpusScale | None" = None):
        self.seed = seed
        self.scale = scale or CorpusScale.small()

    def build(self) -> Benchmark:
        return assemble_benchmark(
            name="spider",
            seed=self.seed,
            scale=self.scale,
            style_for=lambda i: (
                NamingStyle.SNAKE if i % 2 == 0 else NamingStyle.CAMEL
            ),
            difficulty_mix=self.DIFFICULTY_MIX,
            keep_knowledge=False,
            knowledge_fraction=0.0,
        )
