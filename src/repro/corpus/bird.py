"""BIRD-like benchmark builder.

BIRD's signature properties, mirrored here: *dirty* identifiers retaining
real-world abbreviations (``EdOps``, ``T_BIL``), partially missing column
descriptions, external-knowledge snippets that some questions need, and a
heavier difficulty mix. These are exactly the hazards the paper's Figure 1
attributes schema-linking errors to, and they drive the simulated linker's
error propensity (emergently — there are no per-benchmark accuracy
constants anywhere in the library).
"""

from __future__ import annotations

from repro.corpus.builders import assemble_benchmark
from repro.corpus.dataset import Benchmark
from repro.corpus.generator import CorpusScale
from repro.schema.naming import NamingStyle

__all__ = ["BirdBuilder"]


class BirdBuilder:
    """Builds a BIRD-like dirty, knowledge-augmented benchmark."""

    DIFFICULTY_MIX = {"simple": 0.30, "moderate": 0.40, "challenging": 0.30}
    KNOWLEDGE_FRACTION = 0.25

    def __init__(self, seed: int = 0, scale: "CorpusScale | None" = None):
        self.seed = seed
        self.scale = scale or CorpusScale.small()

    def build(self) -> Benchmark:
        return assemble_benchmark(
            name="bird",
            seed=self.seed,
            scale=self.scale,
            style_for=lambda i: NamingStyle.DIRTY,
            difficulty_mix=self.DIFFICULTY_MIX,
            keep_knowledge=True,
            knowledge_fraction=self.KNOWLEDGE_FRACTION,
        )
