"""Synthetic text-to-SQL benchmark corpus.

Builds Spider-like (clean) and BIRD-like (dirty, knowledge-augmented)
benchmarks: databases with FK-consistent data, natural-language questions,
gold SQL as an AST, gold schema links and difficulty labels — everything
the RTS evaluation protocol needs.

The real Spider/BIRD releases are not redistributable and unavailable
offline; see DESIGN.md §2 for why this synthetic substitution preserves
the behaviours the paper measures.
"""

from repro.corpus.sqlast import (
    ColumnRef,
    Condition,
    JoinEdge,
    OrderTerm,
    SelectItem,
    SelectQuery,
    Subquery,
)
from repro.corpus.dataset import Benchmark, Example, InstanceFeatures, Split
from repro.corpus.generator import CorpusScale, DatabaseFactory, PopulatedDatabase
from repro.corpus.spider import SpiderBuilder
from repro.corpus.bird import BirdBuilder

__all__ = [
    "ColumnRef",
    "Condition",
    "JoinEdge",
    "OrderTerm",
    "SelectItem",
    "SelectQuery",
    "Subquery",
    "Benchmark",
    "Example",
    "InstanceFeatures",
    "Split",
    "CorpusScale",
    "DatabaseFactory",
    "PopulatedDatabase",
    "SpiderBuilder",
    "BirdBuilder",
]
