"""Database generation: from domain blueprints to populated databases.

A :class:`DatabaseFactory` samples concrete databases from
:mod:`repro.corpus.domains` blueprints — choosing a table subset, applying
a naming style (clean or dirty), and populating FK-consistent rows — and
returns :class:`PopulatedDatabase` objects ready for SQLite
materialization and question generation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.domains import ALL_DOMAINS, DomainSpec, TableSpec
from repro.corpus.values import draw_value
from repro.schema.column import Column
from repro.schema.database import Database
from repro.schema.naming import NamingStyle, rename_database
from repro.schema.table import ForeignKey, Table
from repro.utils.rng import RngFactory
from repro.utils.text import to_snake_case

__all__ = ["CorpusScale", "PopulatedDatabase", "DatabaseFactory"]


@dataclass(frozen=True)
class CorpusScale:
    """Size knobs for benchmark generation.

    The paper's benchmarks are large (Spider: 200 DBs / 8 659 train
    questions); the default experiment scale is reduced so a full
    reproduction runs in minutes on a laptop while keeping every split and
    difficulty tier populated.
    """

    n_databases: int
    train_per_db: int
    dev_per_db: int
    test_per_db: int
    min_rows: int = 10
    max_rows: int = 60

    @classmethod
    def tiny(cls) -> "CorpusScale":
        """For unit tests: a handful of everything."""
        return cls(n_databases=3, train_per_db=8, dev_per_db=4, test_per_db=4,
                   min_rows=6, max_rows=16)

    @classmethod
    def small(cls) -> "CorpusScale":
        """Default experiment scale (minutes per experiment)."""
        return cls(n_databases=18, train_per_db=64, dev_per_db=14, test_per_db=14)

    @classmethod
    def medium(cls) -> "CorpusScale":
        return cls(n_databases=36, train_per_db=60, dev_per_db=18, test_per_db=18)

    @classmethod
    def paper(cls) -> "CorpusScale":
        """Approximates the real benchmark sizes (slow)."""
        return cls(n_databases=96, train_per_db=96, dev_per_db=16, test_per_db=16)

    @property
    def n_train(self) -> int:
        return self.n_databases * self.train_per_db

    @property
    def n_dev(self) -> int:
        return self.n_databases * self.dev_per_db


@dataclass
class PopulatedDatabase:
    """A schema together with its generated rows (per physical table name)."""

    schema: Database
    rows: dict[str, list[tuple]]

    @property
    def name(self) -> str:
        return self.schema.name

    def n_rows(self, table: str) -> int:
        return len(self.rows[self.schema.table(table).name])

    def column_values(self, table: str, column: str) -> list:
        """Distinct non-null values of ``table.column`` in generation order."""
        t = self.schema.table(table)
        idx = [c.name for c in t.columns].index(t.column(column).name)
        seen: set = set()
        out: list = []
        for row in self.rows[t.name]:
            v = row[idx]
            if v is None or v in seen:
                continue
            seen.add(v)
            out.append(v)
        return out


class DatabaseFactory:
    """Samples populated databases from domain blueprints."""

    def __init__(self, seed: int, style: NamingStyle, scale: CorpusScale):
        self.style = style
        self.scale = scale
        self._rngs = RngFactory(seed)

    # -- schema sampling ---------------------------------------------------

    def _instantiate_schema(
        self, spec: DomainSpec, db_name: str, rng: np.random.Generator
    ) -> Database:
        """Pick a table subset and build a snake_case schema for it."""
        chosen: list[TableSpec] = list(spec.core_tables)
        for opt in spec.optional_tables:
            if rng.random() < 0.55:
                chosen.append(opt)
        chosen_names = {to_snake_case(list(t.words)) for t in chosen}

        tables: list[Table] = []
        for tspec in chosen:
            cols = tuple(
                Column(
                    name=to_snake_case(list(cs.words)),
                    ctype=cs.ctype,
                    semantic_words=cs.words,
                    description=cs.description,
                    is_primary=cs.is_primary,
                    value_pool=cs.pool,
                )
                for cs in tspec.columns
            )
            fks = tuple(
                ForeignKey(
                    column=to_snake_case(col_words.split()),
                    ref_table=to_snake_case(ref_table.split()),
                    ref_column=to_snake_case(ref_col.split()),
                )
                for (col_words, ref_table, ref_col) in tspec.fks
                if to_snake_case(ref_table.split()) in chosen_names
            )
            tables.append(
                Table(
                    name=to_snake_case(list(tspec.words)),
                    columns=cols,
                    semantic_words=tspec.words,
                    description=tspec.description,
                    foreign_keys=fks,
                )
            )
        return Database(
            name=db_name,
            tables=tuple(tables),
            domain=spec.name,
            knowledge=spec.knowledge,
        )

    # -- data population ---------------------------------------------------

    @staticmethod
    def _topological_order(db: Database) -> list[Table]:
        """Parents before children so FK values exist when drawn."""
        remaining = {t.name: t for t in db.tables}
        ordered: list[Table] = []
        while remaining:
            progressed = False
            for name in list(remaining):
                table = remaining[name]
                deps = {
                    fk.ref_table
                    for fk in table.foreign_keys
                    if fk.ref_table != table.name
                }
                if all(dep not in remaining for dep in deps):
                    ordered.append(table)
                    del remaining[name]
                    progressed = True
            if not progressed:  # FK cycle: emit in declaration order
                ordered.extend(remaining.values())
                break
        return ordered

    def _populate(
        self, db: Database, rng: np.random.Generator
    ) -> dict[str, list[tuple]]:
        rows: dict[str, list[tuple]] = {}
        for table in self._topological_order(db):
            has_fk = bool(table.foreign_keys)
            lo, hi = self.scale.min_rows, self.scale.max_rows
            n = int(rng.integers(lo, hi + 1)) if has_fk else int(
                rng.integers(max(4, lo // 2), max(6, hi // 2) + 1)
            )
            fk_by_column = {fk.column: fk for fk in table.foreign_keys}
            table_rows: list[tuple] = []
            for i in range(n):
                record: list[object] = []
                for col in table.columns:
                    if col.is_primary:
                        record.append(i + 1)
                    elif col.name in fk_by_column:
                        fk = fk_by_column[col.name]
                        parent_rows = rows.get(fk.ref_table, [])
                        if not parent_rows:
                            record.append(None)
                            continue
                        parent = db.table(fk.ref_table)
                        ref_idx = [c.name for c in parent.columns].index(
                            parent.column(fk.ref_column).name
                        )
                        pick = parent_rows[int(rng.integers(0, len(parent_rows)))]
                        record.append(pick[ref_idx])
                    elif col.value_pool == "serial":
                        record.append(i + 1)
                    else:
                        record.append(draw_value(col.value_pool, rng))
                table_rows.append(tuple(record))
            rows[table.name] = table_rows
        return rows

    # -- public API ---------------------------------------------------------

    def build_database(
        self, index: int, style: "NamingStyle | None" = None
    ) -> PopulatedDatabase:
        """Build the ``index``-th database (deterministic per seed).

        ``style`` overrides the factory default — Spider-like corpora mix
        snake_case and camelCase databases.
        """
        style = style or self.style
        spec = ALL_DOMAINS[index % len(ALL_DOMAINS)]
        generation = index // len(ALL_DOMAINS)
        db_name = spec.name if generation == 0 else f"{spec.name}_{generation + 1}"
        schema_rng = self._rngs.get("schema", index)
        db = self._instantiate_schema(spec, db_name, schema_rng)
        if style is not NamingStyle.SNAKE:
            db = rename_database(db, style, self._rngs.get("naming", index))
        data_rng = self._rngs.get("data", index)
        return PopulatedDatabase(schema=db, rows=self._populate(db, data_rng))

    def build_all(self) -> list[PopulatedDatabase]:
        return [self.build_database(i) for i in range(self.scale.n_databases)]
