"""Dataset containers: examples, splits, and whole benchmarks.

An :class:`Example` packages one natural-language question with its gold
SQL AST, gold schema links, difficulty tier, and the instance features
that drive the simulated linker's error propensity (see
:mod:`repro.llm.errors`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.generator import PopulatedDatabase
from repro.corpus.sqlast import SelectQuery
from repro.schema.catalog import Catalog

__all__ = ["InstanceFeatures", "Example", "Split", "Benchmark", "DIFFICULTIES"]

DIFFICULTIES = ("simple", "moderate", "challenging")


@dataclass(frozen=True)
class InstanceFeatures:
    """Measured linking-difficulty features of one example.

    These are *observable properties of the (question, schema) pair* —
    ambiguous surface terms, dirty identifier gaps, schema size — not
    labels. The simulated LLM converts them into an error propensity the
    same way a real fine-tuned linker's error rate grows with ambiguity
    and missing metadata (paper §1, Figure 1).
    """

    table_ambiguity: float
    column_ambiguity: float
    dirty_gap: float
    needs_knowledge: bool
    n_tables: int
    n_gold_tables: int
    n_gold_columns: int

    def __post_init__(self) -> None:
        for name in ("table_ambiguity", "column_ambiguity", "dirty_gap"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")


@dataclass(frozen=True)
class Example:
    """One benchmark sample: question, gold SQL, gold links, metadata."""

    example_id: str
    db_id: str
    question: str
    query: SelectQuery
    difficulty: str
    features: InstanceFeatures
    knowledge: "str | None" = None

    def __post_init__(self) -> None:
        if self.difficulty not in DIFFICULTIES:
            raise ValueError(f"unknown difficulty {self.difficulty!r}")

    @property
    def gold_sql(self) -> str:
        return self.query.render()

    @property
    def gold_tables(self) -> tuple[str, ...]:
        return self.query.tables_used()

    @property
    def gold_columns(self) -> dict[str, tuple[str, ...]]:
        return self.query.columns_used()


@dataclass
class Split:
    """A named list of examples (train / dev / test)."""

    name: str
    examples: list[Example] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self):
        return iter(self.examples)

    def by_difficulty(self, difficulty: str) -> list[Example]:
        return [e for e in self.examples if e.difficulty == difficulty]

    def subset(self, n: int) -> "Split":
        return Split(self.name, self.examples[:n])


@dataclass
class Benchmark:
    """A complete benchmark: databases (with data) plus question splits."""

    name: str
    databases: dict[str, PopulatedDatabase]
    train: Split
    dev: Split
    test: Split

    def database(self, db_id: str) -> PopulatedDatabase:
        return self.databases[db_id]

    def split(self, name: str) -> Split:
        try:
            return {"train": self.train, "dev": self.dev, "test": self.test}[name]
        except KeyError:
            raise KeyError(f"no split {name!r} in benchmark {self.name!r}") from None

    @property
    def catalog(self) -> Catalog:
        cat = Catalog(self.name)
        for pdb in self.databases.values():
            cat.add(pdb.schema)
        return cat

    def card(self) -> dict[str, object]:
        """A dataset card with the headline statistics."""
        return {
            "name": self.name,
            "databases": len(self.databases),
            "train": len(self.train),
            "dev": len(self.dev),
            "test": len(self.test),
            "dirty": any(p.schema.dirty for p in self.databases.values()),
            **{
                f"dev_{d}": len(self.dev.by_difficulty(d))
                for d in DIFFICULTIES
            },
        }
