"""A small SQL AST: enough of SELECT to cover the benchmark query space.

The question generator builds gold queries as ASTs; the downstream SQL
generator corrupts ASTs; the executor renders them to SQLite SQL. Keeping
queries structured (rather than strings) is what lets us compute gold
schema links exactly and apply realistic corruptions.

Supported surface: single-table and multi-join SELECTs, aggregates,
DISTINCT, WHERE conjunctions, GROUP BY / HAVING, ORDER BY / LIMIT, and
scalar subqueries in comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

__all__ = [
    "ColumnRef",
    "SelectItem",
    "Condition",
    "JoinEdge",
    "OrderTerm",
    "Subquery",
    "SelectQuery",
]

_VALID_OPS = {"=", "!=", "<", "<=", ">", ">=", "LIKE"}
_VALID_AGGS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass(frozen=True)
class ColumnRef:
    """A qualified column reference ``table.column``."""

    table: str
    column: str

    def render(self, qualify: bool = True) -> str:
        return f"{self.table}.{self.column}" if qualify else self.column

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class SelectItem:
    """One item of the SELECT list.

    ``agg is None`` -> plain column; ``col is None`` (with ``agg='COUNT'``)
    -> ``COUNT(*)``.
    """

    col: "ColumnRef | None" = None
    agg: "str | None" = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.agg is not None and self.agg not in _VALID_AGGS:
            raise ValueError(f"unknown aggregate {self.agg!r}")
        if self.col is None and self.agg != "COUNT":
            raise ValueError("only COUNT may omit a column (COUNT(*))")

    def render(self, qualify: bool = True) -> str:
        inner = "*" if self.col is None else self.col.render(qualify)
        if self.distinct and self.col is not None:
            inner = f"DISTINCT {inner}"
        if self.agg:
            return f"{self.agg}({inner})"
        return inner


@dataclass(frozen=True)
class Subquery:
    """A scalar subquery used as a comparison value."""

    query: "SelectQuery"

    def render(self) -> str:
        return f"({self.query.render()})"


@dataclass(frozen=True)
class Condition:
    """A comparison ``lhs op value``; value is a literal or scalar subquery.

    When ``agg`` is set the condition lives in HAVING and compares
    ``agg(lhs)`` (or COUNT(*) when ``col is None``).
    """

    col: "ColumnRef | None"
    op: str
    value: object
    agg: "str | None" = None

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise ValueError(f"unknown operator {self.op!r}")
        if self.agg is not None and self.agg not in _VALID_AGGS:
            raise ValueError(f"unknown aggregate {self.agg!r}")
        if self.col is None and self.agg != "COUNT":
            raise ValueError("only COUNT(*) conditions may omit a column")

    def lhs(self, qualify: bool = True) -> str:
        inner = "*" if self.col is None else self.col.render(qualify)
        return f"{self.agg}({inner})" if self.agg else inner

    def render_value(self) -> str:
        if isinstance(self.value, Subquery):
            return self.value.render()
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, bool):
            return "1" if self.value else "0"
        if isinstance(self.value, float):
            return f"{self.value:g}"
        return str(self.value)

    def render(self, qualify: bool = True) -> str:
        return f"{self.lhs(qualify)} {self.op} {self.render_value()}"


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join ``left.lcol = right.rcol`` between two FROM tables."""

    left: ColumnRef
    right: ColumnRef

    def render(self) -> str:
        return f"{self.left.render()} = {self.right.render()}"


@dataclass(frozen=True)
class OrderTerm:
    """ORDER BY term: a column or aggregate expression plus direction."""

    col: "ColumnRef | None"
    direction: str = "ASC"
    agg: "str | None" = None

    def __post_init__(self) -> None:
        if self.direction not in ("ASC", "DESC"):
            raise ValueError(f"bad direction {self.direction!r}")
        if self.agg is not None and self.agg not in _VALID_AGGS:
            raise ValueError(f"unknown aggregate {self.agg!r}")
        if self.col is None and self.agg != "COUNT":
            raise ValueError("only COUNT(*) order terms may omit a column")

    def render(self, qualify: bool = True) -> str:
        inner = "*" if self.col is None else self.col.render(qualify)
        expr = f"{self.agg}({inner})" if self.agg else inner
        return f"{expr} {self.direction}"


@dataclass(frozen=True)
class SelectQuery:
    """A SELECT statement over one or more joined tables."""

    select: tuple[SelectItem, ...]
    tables: tuple[str, ...]
    joins: tuple[JoinEdge, ...] = ()
    where: tuple[Condition, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    having: tuple[Condition, ...] = ()
    order_by: tuple[OrderTerm, ...] = ()
    limit: "int | None" = None

    def __post_init__(self) -> None:
        if not self.select:
            raise ValueError("SELECT list must be non-empty")
        if not self.tables:
            raise ValueError("FROM list must be non-empty")
        if len(self.tables) > 1 and len(self.joins) < len(self.tables) - 1:
            raise ValueError(
                f"{len(self.tables)} tables require >= {len(self.tables) - 1} joins"
            )

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        qualify = len(self.tables) > 1
        parts = ["SELECT " + ", ".join(s.render(qualify) for s in self.select)]
        if len(self.tables) == 1:
            parts.append(f"FROM {self.tables[0]}")
        else:
            from_clause = f"FROM {self.tables[0]}"
            remaining = list(self.joins)
            joined = {self.tables[0].lower()}
            for table in self.tables[1:]:
                edge = None
                for cand in remaining:
                    touches = {cand.left.table.lower(), cand.right.table.lower()}
                    if table.lower() in touches and touches & joined:
                        edge = cand
                        break
                if edge is None:
                    # Fall back to the next unused edge (still valid SQL).
                    edge = remaining[0]
                remaining.remove(edge)
                from_clause += f" JOIN {table} ON {edge.render()}"
                joined.add(table.lower())
            parts.append(from_clause)
        if self.where:
            parts.append("WHERE " + " AND ".join(c.render(qualify) for c in self.where))
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(c.render(qualify) for c in self.group_by))
        if self.having:
            parts.append("HAVING " + " AND ".join(c.render(qualify) for c in self.having))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.render(qualify) for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)

    def __str__(self) -> str:
        return self.render()

    # -- analysis ----------------------------------------------------------

    @property
    def has_order(self) -> bool:
        """Whether result comparison must be order-sensitive."""
        return bool(self.order_by)

    def _iter_conditions(self) -> Iterator[Condition]:
        yield from self.where
        yield from self.having

    def iter_column_refs(self) -> Iterator[ColumnRef]:
        """All column references anywhere in the query (incl. subqueries)."""
        for item in self.select:
            if item.col is not None:
                yield item.col
        for join in self.joins:
            yield join.left
            yield join.right
        for cond in self._iter_conditions():
            if cond.col is not None:
                yield cond.col
            if isinstance(cond.value, Subquery):
                yield from cond.value.query.iter_column_refs()
        yield from self.group_by
        for term in self.order_by:
            if term.col is not None:
                yield term.col

    def tables_used(self) -> tuple[str, ...]:
        """All tables referenced, including in subqueries, de-duplicated."""
        seen: set[str] = set()
        out: list[str] = []

        def visit(q: "SelectQuery") -> None:
            for t in q.tables:
                if t.lower() not in seen:
                    seen.add(t.lower())
                    out.append(t)
            for cond in q._iter_conditions():
                if isinstance(cond.value, Subquery):
                    visit(cond.value.query)

        visit(self)
        return tuple(out)

    def columns_used(self) -> dict[str, tuple[str, ...]]:
        """Gold column links: table -> columns referenced for that table."""
        by_table: dict[str, list[str]] = {}
        seen: set[tuple[str, str]] = set()
        for ref in self.iter_column_refs():
            key = (ref.table.lower(), ref.column.lower())
            if key in seen:
                continue
            seen.add(key)
            by_table.setdefault(ref.table, []).append(ref.column)
        return {t: tuple(cols) for t, cols in by_table.items()}

    # -- transformation ----------------------------------------------------

    def replace_column(self, old: ColumnRef, new: ColumnRef) -> "SelectQuery":
        """Substitute every occurrence of ``old`` with ``new`` (corruptions)."""

        def fix(ref: "ColumnRef | None") -> "ColumnRef | None":
            if ref is None:
                return None
            return new if (ref.table.lower(), ref.column.lower()) == (
                old.table.lower(),
                old.column.lower(),
            ) else ref

        select = tuple(replace(s, col=fix(s.col)) for s in self.select)
        joins = tuple(
            JoinEdge(left=fix(j.left), right=fix(j.right)) for j in self.joins
        )
        where = tuple(replace(c, col=fix(c.col)) for c in self.where)
        group = tuple(fix(c) for c in self.group_by)
        having = tuple(replace(c, col=fix(c.col)) for c in self.having)
        order = tuple(replace(o, col=fix(o.col)) for o in self.order_by)
        return replace(
            self,
            select=select,
            joins=joins,
            where=where,
            group_by=group,
            having=having,
            order_by=order,
        )
