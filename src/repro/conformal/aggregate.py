"""Aggregation of per-layer prediction sets (paper §3.2.3).

Two aggregators:

* :func:`majority_vote` — ``C_theta``: labels appearing in more than a
  ``theta`` fraction of the sets. Theorem 1 gives the coverage bound
  ``1 - alpha / (1 - theta)``; Theorem 2 bounds the aggregate size.
* :func:`random_permutation` — Algorithm 1: intersect the majority sets
  of every prefix of a random permutation. Theorem 3: same ``1 - 2 alpha``
  worst-case coverage as theta=1/2 majority voting, with a set never
  larger (often smaller).

Note on Algorithm 1 as printed: the paper initializes ``C_pi`` to the
empty set and then intersects, which would always yield the empty set; we
initialize to the full label universe, matching the accompanying prose
("elements supported by each prediction set across all prefixes") and the
proof of Theorem 3.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "majority_vote",
    "random_permutation",
    "majority_guarantee",
    "majority_size_bound",
]

_LABELS = (0, 1)


def majority_vote(
    sets: "Sequence[frozenset[int]]",
    theta: float = 0.5,
    strict: bool = True,
    labels: "tuple[int, ...]" = _LABELS,
) -> frozenset[int]:
    """``C_theta``: labels in more than (``>=`` when not strict) a theta
    fraction of the prediction sets."""
    if not sets:
        raise ValueError("need at least one prediction set")
    if not 0.0 <= theta < 1.0:
        raise ValueError(f"theta must be in [0, 1), got {theta}")
    n = len(sets)
    out = []
    for label in labels:
        count = sum(1 for s in sets if label in s)
        frac = count / n
        if (frac > theta) if strict else (frac >= theta):
            out.append(label)
    return frozenset(out)


def random_permutation(
    sets: "Sequence[frozenset[int]]",
    rng: np.random.Generator,
    labels: "tuple[int, ...]" = _LABELS,
) -> frozenset[int]:
    """Algorithm 1: prefix-majority intersection over a random permutation."""
    if not sets:
        raise ValueError("need at least one prediction set")
    order = rng.permutation(len(sets))
    result = set(labels)
    counts = {label: 0 for label in labels}
    for i, idx in enumerate(order, start=1):
        s = sets[int(idx)]
        for label in labels:
            if label in s:
                counts[label] += 1
        prefix_set = {label for label in labels if counts[label] >= i / 2.0}
        result &= prefix_set
        if not result:
            break
    return frozenset(result)


def majority_guarantee(alpha: float, theta: float = 0.5) -> float:
    """Theorem 1's coverage lower bound ``1 - alpha / (1 - theta)``."""
    if not 0.0 <= theta < 1.0:
        raise ValueError(f"theta must be in [0, 1), got {theta}")
    return max(0.0, 1.0 - alpha / (1.0 - theta))


def majority_size_bound(sizes: "Iterable[int]", theta: float = 0.5) -> float:
    """Theorem 2's size bound ``(1 / (n * theta)) * sum |C_i|``."""
    sizes = list(sizes)
    if not sizes:
        raise ValueError("need at least one set size")
    if theta <= 0.0:
        return float("inf")
    return sum(sizes) / (len(sizes) * theta)
