"""Conformal prediction: split/Mondrian calibration, the non-exchangeable
KNN-weighted variant, and multi-set aggregation (majority vote and the
random-permutation method of Algorithm 1).
"""

from repro.conformal.nonconformity import one_minus_true_prob
from repro.conformal.split import SplitConformalBinary
from repro.conformal.nonexchangeable import NonexchangeableConformalBinary
from repro.conformal.aggregate import (
    majority_vote,
    random_permutation,
    majority_guarantee,
    majority_size_bound,
)

__all__ = [
    "one_minus_true_prob",
    "SplitConformalBinary",
    "NonexchangeableConformalBinary",
    "majority_vote",
    "random_permutation",
    "majority_guarantee",
    "majority_size_bound",
]
