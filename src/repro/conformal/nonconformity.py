"""Nonconformity measures.

The paper uses the classic softmax-based score: ``1 - p(y* | x)`` where
``p`` comes from the underlying classifier (§3.2.2). Higher = the point
conforms less with the training distribution.
"""

from __future__ import annotations

import numpy as np

__all__ = ["one_minus_true_prob"]


def one_minus_true_prob(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """``1 - p(y_true | x)`` for each calibration point.

    Parameters
    ----------
    probs:
        ``(n, n_classes)`` class-probability matrix.
    labels:
        ``(n,)`` integer class labels.
    """
    probs = np.asarray(probs, dtype=float)
    labels = np.asarray(labels, dtype=int).ravel()
    if probs.ndim != 2:
        raise ValueError("probs must be 2-D (n, n_classes)")
    if labels.shape[0] != probs.shape[0]:
        raise ValueError("probs and labels must align")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= probs.shape[1]:
        raise ValueError("labels out of range for probs")
    return 1.0 - probs[np.arange(len(labels)), labels]
