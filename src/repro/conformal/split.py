"""Split conformal prediction for binary classifiers (paper §3.2.2).

Given a calibration set scored with the ``1 - p(y*|x)`` nonconformity,
the threshold is the finite-sample-corrected quantile
``ceil((n+1)(1-alpha))/n``; the prediction set for a test point is every
label whose softmax probability clears ``1 - epsilon``.

Two calibration modes:

* **marginal** — one threshold from all calibration points (the paper's
  construction; guarantee is marginal over the joint distribution);
* **Mondrian** — per-class thresholds, giving class-conditional coverage.
  Branching points are rare (~3–8 % of tokens), so the class-conditional
  guarantee is the one that actually protects the minority class; RTS
  defaults to it (see DESIGN.md §5) and the ablation quantifies the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conformal.nonconformity import one_minus_true_prob
from repro.utils.stats import conformal_quantile

__all__ = ["SplitConformalBinary"]


@dataclass
class SplitConformalBinary:
    """Calibrated conformal wrapper around binary class probabilities."""

    alpha: float
    mondrian: bool = True
    _thresholds: "np.ndarray | None" = None  # (2,) per-class epsilon

    def fit(self, calib_probs: np.ndarray, calib_labels: np.ndarray) -> "SplitConformalBinary":
        """Calibrate thresholds from held-out probabilities and labels."""
        calib_probs = np.asarray(calib_probs, dtype=float)
        calib_labels = np.asarray(calib_labels, dtype=int).ravel()
        if calib_probs.ndim != 2 or calib_probs.shape[1] != 2:
            raise ValueError("calib_probs must have shape (n, 2)")
        scores = one_minus_true_prob(calib_probs, calib_labels)
        if self.mondrian:
            eps = np.empty(2)
            for c in (0, 1):
                cls_scores = scores[calib_labels == c]
                eps[c] = (
                    conformal_quantile(cls_scores, self.alpha)
                    if len(cls_scores)
                    else float("inf")
                )
        else:
            shared = conformal_quantile(scores, self.alpha)
            eps = np.array([shared, shared])
        self._thresholds = eps
        return self

    @property
    def thresholds(self) -> np.ndarray:
        if self._thresholds is None:
            raise RuntimeError("call fit() before predicting")
        return self._thresholds

    def prediction_set(self, probs: np.ndarray) -> frozenset[int]:
        """The conformal set for one test point's ``(2,)`` probabilities."""
        probs = np.asarray(probs, dtype=float).ravel()
        if probs.shape != (2,):
            raise ValueError("probs must have shape (2,)")
        eps = self.thresholds
        return frozenset(c for c in (0, 1) if probs[c] >= 1.0 - eps[c])

    def prediction_sets(self, probs: np.ndarray) -> list[frozenset[int]]:
        """Vectorized :meth:`prediction_set` over ``(n, 2)`` probabilities."""
        probs = np.asarray(probs, dtype=float)
        eps = self.thresholds
        include = probs >= (1.0 - eps)[None, :]
        return [
            frozenset(np.nonzero(row)[0].tolist()) for row in include
        ]
