"""Non-exchangeable conformal prediction (paper §3.2.2, following
Barber et al. 2023).

When calibration and test distributions differ, the threshold is computed
per test point from the K nearest calibration points, weighted by
``w_k = exp(-||h* - h_k||^2 / tau)``. After normalizing
``w_hat = w / (1 + sum w)`` — the spare mass stands in for the test point
itself — the threshold is the smallest epsilon whose weighted calibration
mass reaches ``1 - alpha``. If even the full weighted mass falls short,
epsilon is infinite and the prediction set is everything: the honest
answer under extreme covariate shift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conformal.nonconformity import one_minus_true_prob

__all__ = ["NonexchangeableConformalBinary"]


@dataclass
class NonexchangeableConformalBinary:
    """KNN-weighted conformal wrapper for binary classifiers."""

    alpha: float
    k_neighbors: int = 50
    tau: float = 25.0
    _features: "np.ndarray | None" = None
    _scores: "np.ndarray | None" = None

    def fit(
        self,
        calib_features: np.ndarray,
        calib_probs: np.ndarray,
        calib_labels: np.ndarray,
    ) -> "NonexchangeableConformalBinary":
        """Store the transformed calibration set (h_i, sigma_i)."""
        calib_features = np.asarray(calib_features, dtype=float)
        if calib_features.ndim != 2:
            raise ValueError("calib_features must be 2-D")
        self._features = calib_features
        self._scores = one_minus_true_prob(
            np.asarray(calib_probs, dtype=float), calib_labels
        )
        return self

    def _threshold_for(self, feature: np.ndarray) -> float:
        assert self._features is not None and self._scores is not None
        dists = np.sum((self._features - feature[None, :]) ** 2, axis=1)
        k = min(self.k_neighbors, len(dists))
        nearest = np.argpartition(dists, k - 1)[:k]
        w = np.exp(-dists[nearest] / self.tau)
        w_hat = w / (1.0 + w.sum())
        sigma = self._scores[nearest]
        order = np.argsort(sigma)
        cum = np.cumsum(w_hat[order])
        target = 1.0 - self.alpha
        idx = np.searchsorted(cum, target, side="left")
        if idx >= len(order):
            return float("inf")
        return float(sigma[order][idx])

    def prediction_set(
        self, feature: np.ndarray, probs: np.ndarray
    ) -> frozenset[int]:
        """Conformal set for one test point (feature vector + class probs)."""
        if self._features is None:
            raise RuntimeError("call fit() before predicting")
        feature = np.asarray(feature, dtype=float).ravel()
        probs = np.asarray(probs, dtype=float).ravel()
        eps = self._threshold_for(feature)
        return frozenset(c for c in (0, 1) if probs[c] >= 1.0 - eps)

    def prediction_sets(
        self, features: np.ndarray, probs: np.ndarray
    ) -> list[frozenset[int]]:
        return [
            self.prediction_set(f, p) for f, p in zip(features, probs)
        ]
