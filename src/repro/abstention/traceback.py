"""Algorithm 2: Table Trace Back.

Maps a detected branching point back to the schema item(s) it is
attributed to: decode the committed tokens with and without the branching
token; the set difference is the suspect item. When the difference is
empty (the branching token is mid-item), let the model continue (here:
*peek*, without committing) until a new item decodes or EOS.

On EOS the paper returns ``T[-1:]``; we interpret this as the most
recently decoded item — the subject of the model's decision to stop. A
consequence (faithful to the algorithm) is that omission errors attribute
to an item that is genuinely relevant, so even a perfect assistant
confirms it and the omission slips through; this is a real failure mode
bounded by the omission share of errors and visible in Table 6's
sub-100% EM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.model import GenerationSession
from repro.llm.tokenizer import EOS, detokenize

__all__ = ["TraceBackResult", "trace_back"]


@dataclass(frozen=True)
class TraceBackResult:
    """Outcome of Algorithm 2 at one branching point."""

    items: tuple[str, ...]
    hit_eos: bool
    lookahead: tuple[str, ...]

    @property
    def empty(self) -> bool:
        return not self.items


def _decode_complete(tokens: "tuple[str, ...] | list[str]", candidates: set) -> list[str]:
    """Items decodable from ``tokens`` that name actual candidates."""
    return [item for item in detokenize(tokens) if item in candidates]


def trace_back(session: GenerationSession, max_lookahead: int = 64) -> TraceBackResult:
    """Run Algorithm 2 against the session's pending proposal.

    The session must have a pending proposal (the detected branching
    token). Nothing is committed: the model's continuation is *peeked*,
    so the caller remains free to abstain, confirm, or correct.
    """
    step = session.propose()
    candidates = set(session.instance.candidates)
    committed = list(session.committed_tokens)
    t_pre = set(_decode_complete(committed, candidates))

    peeked = session.peek_tokens(max_lookahead)
    if not peeked or peeked[0] != step.proposed:
        raise RuntimeError("peek does not start at the pending proposal")

    stream = committed.copy()
    consumed: list[str] = []
    hit_eos = False
    for token in peeked:
        stream.append(token)
        consumed.append(token)
        if token == EOS:
            hit_eos = True
            break
        new = [
            item
            for item in _decode_complete(stream, candidates)
            if item not in t_pre
        ]
        if new:
            return TraceBackResult(
                items=tuple(dict.fromkeys(new)),
                hit_eos=False,
                lookahead=tuple(consumed),
            )
    if hit_eos:
        # Paper: "return T_b <- T[-1:]" — the most recent decoded item.
        decoded = _decode_complete(stream, candidates)
        items = (decoded[-1],) if decoded else ()
        return TraceBackResult(items=items, hit_eos=True, lookahead=tuple(consumed))
    return TraceBackResult(items=(), hit_eos=False, lookahead=tuple(consumed))
