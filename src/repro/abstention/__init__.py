"""Abstention mitigation: Algorithm 2 trace-back, the surrogate filter,
and the simulated human oracle (§3.3).
"""

from repro.abstention.traceback import TraceBackResult, trace_back
from repro.abstention.surrogate import SurrogateFilter
from repro.abstention.human import HumanOracle, HumanProfile, BEGINNER, EXPERT

__all__ = [
    "TraceBackResult",
    "trace_back",
    "SurrogateFilter",
    "HumanOracle",
    "HumanProfile",
    "BEGINNER",
    "EXPERT",
]
