"""Simulated human participants (§4.3 user study).

The paper measured how accurately beginners and experts answer the
RTS-generated relevance questions (Table 9): near-perfect on simple
questions, degrading with difficulty, columns harder than tables, and
beginners degrading faster. :class:`HumanOracle` reproduces those
measured answer-accuracy rates; the interaction protocol itself (confirm
the traced-back item, else supply the correct one) lives in the RTS
pipeline.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.linking.instance import SchemaLinkingInstance, TABLE_TASK
from repro.utils.rng import spawn

__all__ = ["HumanProfile", "HumanOracle", "BEGINNER", "EXPERT"]


@dataclass(frozen=True)
class HumanProfile:
    """Answer accuracy by task and question difficulty (Table 9)."""

    name: str
    table_accuracy: dict
    column_accuracy: dict

    def accuracy(self, task: str, difficulty: str) -> float:
        table = self.table_accuracy if task == TABLE_TASK else self.column_accuracy
        try:
            return float(table[difficulty])
        except KeyError:
            raise KeyError(
                f"profile {self.name!r} has no accuracy for "
                f"({task}, {difficulty})"
            ) from None


# Table 9's measured answer accuracies.
BEGINNER = HumanProfile(
    name="beginner",
    table_accuracy={"simple": 1.00, "moderate": 0.96, "challenging": 0.93},
    column_accuracy={"simple": 1.00, "moderate": 0.92, "challenging": 0.89},
)
EXPERT = HumanProfile(
    name="expert",
    table_accuracy={"simple": 1.00, "moderate": 1.00, "challenging": 0.99},
    column_accuracy={"simple": 1.00, "moderate": 0.97, "challenging": 0.94},
)


class HumanOracle:
    """A participant answering RTS questions with profile-driven accuracy."""

    def __init__(self, profile: HumanProfile = EXPERT, seed: int = 0):
        self.profile = profile
        self.seed = seed
        self._n_questions = 0
        self._n_correct = 0
        # Answers are pure functions of (seed, instance, query index), so
        # batch evaluation may consult one oracle from many threads; only
        # the running tallies need the lock.
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def questions_asked(self) -> int:
        return self._n_questions

    @property
    def answer_accuracy(self) -> float:
        if not self._n_questions:
            return float("nan")
        return self._n_correct / self._n_questions

    def _answers_correctly(
        self, instance: SchemaLinkingInstance, query_index: int
    ) -> bool:
        accuracy = self.profile.accuracy(instance.task, instance.difficulty)
        rng = spawn(
            self.seed, "human", self.profile.name, instance.instance_id, query_index
        )
        return bool(rng.random() < accuracy)

    def confirm_relevance(
        self,
        instance: SchemaLinkingInstance,
        items: "tuple[str, ...]",
        query_index: int,
    ) -> bool:
        """Answer "are these items relevant to the question?".

        Ground truth is relevance against the instance's gold items; the
        answer flips with probability 1 - accuracy(task, difficulty).
        """
        gold = {g.lower() for g in instance.gold_items}
        truth = bool(items) and all(item.lower() in gold for item in items)
        correct = self._answers_correctly(instance, query_index)
        with self._lock:
            self._n_questions += 1
            self._n_correct += int(correct)
        return truth if correct else not truth
