"""The surrogate filter (§3.3).

The paper fine-tunes a Deepseek-7B relevance classifier — "Given a schema
and a query, is a provided set of tables relevant to the query or not?" —
as a stand-in for a human expert. Our substitution is a *learned* lexical
relevance model: a small MLP over overlap features between the question
and the item's surface/physical/description/knowledge words, trained on
the benchmark's training split. Like the paper's surrogate it is good but
imperfect (Table 4's 92–96 % band), and its failure mode is exactly the
one Table 5 row 2 exhibits: occasionally blessing an irrelevant item,
forcing the linker to continue into a wrong generation.
"""

from __future__ import annotations


import numpy as np

from repro.corpus.dataset import Example
from repro.linking.instance import (
    COLUMN_TASK,
    SchemaLinkingInstance,
    TABLE_TASK,
    column_item,
    parse_column_item,
)
from repro.probes.mlp import MLPClassifier, MLPConfig
from repro.schema.database import Database
from repro.utils.rng import spawn
from repro.utils.text import split_identifier, words_of

__all__ = ["SurrogateFilter"]


def _item_word_sets(db: Database, task: str, item: str) -> tuple[set[str], set[str], set[str]]:
    """(surface words, physical subwords, description words) for an item."""
    try:
        if task == COLUMN_TASK:
            table_name, column_name = parse_column_item(item)
            table = db.table(table_name)
            col = table.column(column_name)
            surface = set(col.semantic_words) | set(table.semantic_words)
            physical = set(split_identifier(column_name)) | set(
                split_identifier(table_name)
            )
            desc = set(words_of(col.description)) if col.description else set()
        else:
            table = db.table(item)
            surface = set(table.semantic_words)
            physical = set(split_identifier(item))
            for col in table.columns:
                surface |= set(col.semantic_words)
            desc = set(words_of(table.description)) if table.description else set()
    except KeyError:
        return set(), set(split_identifier(item)), set()
    return surface, physical, desc


def _features(
    db: Database,
    task: str,
    question: str,
    knowledge: "str | None",
    item: str,
) -> np.ndarray:
    """Overlap feature vector for one (question, item) relevance query."""
    q_words = set(words_of(question))
    k_words = set(words_of(knowledge)) if knowledge else set()
    surface, physical, desc = _item_word_sets(db, task, item)

    def overlap(a: set[str], b: set[str]) -> float:
        return len(a & b) / len(b) if b else 0.0

    return np.array(
        [
            overlap(q_words, surface),
            overlap(q_words, physical),
            overlap(q_words, desc),
            overlap(k_words, surface | physical),
            float(bool(desc)),
            len(surface & q_words) / max(1.0, len(q_words)),
            min(1.0, len(physical) / 6.0),
        ]
    )


class SurrogateFilter:
    """Learned relevance classifier used to veto or approve abstentions.

    ``logit_noise`` perturbs the decision logit per query (seeded), so
    borderline items — exactly the confusable ones Algorithm 2 surfaces —
    are judged least reliably; ``logit_bias`` adds the yes-bias that LLM
    relevance judges exhibit (over-affirming relevance). Together they
    calibrate the filter into the paper's Table 4 accuracy band (a
    noiseless lexical model on the synthetic corpus would be
    unrealistically strong) and reproduce the Table 5 row-2 failure mode:
    approving a sizable share of the genuinely irrelevant items Algorithm
    2 surfaces, pushing the linker to continue into a wrong generation
    (TAR and EM both drop), while almost never vetoing a correct one.
    """

    def __init__(
        self,
        seed: int = 0,
        mlp_config: "MLPConfig | None" = None,
        logit_noise: float = 1.5,
        logit_bias: float = 1.0,
    ):
        self.seed = seed
        self.logit_noise = logit_noise
        self.logit_bias = logit_bias
        self._models: dict[str, MLPClassifier] = {}
        self._mlp_config = mlp_config or MLPConfig(hidden_units=8, epochs=60)

    # -- training -------------------------------------------------------------

    def fit(
        self,
        examples: "list[Example]",
        databases: dict,
        negatives_per_example: int = 2,
    ) -> "SurrogateFilter":
        """Train table and column relevance heads on a training split.

        Positives: gold items of each example. Negatives: random non-gold
        items from the same database.
        """
        for task in (TABLE_TASK, COLUMN_TASK):
            X: list[np.ndarray] = []
            y: list[int] = []
            rng = spawn(self.seed, "surrogate-negatives", task)
            for example in examples:
                db = databases[example.db_id].schema
                if task == TABLE_TASK:
                    gold = list(example.gold_tables)
                    universe = [t.name for t in db.tables]
                else:
                    gold = [
                        column_item(t, c)
                        for t, cols in example.gold_columns.items()
                        for c in cols
                    ]
                    universe = [
                        column_item(t.name, c.name)
                        for t in db.tables
                        for c in t.columns
                    ]
                gold_set = set(gold)
                negatives = [u for u in universe if u not in gold_set]
                if negatives:
                    picked = rng.choice(
                        len(negatives),
                        size=min(negatives_per_example, len(negatives)),
                        replace=False,
                    )
                    negatives = [negatives[int(i)] for i in picked]
                for item in gold:
                    X.append(
                        _features(db, task, example.question, example.knowledge, item)
                    )
                    y.append(1)
                for item in negatives:
                    X.append(
                        _features(db, task, example.question, example.knowledge, item)
                    )
                    y.append(0)
            model = MLPClassifier(self._mlp_config, seed=self.seed)
            model.fit(np.stack(X), np.asarray(y, dtype=float))
            self._models[task] = model
        return self

    # -- inference -----------------------------------------------------------

    def relevance_logit(self, instance: SchemaLinkingInstance, item: str) -> float:
        """Noiseless decision logit for one (question, item) query."""
        model = self._models.get(instance.task)
        if model is None:
            raise RuntimeError("call fit() before judging")
        feats = _features(
            instance.db, instance.task, instance.question, instance.knowledge, item
        )
        return float(model.decision_function(feats))

    def relevance_prob(self, instance: SchemaLinkingInstance, item: str) -> float:
        """P(item is relevant), with the calibrated yes-bias and noise."""
        logit = self.relevance_logit(instance, item) + self.logit_bias
        if self.logit_noise > 0.0:
            rng = spawn(self.seed, "surrogate-noise", instance.instance_id, item)
            logit += self.logit_noise * float(rng.normal())
        return float(1.0 / (1.0 + np.exp(-logit)))

    def judge(self, instance: SchemaLinkingInstance, items: "tuple[str, ...]") -> bool:
        """The paper's True/False relevance answer for an item set.

        A set is relevant iff every member is (empty sets default to
        relevant — nothing to veto).
        """
        if not items:
            return True
        return all(
            self.relevance_prob(instance, item) >= 0.5 for item in items
        )

    def accuracy(
        self, instances: "list[SchemaLinkingInstance]", per_instance_items: int = 3
    ) -> float:
        """Classification accuracy over sampled relevance queries (Table 4)."""
        rng = spawn(self.seed, "surrogate-eval")
        correct = 0
        total = 0
        for instance in instances:
            gold = set(instance.gold_items)
            items = list(instance.candidates)
            picked = rng.choice(
                len(items), size=min(per_instance_items, len(items)), replace=False
            )
            for i in picked:
                item = items[int(i)]
                truth = item in gold
                verdict = self.relevance_prob(instance, item) >= 0.5
                correct += int(verdict == truth)
                total += 1
        return correct / total if total else float("nan")
