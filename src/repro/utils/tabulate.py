"""Minimal ASCII table rendering for experiment harness output.

The experiment runners print rows in the same layout as the paper's
tables; this module owns the formatting so output is uniform and testable.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object, float_fmt: str = "{:.2f}") -> str:
    """Render a cell: floats via ``float_fmt``, others via str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: "str | None" = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an ASCII table with aligned columns.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+-----
    1 | 2.50
    """
    str_rows = [[format_cell(v, float_fmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 3 * (len(widths) - 1)))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(line.rstrip() for line in lines)
