"""Statistics primitives used across the library.

Implemented from first principles on numpy (no sklearn available) and kept
small enough to property-test exhaustively: ROC AUC, the conformal
quantile, bootstrap and binomial confidence intervals, and a simple
histogram helper for the figure harnesses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "auc_score",
    "conformal_quantile",
    "bootstrap_ci",
    "binomial_ci",
    "histogram",
    "HistogramResult",
]


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-statistic (Mann-Whitney) form.

    Ties in ``scores`` receive mid-ranks, matching the standard definition.
    Returns ``nan`` when either class is absent (AUC is undefined).

    >>> auc_score(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9]))
    1.0
    """
    labels = np.asarray(labels).astype(bool).ravel()
    scores = np.asarray(scores, dtype=float).ravel()
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=float)
    sorted_scores = scores[order]
    # Mid-rank assignment for tied groups.
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = ranks[labels].sum()
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def conformal_quantile(scores: np.ndarray, alpha: float) -> float:
    """The split-conformal threshold for error level ``alpha``.

    Returns the ``ceil((n + 1) * (1 - alpha)) / n`` empirical quantile of
    ``scores`` — the finite-sample-corrected quantile from the conformal
    prediction literature (and §3.2.2 of the paper). When the corrected
    level exceeds 1 (tiny calibration sets / tiny alpha) the threshold is
    ``+inf``: the prediction set must include everything to honour the
    guarantee.
    """
    scores = np.asarray(scores, dtype=float).ravel()
    n = scores.size
    if n == 0:
        return float("inf")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    k = math.ceil((n + 1) * (1.0 - alpha))  # k-th smallest order statistic
    if k > n:
        return float("inf")
    return float(np.sort(scores)[k - 1])


def bootstrap_ci(
    values: np.ndarray,
    rng: np.random.Generator,
    n_boot: int = 1000,
    confidence: float = 0.95,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean of ``values``."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        return (float("nan"), float("nan"))
    idx = rng.integers(0, values.size, size=(n_boot, values.size))
    means = values[idx].mean(axis=1)
    lo = (1.0 - confidence) / 2.0
    return (float(np.quantile(means, lo)), float(np.quantile(means, 1.0 - lo)))


def binomial_ci(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        return (float("nan"), float("nan"))
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


@dataclass(frozen=True)
class HistogramResult:
    """Bin edges, counts and normalized densities of a histogram."""

    edges: tuple[float, ...]
    counts: tuple[int, ...]

    @property
    def fractions(self) -> tuple[float, ...]:
        total = sum(self.counts)
        if total == 0:
            return tuple(0.0 for _ in self.counts)
        return tuple(c / total for c in self.counts)

    def as_rows(self) -> list[tuple[str, int, float]]:
        """Rows of (bin label, count, fraction) for table rendering."""
        rows = []
        for i, count in enumerate(self.counts):
            label = f"[{self.edges[i]:.3g}, {self.edges[i + 1]:.3g})"
            rows.append((label, count, self.fractions[i]))
        return rows


def histogram(
    values: np.ndarray, bins: int = 10, lo: "float | None" = None, hi: "float | None" = None
) -> HistogramResult:
    """Histogram ``values`` into equal-width bins on [lo, hi]."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        edges = np.linspace(lo or 0.0, hi or 1.0, bins + 1)
        return HistogramResult(tuple(edges), tuple(0 for _ in range(bins)))
    lo = float(values.min()) if lo is None else lo
    hi = float(values.max()) if hi is None else hi
    if hi <= lo:
        hi = lo + 1.0
    counts, edges = np.histogram(values, bins=bins, range=(lo, hi))
    return HistogramResult(tuple(float(e) for e in edges), tuple(int(c) for c in counts))
