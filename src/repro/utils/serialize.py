"""JSON serialization helpers for experiment artifacts.

Experiment results are plain dataclass trees; these helpers convert them
to/from JSON for caching and for writing EXPERIMENTS.md evidence files.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "dump_json", "load_json"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses / numpy scalars / arrays to JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    return obj


def dump_json(obj: Any, path: "str | Path") -> None:
    """Write ``obj`` (converted via :func:`to_jsonable`) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=2, sort_keys=True))


def load_json(path: "str | Path") -> Any:
    """Read JSON from ``path``."""
    return json.loads(Path(path).read_text())
