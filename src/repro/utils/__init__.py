"""Shared utilities: seeded RNG management, text/identifier handling,
statistics primitives, ASCII table rendering and JSON serialization.

These modules are dependency-free (numpy only) and used by every other
subpackage.
"""

from repro.utils.rng import RngFactory, spawn, as_generator
from repro.utils.stats import (
    auc_score,
    conformal_quantile,
    bootstrap_ci,
    binomial_ci,
    histogram,
)
from repro.utils.tabulate import render_table
from repro.utils.text import (
    split_identifier,
    to_snake_case,
    to_camel_case,
    abbreviate,
    normalize_ws,
)

__all__ = [
    "RngFactory",
    "spawn",
    "as_generator",
    "auc_score",
    "conformal_quantile",
    "bootstrap_ci",
    "binomial_ci",
    "histogram",
    "render_table",
    "split_identifier",
    "to_snake_case",
    "to_camel_case",
    "abbreviate",
    "normalize_ws",
]
