"""Identifier and text manipulation helpers.

Schema linking hinges on the *surface form* of identifiers: a clean corpus
uses ``lap_times`` style names while a dirty (BIRD-like) corpus uses
abbreviations such as ``EdOps`` or ``T_BIL``. These helpers implement the
splitting/joining/abbreviation conventions shared by the corpus generator
and the LLM tokenizer.
"""

from __future__ import annotations

import re

__all__ = [
    "split_identifier",
    "to_snake_case",
    "to_camel_case",
    "to_pascal_case",
    "abbreviate",
    "normalize_ws",
    "words_of",
]

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_NON_ALNUM = re.compile(r"[^0-9A-Za-z]+")
_WS = re.compile(r"\s+")

# English words whose conventional abbreviation is well established;
# used by the dirty-naming generator so BIRD-style names look plausible.
_CANONICAL_ABBREV = {
    "number": "num",
    "identifier": "id",
    "average": "avg",
    "maximum": "max",
    "minimum": "min",
    "description": "desc",
    "department": "dept",
    "quantity": "qty",
    "amount": "amt",
    "account": "acct",
    "address": "addr",
    "reference": "ref",
    "transaction": "txn",
    "temperature": "temp",
    "percentage": "pct",
    "category": "cat",
    "education": "ed",
    "operations": "ops",
    "type": "type",
    "level": "lvl",
    "total": "tot",
    "bilirubin": "bil",
    "measurement": "meas",
}


def split_identifier(name: str) -> list[str]:
    """Split an identifier into lowercase word parts.

    Handles snake_case, camelCase, PascalCase, kebab-case and mixed forms.

    >>> split_identifier("lapTimes")
    ['lap', 'times']
    >>> split_identifier("T_BIL")
    ['t', 'bil']
    >>> split_identifier("raceId")
    ['race', 'id']
    """
    if not name:
        return []
    pieces = [p for p in _NON_ALNUM.split(name) if p]
    words: list[str] = []
    for piece in pieces:
        for word in _CAMEL_BOUNDARY.split(piece):
            if word:
                words.append(word.lower())
    return words


def words_of(text: str) -> list[str]:
    """Lowercased word tokens of free text (questions, descriptions)."""
    return [w for w in _NON_ALNUM.split(text.lower()) if w]


def to_snake_case(words: "list[str] | str") -> str:
    """Join word parts as snake_case.

    >>> to_snake_case(["lap", "times"])
    'lap_times'
    """
    if isinstance(words, str):
        words = split_identifier(words)
    return "_".join(w.lower() for w in words)


def to_camel_case(words: "list[str] | str") -> str:
    """Join word parts as camelCase.

    >>> to_camel_case(["lap", "times"])
    'lapTimes'
    """
    if isinstance(words, str):
        words = split_identifier(words)
    if not words:
        return ""
    head, *rest = words
    return head.lower() + "".join(w.capitalize() for w in rest)


def to_pascal_case(words: "list[str] | str") -> str:
    """Join word parts as PascalCase."""
    if isinstance(words, str):
        words = split_identifier(words)
    return "".join(w.capitalize() for w in words)


def abbreviate(word: str, keep: int = 3) -> str:
    """Abbreviate a word the way real-world dirty schemas do.

    Prefers the canonical abbreviation (``number`` -> ``num``); otherwise
    strips vowels after the first letter and truncates.

    >>> abbreviate("education")
    'ed'
    >>> abbreviate("grade")
    'grd'
    """
    lower = word.lower()
    if lower in _CANONICAL_ABBREV:
        return _CANONICAL_ABBREV[lower]
    if len(lower) <= keep:
        return lower
    head, tail = lower[0], lower[1:]
    consonants = "".join(ch for ch in tail if ch not in "aeiou")
    return (head + consonants)[:keep]


def normalize_ws(text: str) -> str:
    """Collapse runs of whitespace and strip, for stable SQL comparison."""
    return _WS.sub(" ", text).strip()
