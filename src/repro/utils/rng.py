"""Deterministic random-number management.

Every stochastic component in the library receives randomness through this
module so that a single integer seed reproduces an entire experiment
bit-for-bit. Components never call ``numpy.random`` module-level functions.

The central abstraction is :class:`RngFactory`, which derives independent
named streams from a root seed. Deriving by *name* (rather than by call
order) means adding a new consumer does not perturb the randomness seen by
existing consumers — essential for comparing ablations across code
versions.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["RngFactory", "spawn", "as_generator", "stable_hash"]


def stable_hash(*parts: object) -> int:
    """Hash a tuple of parts to a 64-bit integer, stably across processes.

    Python's builtin ``hash`` is salted per process for strings; we need a
    deterministic value, so we go through blake2b.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")


def spawn(seed: int, *names: object) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a name path.

    >>> g1 = spawn(7, "corpus", "spider")
    >>> g2 = spawn(7, "corpus", "bird")
    >>> g1.integers(100) != g2.integers(100) or True
    True
    """
    mixed = stable_hash(int(seed), *names)
    return np.random.default_rng(np.random.SeedSequence(mixed))


def as_generator(rng: "np.random.Generator | int | None") -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    Accepts an existing generator (returned as-is), an integer seed, or
    ``None`` (seed 0, for convenience in tests and examples).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng(0)
    return np.random.default_rng(int(rng))


class RngFactory:
    """Derives named, independent random streams from a root seed.

    Example
    -------
    >>> factory = RngFactory(seed=42)
    >>> a = factory.get("llm", "hidden")
    >>> b = factory.get("llm", "errors")
    >>> a is not b
    True

    Requesting the same name path twice returns a *fresh* generator seeded
    identically, so consumers must hold on to their stream if they want
    sequential draws. This makes usage misuse-resistant: the randomness a
    component sees is a pure function of (root seed, name path, draw
    index within the component).
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def get(self, *names: object) -> np.random.Generator:
        """Return a generator for the given name path."""
        return spawn(self.seed, *names)

    def seed_for(self, *names: object) -> int:
        """Return a derived integer seed (for APIs that take ints)."""
        return stable_hash(self.seed, *names) & 0x7FFFFFFF

    def child(self, *names: object) -> "RngFactory":
        """Return a factory rooted at a derived seed."""
        return RngFactory(self.seed_for(*names))

    def choice_weighted(
        self, names: Iterable[str], items: list, weights: list[float]
    ) -> object:
        """Convenience: weighted choice on a named stream."""
        rng = self.get(*names)
        probs = np.asarray(weights, dtype=float)
        probs = probs / probs.sum()
        return items[int(rng.choice(len(items), p=probs))]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed})"
