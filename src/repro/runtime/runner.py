"""The batched evaluation runner.

`BatchRunner` fans a fitted :class:`~repro.core.pipeline.RTSPipeline`
out over a benchmark split through a :class:`~repro.runtime.pool.WorkerPool`,
streams per-example records to a :class:`~repro.runtime.artifacts.RunArtifact`
(checkpoint/resume), and aggregates TAR / FAR / abstention summaries.

Determinism contract: every per-example evaluation is a pure function of
(pipeline seeds, instance), and results are always assembled in input
order, so the aggregate metrics are byte-identical across ``workers=1``
and ``workers=N`` — and across fresh and resumed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Callable

from repro.core.config import ABSTAIN, HUMAN
from repro.core.results import JointOutcome, LinkOutcome
from repro.linking.dataset import BranchDataset, collect_branch_dataset
from repro.runtime.artifacts import (
    RunArtifact,
    joint_outcome_from_record,
    joint_record,
    link_outcome_from_record,
    link_record,
    summarize_joint,
    summarize_link,
)
from repro.runtime.cache import CacheStats, instance_key
from repro.runtime.pool import THREAD, WorkerPool
from repro.utils.rng import stable_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.corpus.dataset import Benchmark, Example
    from repro.linking.instance import SchemaLinkingInstance

__all__ = ["BatchResult", "BatchRunner"]


# Worker functions live at module level so the process backend can
# pickle them (bound methods of a runner holding an open artifact
# handle would not survive the trip).


def _link_one(pipeline, mode, surrogate, human, instance) -> LinkOutcome:
    return pipeline.link(instance, mode=mode, surrogate=surrogate, human=human)


def _joint_one(pipeline, benchmark, mode, surrogate, human, example) -> JointOutcome:
    return pipeline.link_joint(
        example, benchmark, mode=mode, surrogate=surrogate, human=human
    )


def _trace_one(llm, instance):
    return llm.teacher_forced_trace(instance)


@dataclass
class BatchResult:
    """Outcomes plus bookkeeping for one batch evaluation."""

    outcomes: list
    summary: dict
    n_resumed: int = 0
    n_evaluated: int = 0
    cache_stats: "CacheStats | None" = None  # cumulative over the LLM's lifetime
    cache_delta: "CacheStats | None" = None  # contributed by this run alone
    records: "list[dict]" = field(default_factory=list, repr=False)

    def __len__(self) -> int:
        return len(self.outcomes)


class BatchRunner:
    """Bulk evaluation of a fitted RTS pipeline over many examples."""

    def __init__(
        self,
        pipeline,
        workers: int = 1,
        backend: str = THREAD,
        artifact: "str | None" = None,
    ):
        self.pipeline = pipeline
        self.pool = WorkerPool(workers=workers, backend=backend)
        self.artifact_path = artifact

    # -- plumbing ------------------------------------------------------------

    @property
    def llm(self):
        return self.pipeline.llm

    @property
    def cache_stats(self) -> "CacheStats | None":
        """Generation-cache stats when the pipeline's LLM is caching."""
        stats = getattr(self.llm, "stats", None)
        return stats if isinstance(stats, CacheStats) else None

    def map(self, fn: Callable, items) -> list:
        """Order-preserving map through this runner's worker pool."""
        return self.pool.map_ordered(fn, items)

    def fingerprint(self, mode: str, surrogate=None, human=None) -> str:
        """The public run fingerprint (artifact keys are
        ``f"{fingerprint}:{instance_key}"``). The serving tier uses this
        to emit records byte-identical to offline artifacts."""
        return self._run_fingerprint(mode, surrogate, human)

    def _run_fingerprint(self, mode: str, surrogate, human) -> str:
        """A digest of everything outcome-affecting besides the instance.

        Artifact resume keys embed this so records computed under
        different seeds / oracle profiles are never silently reused.
        """
        identity_parts = getattr(self.pipeline, "identity_parts", None)
        if callable(identity_parts):
            identity = identity_parts()
        else:  # proxy pipelines in tests; match RTSPipeline.identity_parts
            config = getattr(self.pipeline, "config", None)
            identity = (getattr(self.llm, "seed", None), getattr(config, "seed", None))
        parts = (
            mode,
            *identity,
            getattr(surrogate, "seed", None),
            getattr(getattr(human, "profile", None), "name", None),
            getattr(human, "seed", None),
        )
        return f"{mode}@{stable_hash(*parts):08x}"

    def _artifact(self, override: "str | None") -> "RunArtifact | None":
        path = override if override is not None else self.artifact_path
        return RunArtifact(path) if path is not None else None

    def _run_keyed(
        self,
        keys: "list[str]",
        items: list,
        evaluate: Callable,
        to_record: Callable,
        from_record: Callable,
        summarize: Callable,
        artifact: "str | None",
    ) -> BatchResult:
        """The shared fan-out: resume, evaluate pending, stream, aggregate.

        Outcomes are *always* rehydrated from records (fresh and resumed
        alike), so a resumed run is bit-identical to an uninterrupted one.
        """
        stats_before = self.cache_stats
        art = self._artifact(artifact)
        existing = art.load_records() if art is not None else {}
        resumed = {k: existing[k] for k in keys if k in existing}
        pending = [(k, item) for k, item in zip(keys, items) if k not in resumed]
        records = dict(resumed)
        try:
            # imap_ordered streams: each record is appended (checkpointed)
            # as soon as its evaluation — and every earlier one — is done,
            # while the pool keeps computing ahead.
            new_outcomes = self.pool.imap_ordered(
                evaluate, [item for _, item in pending]
            )
            for (key, _item), outcome in zip(pending, new_outcomes):
                record = dict(to_record(outcome), key=key)
                if art is not None:
                    art.append(record)
                records[key] = record
            outcomes = [
                from_record(records[key], item) for key, item in zip(keys, items)
            ]
            summary = summarize(outcomes)
            stats_after = self.cache_stats
            delta = (
                stats_after - stats_before
                if stats_after is not None and stats_before is not None
                else None
            )
            if art is not None:
                art.write_summary(summary)
                if delta is not None:
                    art.write_stats(delta)
        finally:
            if art is not None:
                art.close()
        return BatchResult(
            outcomes=outcomes,
            summary=summary,
            n_resumed=len(resumed),
            n_evaluated=len(pending),
            cache_stats=stats_after,
            cache_delta=delta,
            records=[records[key] for key in keys],
        )

    # -- linking sweeps ------------------------------------------------------

    def run_link(
        self,
        instances: "list[SchemaLinkingInstance]",
        mode: str = ABSTAIN,
        surrogate=None,
        human=None,
        artifact: "str | None" = None,
    ) -> BatchResult:
        """Evaluate ``pipeline.link`` over ``instances`` (one task)."""
        fingerprint = self._run_fingerprint(mode, surrogate, human)
        return self._run_keyed(
            keys=[f"{fingerprint}:{instance_key(i)}" for i in instances],
            items=list(instances),
            evaluate=partial(_link_one, self.pipeline, mode, surrogate, human),
            to_record=link_record,
            from_record=link_outcome_from_record,
            summarize=summarize_link,
            artifact=artifact,
        )

    def run_joint(
        self,
        examples: "list[Example]",
        benchmark: "Benchmark",
        mode: str = HUMAN,
        surrogate=None,
        human=None,
        artifact: "str | None" = None,
    ) -> BatchResult:
        """Evaluate the joint table→column pipeline over ``examples``."""
        fingerprint = self._run_fingerprint(mode, surrogate, human)
        return self._run_keyed(
            keys=[f"{fingerprint}:{e.example_id}" for e in examples],
            items=list(examples),
            evaluate=partial(_joint_one, self.pipeline, benchmark, mode, surrogate, human),
            to_record=joint_record,
            from_record=lambda record, _example: joint_outcome_from_record(record),
            summarize=summarize_joint,
            artifact=artifact,
        )

    # -- trace collection ----------------------------------------------------

    def teacher_forced_traces(self, instances: "list[SchemaLinkingInstance]") -> list:
        """Teacher-forced traces for ``instances``, pooled or batched.

        A parallel runner pool fans per-instance calls (a caching LLM
        still serves each from its service); otherwise a service-backed
        LLM gets the whole batch in one call, whose backend decides how
        to execute — serial, or coalesced into microbatches. Both paths
        yield bit-identical traces in input order.
        """
        collect = getattr(self.llm, "teacher_forced_traces", None)
        if self.pool.is_serial and callable(collect):
            return collect(instances)
        return self.pool.map_ordered(partial(_trace_one, self.llm), instances)

    def branch_dataset(
        self, instances: "list[SchemaLinkingInstance]"
    ) -> BranchDataset:
        """Collect D_branch with trace generation fanned over the pool."""
        traces = self.teacher_forced_traces(instances)
        return collect_branch_dataset(self.llm, instances, traces=traces)
