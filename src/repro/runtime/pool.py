"""Worker-pool abstraction for batched evaluation.

One interface — :meth:`WorkerPool.map_ordered` — over three execution
backends:

* ``serial``: a deterministic in-process loop (the fallback, and the
  reference semantics the parallel backends must reproduce);
* ``thread``: ``concurrent.futures.ThreadPoolExecutor`` — the default
  for the simulated LLM, whose hot paths are numpy-bound and release
  the GIL;
* ``process``: ``concurrent.futures.ProcessPoolExecutor`` — for
  CPU-bound workloads; callables and items must be picklable, and
  in-process caches do not propagate back to the parent.

Results always come back in input order, so aggregate metrics computed
over a mapped list are independent of completion order — the property
the serial-vs-parallel determinism tests pin down.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence

__all__ = ["SERIAL", "THREAD", "PROCESS", "BACKENDS", "WorkerPool", "default_workers"]

SERIAL = "serial"
THREAD = "thread"
PROCESS = "process"
BACKENDS = (SERIAL, THREAD, PROCESS)


def default_workers() -> int:
    """A sensible worker count for this machine (at least 1)."""
    return max(1, (os.cpu_count() or 2) - 1)


class WorkerPool:
    """Order-preserving map over a configurable execution backend.

    ``workers <= 1`` (or ``backend="serial"``) always resolves to the
    deterministic serial loop; parallel backends are an opt-in.
    """

    def __init__(self, workers: int = 1, backend: str = THREAD):
        if backend not in BACKENDS:
            raise ValueError(f"unknown pool backend {backend!r}; pick from {BACKENDS}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self.backend = SERIAL if self.workers == 1 else backend

    @property
    def is_serial(self) -> bool:
        return self.backend == SERIAL

    def map_ordered(self, fn: Callable, items: "Sequence | Iterable") -> list:
        """Apply ``fn`` to every item, returning results in input order."""
        return list(self.imap_ordered(fn, items))

    def imap_ordered(self, fn: Callable, items: "Sequence | Iterable"):
        """Lazily yield results in input order as they become available.

        Parallel backends keep computing ahead while the consumer
        processes earlier results, so a consumer that checkpoints each
        result to disk streams checkpoints instead of waiting for the
        whole batch. The process backend chunks work items so the
        (potentially large) pickled ``fn`` ships once per chunk rather
        than once per item.
        """
        items = list(items)
        if not items:
            return
        if self.is_serial:
            for item in items:
                yield fn(item)
            return
        if self.backend == THREAD:
            with ThreadPoolExecutor(max_workers=self.workers) as executor:
                # Executor.map preserves submission order in its result
                # iterator regardless of completion order.
                yield from executor.map(fn, items)
            return
        chunksize = max(1, len(items) // (self.workers * 4))
        with ProcessPoolExecutor(max_workers=self.workers) as executor:
            yield from executor.map(fn, items, chunksize=chunksize)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerPool(workers={self.workers}, backend={self.backend!r})"
