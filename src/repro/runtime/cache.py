"""Keyed generation cache for the simulated LLM.

Bulk evaluation repeats the same generations many times over: every
``RTSPipeline.link`` call regenerates the unassisted baseline, the joint
table→column pass regenerates the free-running column trace, and the
figure/ablation sweeps re-collect teacher-forced traces for the same
instances under every variant. All of those calls are deterministic pure
functions of (model seed, instance), so they are computed once and
cached here.

The cache key must capture the full generation input: ``instance_id``
alone is not enough because joint linking builds *different* column
instances with the same id (the candidate universe depends on the
predicted tables), so the key also hashes task, candidates and gold
items.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.linking.instance import SchemaLinkingInstance
from repro.llm.model import GenerationSession, GenerationTrace, TransparentLLM
from repro.utils.rng import stable_hash

__all__ = ["instance_key", "CacheStats", "GenerationCache", "CachingLLM"]


def instance_key(instance: SchemaLinkingInstance) -> str:
    """A stable, collision-resistant identity for one generation input."""
    digest = stable_hash(instance.task, instance.candidates, instance.gold_items)
    return f"{instance.instance_id}#{digest:016x}"


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting for one cache.

    ``hits`` are served from this process's memory, ``disk_hits`` from a
    persistent store (:mod:`repro.runtime.persist`), and ``misses`` are
    new LLM generations. Instances form a commutative monoid under
    ``+`` so per-shard stats aggregate into fleet-wide totals; ``-``
    yields the delta between two snapshots of the same cache (what one
    unit of work contributed).
    """

    hits: int
    misses: int
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        return (self.hits + self.disk_hits) / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            disk_hits=self.disk_hits + other.disk_hits,
        )

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            disk_hits=self.disk_hits - other.disk_hits,
        )

    @classmethod
    def zero(cls) -> "CacheStats":
        return cls(hits=0, misses=0, disk_hits=0)

    @classmethod
    def total(cls, stats: "Iterable[CacheStats | dict | None]") -> "CacheStats":
        """Sum stats (dicts from JSON summaries are accepted, None skipped)."""
        out = cls.zero()
        for entry in stats:
            if entry is None:
                continue
            if isinstance(entry, dict):
                entry = cls(
                    hits=int(entry.get("hits", 0)),
                    misses=int(entry.get("misses", 0)),
                    disk_hits=int(entry.get("disk_hits", 0)),
                )
            out = out + entry
        return out


class GenerationCache:
    """A thread-safe keyed memo table with hit/miss accounting.

    Values are treated as immutable by convention (generation traces are
    never mutated after the session finishes), so a cached value may be
    shared freely across threads. Two threads racing on the same missing
    key may both compute it — the value is deterministic, so the second
    store is a harmless overwrite and both computations are counted as
    misses.
    """

    def __init__(self) -> None:
        self._data: dict = {}
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self._hits, misses=self._misses)

    def get_or_compute(self, key, compute: Callable[[], object]):
        with self._lock:
            if key in self._data:
                self._hits += 1
                return self._data[key]
            self._misses += 1
        value = compute()  # computed outside the lock: misses run in parallel
        with self._lock:
            self._data[key] = value
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    # Locks are not picklable; a cache shipped to a worker process starts
    # cold (per-process hits simply do not propagate back to the parent).
    def __getstate__(self) -> dict:
        return {"_data": dict(self._data), "_hits": self._hits, "_misses": self._misses}

    def __setstate__(self, state: dict) -> None:
        self._data = state["_data"]
        self._hits = state["_hits"]
        self._misses = state["_misses"]
        self._lock = threading.Lock()


class CachingLLM:
    """A :class:`TransparentLLM` wrapper that memoizes whole generations.

    ``generate`` (free running) and ``teacher_forced_trace`` (the §3.1
    label-collection protocol) are cached per instance; token-by-token
    sessions are inherently stateful and always start fresh. The wrapper
    is a drop-in replacement anywhere a ``TransparentLLM`` is expected.
    """

    def __init__(self, llm: TransparentLLM, cache: "GenerationCache | None" = None):
        self.llm = llm
        self.cache = cache if cache is not None else GenerationCache()

    # -- delegated surface ---------------------------------------------------

    @property
    def config(self):
        return self.llm.config

    @property
    def seed(self) -> int:
        return self.llm.seed

    @property
    def hidden(self):
        return self.llm.hidden

    @property
    def n_layers(self) -> int:
        return self.llm.n_layers

    def plan(self, instance: SchemaLinkingInstance):
        return self.llm.plan(instance)

    def start_session(self, instance: SchemaLinkingInstance) -> GenerationSession:
        return self.llm.start_session(instance)

    # -- cached generation ---------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def generate(self, instance: SchemaLinkingInstance) -> GenerationTrace:
        key = ("free", instance_key(instance))
        return self.cache.get_or_compute(key, lambda: self.llm.generate(instance))

    def teacher_forced_trace(
        self, instance: SchemaLinkingInstance
    ) -> GenerationTrace:
        key = ("forced", instance_key(instance))
        return self.cache.get_or_compute(
            key, lambda: self.llm.teacher_forced_trace(instance)
        )
