"""Keyed generation cache for the simulated LLM.

Bulk evaluation repeats the same generations many times over: every
``RTSPipeline.link`` call regenerates the unassisted baseline, the joint
table→column pass regenerates the free-running column trace, and the
figure/ablation sweeps re-collect teacher-forced traces for the same
instances under every variant. All of those calls are deterministic pure
functions of (model seed, instance), so they are computed once and
cached here.

The cache key must capture the full generation input: ``instance_id``
alone is not enough because joint linking builds *different* column
instances with the same id (the candidate universe depends on the
predicted tables), so the key also hashes task, candidates and gold
items.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.linking.instance import SchemaLinkingInstance
from repro.llm.model import GenerationSession, GenerationTrace, TransparentLLM
from repro.utils.rng import stable_hash

__all__ = ["instance_key", "CacheStats", "GenerationCache", "CachingLLM"]

# Sentinel distinguishing "no cached value" from a cached None.
_MISS = object()


def instance_key(instance: SchemaLinkingInstance) -> str:
    """A stable, collision-resistant identity for one generation input."""
    digest = stable_hash(instance.task, instance.candidates, instance.gold_items)
    return f"{instance.instance_id}#{digest:016x}"


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting for one cache.

    ``hits`` are served from this process's memory, ``disk_hits`` from a
    persistent store (:mod:`repro.runtime.persist`), and ``misses`` are
    new LLM generations. Instances form a commutative monoid under
    ``+`` so per-shard stats aggregate into fleet-wide totals; ``-``
    yields the delta between two snapshots of the same cache (what one
    unit of work contributed).
    """

    hits: int
    misses: int
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        return (self.hits + self.disk_hits) / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            disk_hits=self.disk_hits + other.disk_hits,
        )

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            disk_hits=self.disk_hits - other.disk_hits,
        )

    @classmethod
    def zero(cls) -> "CacheStats":
        return cls(hits=0, misses=0, disk_hits=0)

    @classmethod
    def total(cls, stats: "Iterable[CacheStats | dict | None]") -> "CacheStats":
        """Sum stats (dicts from JSON summaries are accepted, None skipped)."""
        out = cls.zero()
        for entry in stats:
            if entry is None:
                continue
            if isinstance(entry, dict):
                entry = cls(
                    hits=int(entry.get("hits", 0)),
                    misses=int(entry.get("misses", 0)),
                    disk_hits=int(entry.get("disk_hits", 0)),
                )
            out = out + entry
        return out


class GenerationCache:
    """A thread-safe keyed memo table with hit/miss accounting.

    Values are treated as immutable by convention (generation traces are
    never mutated after the session finishes), so a cached value may be
    shared freely across threads. Two threads racing on the same missing
    key may both compute it — the value is deterministic, so the second
    store is a harmless overwrite and both computations are counted as
    misses.
    """

    def __init__(self) -> None:
        self._data: dict = {}  # guarded-by: self._lock
        self._hits = 0  # guarded-by: self._lock
        self._misses = 0  # guarded-by: self._lock
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses)

    def get_or_compute(self, key, compute: Callable[[], object]):
        with self._lock:
            if key in self._data:
                self._hits += 1
                return self._data[key]
            self._misses += 1
        value = compute()  # computed outside the lock: misses run in parallel
        with self._lock:
            self._data[key] = value
        return value

    # -- tier primitives (driven by runtime.service.GenerationService) -------

    def contains(self, key) -> bool:
        """Membership without accounting (diagnostics peeks, not lookups)."""
        with self._lock:
            return key in self._data

    def probe(self, key):
        """The cached value, counting a hit — or the ``_MISS`` sentinel.

        Unlike :meth:`get_or_compute` a probe miss counts nothing: the
        service attributes the fall-through to whichever tier (disk,
        backend) ends up serving the lookup, via :meth:`admit`.
        """
        with self._lock:
            if key in self._data:
                self._hits += 1
                return self._data[key]
        return _MISS

    def admit(self, key, value, *, miss: bool = False, disk_hit: bool = False) -> None:
        """Store a value resolved elsewhere, attributing the lookup.

        ``miss=True`` records a backend computation, ``disk_hit=True`` a
        promotion from a colder tier (meaningful on persistent caches;
        counted here so plain in-memory caches stay drop-compatible).
        """
        with self._lock:
            self._data[key] = value
            if miss:
                self._misses += 1
            if disk_hit:
                self._disk_hit_count()

    def _disk_hit_count(self) -> None:  # overridden by the persistent cache
        pass

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    # Locks are not picklable; a cache shipped to a worker process starts
    # cold (per-process hits simply do not propagate back to the parent).
    def __getstate__(self) -> dict:
        with self._lock:
            return {"_data": dict(self._data), "_hits": self._hits, "_misses": self._misses}

    def __setstate__(self, state: dict) -> None:
        # Unpickling builds a fresh, unshared object: the lock does not
        # even exist until the last line, and no other thread can see us.
        # repro-lint: ignore[lock-discipline] unpickling is single-threaded; the lock is created on the last line
        self._data = state["_data"]
        # repro-lint: ignore[lock-discipline] unpickling is single-threaded
        self._hits = state["_hits"]
        # repro-lint: ignore[lock-discipline] unpickling is single-threaded
        self._misses = state["_misses"]
        self._lock = threading.Lock()


class CachingLLM:
    """A :class:`TransparentLLM`-shaped adapter over a `GenerationService`.

    ``generate`` (free running) and ``teacher_forced_trace`` (the §3.1
    label-collection protocol) route through the service — cache tiers
    first, then the configured backend; token-by-token sessions are
    inherently stateful and always start fresh on the base simulator.
    The adapter is a drop-in replacement anywhere a ``TransparentLLM``
    is expected, and ``CachingLLM(llm, cache=...)`` keeps its historical
    meaning by wiring a :class:`~repro.runtime.service.SimulatorBackend`
    service over that cache.
    """

    def __init__(
        self,
        llm: "TransparentLLM | None" = None,
        cache: "GenerationCache | None" = None,
        service=None,
    ):
        if service is None:
            # Local import: service builds on this module's primitives.
            from repro.runtime.service import GenerationService, SimulatorBackend

            if llm is None:
                raise ValueError("CachingLLM needs an llm or a service")
            service = GenerationService(SimulatorBackend(llm), cache=cache)
        elif cache is not None and cache is not service.cache:
            raise ValueError("pass either a service or a cache, not both")
        elif llm is not None and llm is not service.base_llm:
            # Sessions would run one model while cached traces come
            # from another — never a coherent adapter.
            raise ValueError("llm does not match the service's base LLM")
        self.service = service
        self.llm = llm if llm is not None else service.base_llm

    # -- delegated surface ---------------------------------------------------

    @property
    def config(self):
        return self.llm.config

    @property
    def seed(self) -> int:
        return self.llm.seed

    @property
    def hidden(self):
        return self.llm.hidden

    @property
    def n_layers(self) -> int:
        return self.llm.n_layers

    def plan(self, instance: SchemaLinkingInstance):
        return self.llm.plan(instance)

    def start_session(self, instance: SchemaLinkingInstance) -> GenerationSession:
        return self.llm.start_session(instance)

    # -- cached generation ---------------------------------------------------

    @property
    def cache(self) -> GenerationCache:
        return self.service.cache

    @property
    def stats(self) -> CacheStats:
        return self.service.stats

    def generate(self, instance: SchemaLinkingInstance) -> GenerationTrace:
        from repro.runtime.service import FREE, GenerationRequest

        return self.service.generate_one(GenerationRequest(FREE, instance))

    def teacher_forced_trace(
        self, instance: SchemaLinkingInstance
    ) -> GenerationTrace:
        from repro.runtime.service import FORCED, GenerationRequest

        return self.service.generate_one(GenerationRequest(FORCED, instance))

    # -- batched generation (coalesced by the async backend) -----------------

    def generate_many(
        self, instances: "Iterable[SchemaLinkingInstance]"
    ) -> "list[GenerationTrace]":
        return self.service.free_traces(instances)

    def teacher_forced_traces(
        self, instances: "Iterable[SchemaLinkingInstance]"
    ) -> "list[GenerationTrace]":
        return self.service.forced_traces(instances)
