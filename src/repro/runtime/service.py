"""Backend-agnostic generation service with tiered caching.

Everything upstream of the simulator — the RTS pipeline, the batch
runner, the sweep orchestrator, the CLIs — used to call
:class:`~repro.llm.model.TransparentLLM` methods directly, welding the
paper's protocol to one synchronous in-process model. This module carves
the seam between *what* to generate and *how* it is executed and cached:

``GenerationBackend`` (the protocol)
    Anything that can turn a batch of :class:`GenerationRequest` objects
    into :class:`~repro.llm.model.GenerationTrace` objects::

        class GenerationBackend(Protocol):
            def generate(self, requests: Sequence[GenerationRequest])
                -> list[GenerationTrace]:
                \"\"\"Traces for ``requests``, in request order.\"\"\"

            def identity(self) -> tuple:
                \"\"\"(simulator version, config, seed)-like tuple
                pinning the generation function; feeds the persistent
                cache namespace via
                :func:`~repro.runtime.persist.generation_namespace`.\"\"\"

    Contract: ``generate`` is a *pure function* of (identity, request) —
    the same request always yields a bit-identical trace, regardless of
    batch composition, concurrency or call order. That purity is what
    lets every backend share one cache namespace and what makes the
    ``--backend simulator`` / ``--backend async`` axis byte-identical in
    every ``*.summary.json``.

Two implementations ship here:

* :class:`SimulatorBackend` — wraps a ``TransparentLLM``; optionally
  fans a batch over a :class:`~repro.runtime.pool.WorkerPool`. This is
  byte-identical to the pre-service direct calls.
* :class:`AsyncBatchedBackend` — an ``asyncio`` scheduler (own event
  loop on a daemon thread) that coalesces concurrent requests into
  microbatches: up to ``max_batch`` requests, waiting at most
  ``max_wait_ms`` after the first arrival, with backpressure via a
  bounded submission queue and at most ``workers`` batches in flight.
  Results resolve per-request futures, so every caller sees its own
  results in submission order no matter how requests were batched.

A third lives in :mod:`repro.runtime.remote` (imported lazily to keep
this module subprocess-free): :class:`~repro.runtime.remote.
ProcessBackend`, a supervisor fanning batches over worker subprocesses
via framed pipe IPC, with health checks, restart-on-crash and in-flight
requeue — ``gen_backend="process"`` on :meth:`GenerationService.build`.

On top sits :class:`GenerationService`: lookups fall through a tier
stack — L1 in-memory memo table → L2 on-disk JSONL segment scan →
L3 compacted SQLite index (O(1) cold lookups over large stores, see
:mod:`repro.runtime.persist`) — and only the residue is sent to the
backend, as one batch. Disk hits are promoted into L1; every tier keeps
its own :class:`~repro.runtime.cache.CacheStats` (``tier_stats``) while
the aggregate ``stats`` keeps the historical hits / disk_hits / misses
accounting that the warm-run ``misses == 0`` invariants pin down.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import contextvars
import os
import threading
import time
import warnings
from concurrent.futures import TimeoutError as _FutureTimeoutError
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Protocol, Sequence, runtime_checkable

from repro.llm.model import SIMULATOR_VERSION, GenerationTrace, TransparentLLM
from repro.runtime.cache import _MISS, CacheStats, GenerationCache, instance_key
from repro.runtime.persist import (
    PersistentGenerationCache,
    generation_namespace,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.linking.instance import SchemaLinkingInstance
    from repro.runtime.pool import WorkerPool

__all__ = [
    "FREE",
    "FORCED",
    "SIMULATOR",
    "ASYNC",
    "PROCESS",
    "GEN_BACKENDS",
    "PIPE_TRANSPORT",
    "UNIX_TRANSPORT",
    "TCP_TRANSPORT",
    "TRANSPORTS",
    "MEMORY_TIER",
    "SEGMENT_TIER",
    "SQLITE_TIER",
    "FLEET_TOKEN_ENV",
    "BackendSpec",
    "DeadlineExceeded",
    "deadline_scope",
    "effective_timeout",
    "GenerationRequest",
    "GenerationBackend",
    "SimulatorBackend",
    "AsyncBatchedBackend",
    "MicrobatchStats",
    "GenerationService",
    "simulator_identity",
]

FREE = "free"
FORCED = "forced"
KINDS = (FREE, FORCED)

SIMULATOR = "simulator"
ASYNC = "async"
PROCESS = "process"
GEN_BACKENDS = (SIMULATOR, ASYNC, PROCESS)

# Where process-backend workers live: spawned over stdio pipes, or
# connected over a listening socket (unix-domain / TCP) that external
# ``repro-worker`` processes can also join.
PIPE_TRANSPORT = "pipe"
UNIX_TRANSPORT = "unix"
TCP_TRANSPORT = "tcp"
TRANSPORTS = (PIPE_TRANSPORT, UNIX_TRANSPORT, TCP_TRANSPORT)

MEMORY_TIER = "memory"
SEGMENT_TIER = "segments"
SQLITE_TIER = "sqlite"

# Shared-secret fallback for ``BackendSpec.fleet_token`` /
# ``repro-worker --fleet-token``: the operator exports one value on the
# supervisor host and every worker host instead of threading it through
# argv (where it would leak into ``ps`` output and shell history).
FLEET_TOKEN_ENV = "REPRO_FLEET_TOKEN"


class DeadlineExceeded(RuntimeError):
    """A generation batch outlived its per-request deadline.

    Raised by the deadline-aware backends (``async``, ``process``) to the
    *caller only*: the in-flight work is disowned — its eventual result
    is discarded without being counted as a duplicate, and a worker
    crash afterwards will not requeue it — so a timed-out request is
    never silently duplicated. ``repro-serve`` maps this to HTTP 503.
    """

    def __init__(self, timeout_s: float, message: "str | None" = None):
        self.timeout_s = float(timeout_s)
        super().__init__(
            message
            if message is not None
            else f"generation exceeded its {self.timeout_s:g}s deadline"
        )


# Per-caller deadline override. ``None`` (the default contextvar value)
# means "no override: use the backend's configured request_timeout_s";
# a scope carrying ``None`` explicitly *suspends* the deadline, which is
# how warm-up / fit traffic opts out on the calling thread.
_UNSET = object()
_deadline_override: "contextvars.ContextVar[object]" = contextvars.ContextVar(
    "repro_deadline_override", default=_UNSET
)


@contextlib.contextmanager
def deadline_scope(timeout_s: "float | None"):
    """Override the backend deadline for generations on this thread.

    ``deadline_scope(0.05)`` tightens (or sets) the deadline for every
    ``generate`` call made inside the block on the current thread —
    ``repro-serve`` uses it for the per-request ``timeout_s`` field.
    ``deadline_scope(None)`` suspends deadlines entirely (warm-up
    traffic). Contextvars do not propagate into worker-pool threads, so
    fan-out code must rely on the backend default instead.
    """
    if timeout_s is not None and not float(timeout_s) > 0:
        raise ValueError("deadline_scope timeout_s must be > 0 (or None)")
    token = _deadline_override.set(None if timeout_s is None else float(timeout_s))
    try:
        yield
    finally:
        _deadline_override.reset(token)


def effective_timeout(default: "float | None") -> "float | None":
    """The deadline a backend should apply right now, seconds or None."""
    override = _deadline_override.get()
    if override is _UNSET:
        return default
    return override  # type: ignore[return-value]


def simulator_identity(llm: "TransparentLLM") -> tuple:
    """The canonical backend identity for one simulated LLM.

    Every backend that executes generations *with this llm's bits* —
    in-process, async-batched, worker subprocesses — must return exactly
    this tuple from ``identity()``, or its persistent-cache namespace
    silently splits from the others and warm stores stop being shared.
    The simulator version participates because a bit-level synthesis
    change (e.g. ``hidden-v2``) must land in a fresh namespace.
    """
    return (getattr(llm, "version", SIMULATOR_VERSION), llm.config, llm.seed)


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return parsed


def _nonnegative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return parsed


def _nonnegative_float(value: str) -> float:
    parsed = float(value)
    if not parsed >= 0:  # also rejects NaN
        raise argparse.ArgumentTypeError("must be >= 0")
    return parsed


def _positive_float(value: str) -> float:
    parsed = float(value)
    if not parsed > 0:  # also rejects NaN
        raise argparse.ArgumentTypeError("must be > 0")
    return parsed


@dataclass(frozen=True)
class BackendSpec:
    """The one description of how generations execute.

    This used to be ~eight keyword arguments copy-pasted (and drifting)
    across ``GenerationService.build``, ``ExperimentContext``,
    ``SweepRunner`` and every CLI's argparse block. Now there is one
    value: build it directly, from parsed CLI arguments
    (:meth:`from_args` — ``repro-run``, ``repro-sweep``, ``repro-serve``
    and ``repro-worker`` all register the same flags via
    :meth:`add_arguments`), or round-trip it (:meth:`to_args` emits the
    argv fragment that parses back to an equal spec; pickle ships it to
    shards and workers unchanged).

    Fields beyond ``kind``/``workers`` apply to the backends that read
    them — microbatching knobs to ``async``, restart/log/transport knobs
    to ``process`` — and are carried (harmlessly) for the rest, so a
    spec can be re-targeted by ``replace(spec, kind=...)`` alone.
    ``workers=0`` is the accept-only process supervisor (socket
    transports): serve no local workers, wait for external
    ``repro-worker --connect`` joins.
    """

    kind: str = SIMULATOR
    workers: int = 4
    max_batch: int = 8
    max_wait_ms: float = 2.0
    max_pending: int = 256
    max_restarts: "int | None" = None
    worker_log_dir: "str | None" = None
    transport: str = PIPE_TRANSPORT
    address: "str | None" = None
    request_timeout_s: "float | None" = None
    fleet_token: "str | None" = None
    shared_memory: bool = True

    def __post_init__(self):
        if self.kind not in GEN_BACKENDS:
            raise ValueError(
                f"unknown generation backend {self.kind!r}; pick from {GEN_BACKENDS}"
            )
        if self.address is not None:
            prefix = self.address.partition(":")[0]
            if prefix not in (UNIX_TRANSPORT, TCP_TRANSPORT):
                raise ValueError(
                    f"bad worker address {self.address!r}; "
                    "expected unix:/path or tcp:host:port"
                )
            # An address names its transport; let it win over the default.
            if self.transport != prefix:
                object.__setattr__(self, "transport", prefix)
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; pick from {TRANSPORTS}"
            )
        if self.worker_log_dir is not None:
            object.__setattr__(self, "worker_log_dir", str(self.worker_log_dir))
        accept_only = self.kind == PROCESS and self.transport != PIPE_TRANSPORT
        if self.workers < (0 if accept_only else 1):
            raise ValueError(
                "workers must be >= 1 (0 is allowed only for the process "
                "backend on a socket transport: the accept-only supervisor)"
            )
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.max_restarts is not None and self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0 (or None for the default)")
        if self.request_timeout_s is not None and not self.request_timeout_s > 0:
            raise ValueError("request_timeout_s must be > 0 (or None for no deadline)")
        if self.fleet_token is not None and not self.fleet_token:
            raise ValueError("fleet_token must be non-empty (or None for no auth)")

    # -- argparse round-trips ------------------------------------------------

    @classmethod
    def add_arguments(
        cls, parser: argparse.ArgumentParser, defaults: "BackendSpec | None" = None
    ) -> None:
        """Register the shared generation-backend flags on ``parser``.

        Every CLI that builds a service calls this — one flag vocabulary,
        one help text, zero drift. ``defaults`` customizes per-CLI
        defaults without forking the flags.
        """
        spec = defaults if defaults is not None else cls()
        group = parser.add_argument_group("generation backend")
        group.add_argument(
            "--backend",
            choices=GEN_BACKENDS,
            default=spec.kind,
            help="generation backend: direct simulator calls, the "
            "microbatch-coalescing async scheduler, or crash-isolated "
            "worker processes (byte-identical results on every axis)",
        )
        group.add_argument(
            "--gen-workers",
            type=_nonnegative_int,
            default=None,
            help="backend worker count: concurrent async batches, or process "
            "workers (0 = accept-only socket supervisor; default: follow "
            f"--workers, else {spec.workers})",
        )
        group.add_argument(
            "--max-batch",
            type=_positive_int,
            default=spec.max_batch,
            help="async backend: max requests coalesced into one microbatch",
        )
        group.add_argument(
            "--max-wait-ms",
            type=_nonnegative_float,
            default=spec.max_wait_ms,
            help="async backend: max milliseconds a microbatch waits to fill",
        )
        group.add_argument(
            "--max-pending",
            type=_positive_int,
            default=spec.max_pending,
            help="async backend: submission-queue bound (backpressure)",
        )
        group.add_argument(
            "--max-restarts",
            type=_nonnegative_int,
            default=spec.max_restarts,
            help="process backend: total worker restart budget "
            "(default: 2 x workers)",
        )
        group.add_argument(
            "--worker-log-dir",
            default=spec.worker_log_dir,
            help="process backend: directory capturing per-worker stderr logs "
            "(default: a fresh temp directory)",
        )
        group.add_argument(
            "--transport",
            choices=TRANSPORTS,
            default=spec.transport,
            help="process backend: spawn workers over stdio pipes, or listen "
            "on a unix/tcp socket that repro-worker processes connect to",
        )
        group.add_argument(
            "--address",
            default=spec.address,
            help="process backend: socket listen address (unix:/path or "
            "tcp:host:port; default: an auto-assigned local address)",
        )
        group.add_argument(
            "--request-timeout-s",
            type=_positive_float,
            default=spec.request_timeout_s,
            help="async/process backends: per-request deadline in seconds; a "
            "generation past it fails with DeadlineExceeded (HTTP 503 under "
            "repro-serve) instead of waiting forever (default: no deadline)",
        )
        group.add_argument(
            "--fleet-token",
            default=spec.fleet_token,
            help="process backend: shared secret every socket worker must "
            "present at hello; unauthenticated connections are dropped "
            f"(default: the {FLEET_TOKEN_ENV} environment variable, if set)",
        )
        group.add_argument(
            "--no-shared-memory",
            dest="shared_memory",
            action="store_false",
            default=spec.shared_memory,
            help="process backend: disable the per-worker shared-memory data "
            "plane and pickle every trace inline (results are byte-identical "
            "either way; remote TCP workers always fall back to inline)",
        )

    @classmethod
    def from_args(
        cls, args: argparse.Namespace, workers: "int | None" = None
    ) -> "BackendSpec":
        """The spec one parsed CLI invocation describes.

        Backend workers follow ``--gen-workers`` when given, then the
        ``workers`` override (a CLI whose ``--workers`` means backend
        workers passes it here), then the namespace's ``workers``
        attribute, then the dataclass default.
        """
        gen_workers = getattr(args, "gen_workers", None)
        if gen_workers is None:
            gen_workers = workers
        if gen_workers is None:
            gen_workers = getattr(args, "workers", None)
        spec = cls(
            kind=getattr(args, "backend", SIMULATOR),
            max_batch=getattr(args, "max_batch", cls.max_batch),
            max_wait_ms=getattr(args, "max_wait_ms", cls.max_wait_ms),
            max_pending=getattr(args, "max_pending", cls.max_pending),
            max_restarts=getattr(args, "max_restarts", None),
            worker_log_dir=getattr(args, "worker_log_dir", None),
            transport=getattr(args, "transport", PIPE_TRANSPORT),
            address=getattr(args, "address", None),
            request_timeout_s=getattr(args, "request_timeout_s", None),
            fleet_token=getattr(args, "fleet_token", None),
            shared_memory=getattr(args, "shared_memory", True),
        )
        if gen_workers is not None:
            spec = replace(spec, workers=int(gen_workers))
        return spec

    def to_args(self) -> "list[str]":
        """The argv fragment reproducing this spec (from_args inverse)."""
        argv = [
            "--backend",
            self.kind,
            "--gen-workers",
            str(self.workers),
            "--max-batch",
            str(self.max_batch),
            "--max-wait-ms",
            str(self.max_wait_ms),
            "--max-pending",
            str(self.max_pending),
            "--transport",
            self.transport,
        ]
        if self.max_restarts is not None:
            argv += ["--max-restarts", str(self.max_restarts)]
        if self.worker_log_dir is not None:
            argv += ["--worker-log-dir", self.worker_log_dir]
        if self.address is not None:
            argv += ["--address", self.address]
        if self.request_timeout_s is not None:
            argv += ["--request-timeout-s", repr(self.request_timeout_s)]
        if self.fleet_token is not None:
            argv += ["--fleet-token", self.fleet_token]
        if not self.shared_memory:
            argv += ["--no-shared-memory"]
        return argv

    # -- construction --------------------------------------------------------

    def build(self, llm, **kwargs) -> "GenerationService":
        """A wired :class:`GenerationService` for ``llm`` (see its build)."""
        return GenerationService.build(llm, spec=self, **kwargs)

    def make_backend(self, llm: TransparentLLM, pool=None):
        """Just the backend this spec describes (no cache tiers)."""
        if self.kind == ASYNC:
            # Parallelism comes from the scheduler's concurrent batches
            # alone; a pooled inner backend would multiply into
            # workers² threads (plus one executor per microbatch).
            return AsyncBatchedBackend(
                SimulatorBackend(llm),
                max_batch=self.max_batch,
                max_wait_ms=self.max_wait_ms,
                max_pending=self.max_pending,
                workers=self.workers,
                request_timeout_s=self.request_timeout_s,
            )
        if self.kind == PROCESS:
            # Lazy import: remote builds on this module's request types.
            from repro.runtime.remote import ProcessBackend

            extra = {} if self.max_restarts is None else {"max_restarts": self.max_restarts}
            # The env fallback resolves at construction time, on the host
            # building the supervisor — a spec pickled with
            # fleet_token=None picks up the token of whatever machine it
            # lands on, which is exactly what fleet-wide env config wants.
            token = self.fleet_token or os.environ.get(FLEET_TOKEN_ENV) or None
            return ProcessBackend(
                llm,
                workers=self.workers,
                log_dir=self.worker_log_dir,
                transport=self.transport,
                address=self.address,
                request_timeout_s=self.request_timeout_s,
                fleet_token=token,
                shared_memory=self.shared_memory,
                **extra,
            )
        return SimulatorBackend(llm, pool=pool)


@dataclass(frozen=True)
class GenerationRequest:
    """One unit of generation work: which protocol over which instance.

    ``kind`` selects the paper's generation mode — ``"free"`` (what an
    unprotected linker emits) or ``"forced"`` (the §3.1 teacher-forced
    label-collection protocol). ``key`` reproduces the historical cache
    key tuple, so stores written before this module existed stay warm.
    """

    kind: str
    instance: "SchemaLinkingInstance"

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown generation kind {self.kind!r}; pick from {KINDS}")

    @property
    def key(self) -> tuple:
        return (self.kind, instance_key(self.instance))


@runtime_checkable
class GenerationBackend(Protocol):
    """See the module docstring for the full protocol contract."""

    def generate(
        self, requests: "Sequence[GenerationRequest]"
    ) -> "list[GenerationTrace]": ...  # pragma: no cover - protocol

    def identity(self) -> tuple: ...  # pragma: no cover - protocol


class SimulatorBackend:
    """The reference backend: direct calls into a ``TransparentLLM``.

    With ``pool`` (a :class:`~repro.runtime.pool.WorkerPool`), batches
    fan out over threads — still order-preserving and byte-identical,
    because each trace is a pure function of its request alone.
    """

    def __init__(self, llm: TransparentLLM, pool: "WorkerPool | None" = None):
        self.llm = llm
        self.pool = pool

    @property
    def base_llm(self) -> TransparentLLM:
        return self.llm

    def identity(self) -> tuple:
        return simulator_identity(self.llm)

    def _one(self, request: GenerationRequest) -> GenerationTrace:
        if request.kind == FORCED:
            return self.llm.teacher_forced_trace(request.instance)
        return self.llm.generate(request.instance)

    def generate(
        self, requests: "Sequence[GenerationRequest]"
    ) -> "list[GenerationTrace]":
        requests = list(requests)
        if self.pool is not None and not self.pool.is_serial and len(requests) > 1:
            return self.pool.map_ordered(self._one, requests)
        return [self._one(request) for request in requests]

    # Shipped to worker processes as part of a pickled pipeline; the
    # pool is reconstructed from its (workers, backend) config.
    def __getstate__(self) -> dict:
        return {"llm": self.llm, "pool": self.pool}

    def __setstate__(self, state: dict) -> None:
        self.llm = state["llm"]
        self.pool = state["pool"]


@dataclass(frozen=True)
class MicrobatchStats:
    """Scheduler bookkeeping for one :class:`AsyncBatchedBackend`."""

    n_batches: int
    n_requests: int
    max_batch: int

    @property
    def mean_batch(self) -> float:
        return self.n_requests / self.n_batches if self.n_batches else 0.0


class AsyncBatchedBackend:
    """Coalesces concurrent generation requests into microbatches.

    An ``asyncio`` event loop on a dedicated daemon thread pulls
    requests off a bounded queue; the first arrival opens a batch that
    closes after ``max_batch`` requests or ``max_wait_ms`` milliseconds,
    whichever comes first. Closed batches execute on worker threads (at
    most ``workers`` concurrently — acquiring the slot *before* the next
    batch is collected, so a saturated backend exerts backpressure
    through the queue all the way to the submitting threads).

    Determinism: traces are pure functions of their requests, and each
    request resolves its own future, so results are bit-identical to the
    wrapped backend's no matter how the scheduler sliced the batches.
    ``identity()`` delegates to the inner backend — batching must never
    change the cache namespace.
    """

    def __init__(
        self,
        inner,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        max_pending: int = 256,
        workers: int = 4,
        request_timeout_s: "float | None" = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if request_timeout_s is not None and not request_timeout_s > 0:
            raise ValueError("request_timeout_s must be > 0 (or None)")
        self.inner = inner
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.max_pending = int(max_pending)
        self.workers = int(workers)
        self.request_timeout_s = (
            None if request_timeout_s is None else float(request_timeout_s)
        )
        self._lock = threading.Lock()
        self._started = False  # guarded-by: self._lock
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._queue: "asyncio.Queue | None" = None
        self._semaphore: "asyncio.Semaphore | None" = None
        self._scheduler_task: "asyncio.Task | None" = None
        self._batch_tasks: "set[asyncio.Task]" = set()
        self._n_batches = 0
        self._n_batched_requests = 0
        self._max_batch_seen = 0

    @property
    def base_llm(self):
        return self.inner.base_llm

    def identity(self) -> tuple:
        return self.inner.identity()

    @property
    def batch_stats(self) -> MicrobatchStats:
        return MicrobatchStats(
            n_batches=self._n_batches,
            n_requests=self._n_batched_requests,
            max_batch=self._max_batch_seen,
        )

    # -- lifecycle -----------------------------------------------------------

    def _ensure_started(self) -> None:
        # repro-lint: ignore[lock-discipline] double-checked fast path: a stale False retries under the lock, a stale True is impossible (only ever set True)
        if self._started:
            return
        with self._lock:
            if self._started:
                return
            ready = threading.Event()

            def run() -> None:
                loop = asyncio.new_event_loop()
                asyncio.set_event_loop(loop)
                self._loop = loop
                self._queue = asyncio.Queue(maxsize=self.max_pending)
                self._semaphore = asyncio.Semaphore(self.workers)
                self._scheduler_task = loop.create_task(self._schedule())
                ready.set()
                try:
                    loop.run_forever()
                finally:
                    pending = asyncio.all_tasks(loop)
                    for task in pending:
                        task.cancel()
                    if pending:
                        loop.run_until_complete(
                            asyncio.gather(*pending, return_exceptions=True)
                        )
                    loop.close()

            self._thread = threading.Thread(
                target=run, name="generation-microbatcher", daemon=True
            )
            self._thread.start()
            ready.wait()
            self._started = True

    def close(self) -> None:
        """Stop the scheduler thread without stranding any submitter.

        Close is safe whenever: queued-but-unbatched requests get their
        futures cancelled (the submitter's handle raises
        ``CancelledError`` instead of blocking forever), in-flight
        batches are awaited so their futures resolve normally (or with
        the backend's exception), and anything racing into the queue
        during shutdown is swept up by the loop-teardown cancellation.
        """
        with self._lock:
            if not self._started:
                return
            loop = self._loop
            try:
                # Graceful phase on the loop thread: stop batching,
                # cancel the queued futures, let running batches finish.
                asyncio.run_coroutine_threadsafe(self._shutdown(), loop).result(
                    timeout=10
                )
            except (TimeoutError, RuntimeError):  # wedged loop: hard-stop below
                pass
            try:
                loop.call_soon_threadsafe(loop.stop)
            except RuntimeError:  # already closed by a crashed loop thread
                pass
            self._thread.join(timeout=10)
            self._started = False
            self._loop = None
            self._thread = None
            self._queue = None
            self._semaphore = None
            self._scheduler_task = None
            self._batch_tasks = set()

    async def _shutdown(self) -> None:
        """Graceful teardown, on the loop thread (see :meth:`close`)."""
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            await asyncio.gather(self._scheduler_task, return_exceptions=True)
        # Queued-but-unbatched submissions: no batch will ever run them.
        while True:
            try:
                _request, future = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if not future.done():
                future.cancel()
        # In-flight batches resolve their own futures (result or error);
        # awaiting them here is what un-hangs close-during-a-batch.
        if self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks), return_exceptions=True)

    def __enter__(self) -> "AsyncBatchedBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    def generate(
        self, requests: "Sequence[GenerationRequest]"
    ) -> "list[GenerationTrace]":
        requests = list(requests)
        if not requests:
            return []
        self._ensure_started()
        handles = [
            asyncio.run_coroutine_threadsafe(self._submit(request), self._loop)
            for request in requests
        ]
        timeout = effective_timeout(self.request_timeout_s)
        if timeout is None:
            return [handle.result() for handle in handles]
        deadline = time.monotonic() + timeout
        results = []
        for handle in handles:
            try:
                results.append(handle.result(max(0.0, deadline - time.monotonic())))
            except _FutureTimeoutError:
                # Disown the whole batch: cancelling the submit
                # coroutines unblocks queued requests immediately;
                # batches already running resolve futures nobody reads
                # (``_run_batch`` checks ``future.done()`` first).
                for pending in handles:
                    pending.cancel()
                raise DeadlineExceeded(timeout) from None
        return results

    async def _submit(self, request: GenerationRequest) -> GenerationTrace:
        future = asyncio.get_running_loop().create_future()
        # Bounded queue: a saturated scheduler blocks producers here.
        await self._queue.put((request, future))
        return await future

    # -- the scheduler (runs on the loop thread) -----------------------------

    async def _schedule(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + self.max_wait_ms / 1000.0
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    while len(batch) < self.max_batch:  # drain what's queued
                        try:
                            batch.append(self._queue.get_nowait())
                        except asyncio.QueueEmpty:
                            break
                    break
                try:
                    batch.append(await asyncio.wait_for(self._queue.get(), remaining))
                except TimeoutError:
                    break
            # Acquire the execution slot before collecting the next
            # batch: with all workers busy, the queue fills and put()
            # blocks the submitters — end-to-end backpressure.
            await self._semaphore.acquire()
            self._n_batches += 1
            self._n_batched_requests += len(batch)
            self._max_batch_seen = max(self._max_batch_seen, len(batch))
            # The loop holds only weak refs to tasks: keep a strong one
            # until done, or GC could drop a batch mid-flight and leave
            # its submitters blocked forever.
            task = asyncio.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: list) -> None:
        try:
            requests = [request for request, _future in batch]
            try:
                traces = await asyncio.to_thread(self.inner.generate, requests)
                if len(traces) != len(requests):
                    # A broken backend must fail loudly, not strand the
                    # unpaired submitters in an undebuggable hang.
                    raise RuntimeError(
                        f"backend returned {len(traces)} traces for "
                        f"{len(requests)} requests"
                    )
            except BaseException as exc:  # propagate to every submitter
                for _request, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                return
            for (_request, future), trace in zip(batch, traces):
                if not future.done():
                    future.set_result(trace)
        finally:
            self._semaphore.release()

    # Pickled as configuration only; the child restarts its own loop.
    def __getstate__(self) -> dict:
        return {
            "inner": self.inner,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_pending": self.max_pending,
            "workers": self.workers,
            "request_timeout_s": self.request_timeout_s,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)


# -- the service --------------------------------------------------------------


class _TierCounter:
    """Mutable hit/miss counters for one tier (snapshot: CacheStats)."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses)


class GenerationService:
    """Tiered-cache generation front-end over a pluggable backend.

    Lookups fall through L1 (in-memory memo table) → L2 (on-disk segment
    scan) → L3 (compacted SQLite index); only the residue of a batch is
    sent to ``backend.generate`` — as a single batch, which is what the
    async backend coalesces. Disk hits are promoted into L1; computed
    traces are admitted to L1 and spilled to the persistent store.

    ``stats`` preserves the historical aggregate accounting (``hits`` =
    L1, ``disk_hits`` = L2 + L3, ``misses`` = backend computations) by
    keeping the underlying cache object the single source of truth —
    every consumer that read ``CachingLLM.stats`` or ``cache.stats``
    before sees identical semantics. ``tier_stats`` adds the per-tier
    refinement (which disk tier served a cold lookup).
    """

    def __init__(self, backend, cache: "GenerationCache | None" = None):
        self.backend = backend
        self.cache = cache if cache is not None else GenerationCache()
        self._persistent = isinstance(self.cache, PersistentGenerationCache)
        tiers = [MEMORY_TIER]
        if self._persistent:
            tiers += [SEGMENT_TIER, SQLITE_TIER]
        self._tier_lock = threading.Lock()
        self._tiers = {name: _TierCounter() for name in tiers}  # guarded-by: self._tier_lock

    @classmethod
    def build(
        cls,
        llm: TransparentLLM,
        gen_backend: "str | None" = None,
        cache: "GenerationCache | None" = None,
        cache_dir=None,
        pool: "WorkerPool | None" = None,
        max_batch: "int | None" = None,
        max_wait_ms: "float | None" = None,
        max_pending: "int | None" = None,
        workers: "int | None" = None,
        use_index: bool = True,
        worker_log_dir=None,
        spec: "BackendSpec | None" = None,
        backend: "str | None" = None,
    ) -> "GenerationService":
        """Wire a service for ``llm``: backend choice plus cache tiers.

        The backend configuration is one :class:`BackendSpec` (``spec``).
        The scattered keyword arguments (``gen_backend``, ``workers``,
        ``max_batch``, ...) are the pre-spec surface: still accepted,
        folded into a spec internally, and mutually exclusive with an
        explicit ``spec``. ``backend=`` is the deprecated spelling of
        ``gen_backend=`` and warns.

        ``cache`` wins over ``cache_dir``; with ``cache_dir`` alone a
        :class:`PersistentGenerationCache` is created in the namespace
        derived from the backend's ``identity()`` — so the simulator,
        async and process backends (same identity) share one store.
        """
        if backend is not None:
            warnings.warn(
                "GenerationService.build(backend=...) is deprecated; pass "
                "spec=BackendSpec(kind=...) (or gen_backend=... for one more "
                "release)",
                DeprecationWarning,
                stacklevel=2,
            )
            if gen_backend is not None and gen_backend != backend:
                raise ValueError("pass gen_backend or backend, not both")
            gen_backend = backend
        legacy = {
            "kind": gen_backend,
            "workers": workers,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "max_pending": max_pending,
            "worker_log_dir": worker_log_dir,
        }
        overrides = {key: value for key, value in legacy.items() if value is not None}
        if spec is None:
            spec = BackendSpec(**overrides)
        elif overrides:
            raise ValueError(
                "pass backend configuration on the spec, not alongside it: "
                f"{sorted(overrides)}"
            )
        built = spec.make_backend(llm, pool=pool)
        if cache is None and cache_dir is not None:
            cache = PersistentGenerationCache(
                cache_dir,
                namespace=generation_namespace(*built.identity()),
                use_index=use_index,
            )
        return cls(built, cache=cache)

    # -- surface -------------------------------------------------------------

    @property
    def base_llm(self):
        return self.backend.base_llm

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def tier_stats(self) -> "dict[str, CacheStats]":
        with self._tier_lock:
            return {name: counter.snapshot() for name, counter in self._tiers.items()}

    def namespace(self) -> str:
        """The persistent-store namespace for this backend identity."""
        return generation_namespace(*self.backend.identity())

    def close(self) -> None:
        """Release backend and cache resources (scheduler thread, file
        handles, sqlite connections). Entries stay on disk; a later
        generation through a closed persistent cache simply opens a
        fresh segment."""
        closer = getattr(self.backend, "close", None)
        if callable(closer):
            closer()
        cache_closer = getattr(self.cache, "close", None)
        if callable(cache_closer):
            cache_closer()

    def __enter__(self) -> "GenerationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- generation ----------------------------------------------------------

    def generate_one(self, request: GenerationRequest) -> GenerationTrace:
        return self.generate([request])[0]

    def free_traces(self, instances: "Iterable[SchemaLinkingInstance]") -> list:
        return self.generate([GenerationRequest(FREE, i) for i in instances])

    def forced_traces(self, instances: "Iterable[SchemaLinkingInstance]") -> list:
        return self.generate([GenerationRequest(FORCED, i) for i in instances])

    def generate(
        self, requests: "Sequence[GenerationRequest]"
    ) -> "list[GenerationTrace]":
        """Traces for ``requests`` in order: cache tiers, then one batch.

        Duplicate keys within a batch are computed once; concurrent
        batches racing on the same missing key may both compute it (the
        value is deterministic, the second admit is a harmless
        overwrite) — the same contract as ``GenerationCache``.
        """
        requests = list(requests)
        results: list = [None] * len(requests)
        pending_indexes: "dict[tuple, list[int]]" = {}
        pending: "list[tuple[tuple, GenerationRequest]]" = []
        for i, request in enumerate(requests):
            key = request.key  # hashes candidates/gold once per request
            if key in pending_indexes:  # duplicate within this batch
                pending_indexes[key].append(i)
                continue
            value = self._lookup(key)
            if value is not _MISS:
                results[i] = value
            else:
                pending_indexes[key] = [i]
                pending.append((key, request))
        if pending:
            traces = self.backend.generate([request for _key, request in pending])
            for (key, _request), trace in zip(pending, traces):
                self.cache.admit(key, trace, miss=True)
                for i in pending_indexes[key]:
                    results[i] = trace
        return results

    # -- tier plumbing -------------------------------------------------------

    def peek_tier(self, request: "GenerationRequest | tuple") -> "str | None":
        """Which tier would serve ``request`` right now — stats-free.

        Serving uses this for per-request diagnostics (the ``cache_tier``
        field of a ``/v1/query`` response) *before* the generation runs;
        it must not perturb ``stats`` / ``tier_stats``, which stay exact
        cumulative accounting of real lookups. ``None`` means a backend
        computation would happen.
        """
        key = request.key if isinstance(request, GenerationRequest) else request
        if self.cache.contains(key):
            return MEMORY_TIER
        if not self._persistent:
            return None
        record, tier = self.cache.probe_disk(self.cache.address(key))
        if record is None:
            return None
        return SQLITE_TIER if tier == SQLITE_TIER else SEGMENT_TIER

    def _count(self, tier: str, hit: bool) -> None:
        with self._tier_lock:
            counter = self._tiers[tier]
            if hit:
                counter.hits += 1
            else:
                counter.misses += 1

    def _lookup(self, key: tuple):
        value = self.cache.probe(key)
        if value is not _MISS:
            self._count(MEMORY_TIER, hit=True)
            return value
        self._count(MEMORY_TIER, hit=False)
        if not self._persistent:
            return _MISS
        record, tier = self.cache.probe_disk(self.cache.address(key))
        if record is None:
            self._count(SEGMENT_TIER, hit=False)
            if tier == SQLITE_TIER:  # an index was actually consulted
                self._count(SQLITE_TIER, hit=False)
            return _MISS
        if tier == SQLITE_TIER:
            self._count(SEGMENT_TIER, hit=False)
            self._count(SQLITE_TIER, hit=True)
        else:
            self._count(SEGMENT_TIER, hit=True)
        try:
            # record_to_trace resolves binary sidecar blocks through the
            # cache's shared mmap reader — a zero-copy view, no decode.
            trace = self.cache.record_to_trace(record)
        except (OSError, ValueError, KeyError):
            return _MISS  # torn/vanished sidecar: recompute and respill
        # Hit promotion: cold-tier entries become L1 hits from now on.
        self.cache.admit(key, trace, disk_hit=True)
        return trace

    # Shipped to worker processes with a pickled pipeline: the cache
    # reopens its store view, tier counters start cold (per-process
    # stats never propagate back — same contract as GenerationCache).
    def __getstate__(self) -> dict:
        return {"backend": self.backend, "cache": self.cache}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["backend"], cache=state["cache"])
