"""Cross-process persistent generation cache.

The in-memory :class:`~repro.runtime.cache.GenerationCache` dies with
its process, so every sweep shard and every re-run pays the full
generation cost again. This module spills cache entries to a
content-addressed on-disk store that any number of concurrent readers
and writers — threads, worker processes, separate shard invocations,
even separate machines over a shared filesystem — can share safely.

Store layout
------------
``cache_dir/`` holds one subdirectory per *namespace* (a digest of the
simulated LLM's configuration and seed — generations from differently
seeded models must never alias), each containing append-only JSONL
*segment* files::

    cache_dir/
      <namespace>/
        w-<pid>-<nonce>.jsonl    # one segment per writer instance
        c-<pid>-<nonce>.jsonl    # a compacted segment (see compact())

Each line is one entry ``{"k": <address>, "kind": ..., "v": <trace>}``.
The address is a 128-bit blake2b digest over (namespace, cache key) —
the full identity of one generation input, including the candidate
universe via :func:`~repro.runtime.cache.instance_key` — so an entry is
immutable by construction: the same address always maps to the same
value, and duplicate writes are harmless.

Concurrency
-----------
Writers never touch each other's files: every cache instance lazily
creates its own uniquely named segment and appends complete lines under
an in-process lock, flushing per entry. Readers scan every segment in
the namespace, remember per-file byte offsets so refreshes only read
appended tails, and tolerate a truncated final line (a writer killed
mid-append) by leaving it for the next refresh. No file locks are
needed because segments are single-writer and entries are immutable.

Values round-trip *exactly*: a trace's hidden states are stored
columnar — the whole ``(n_steps, n_layers, dim)`` tensor as one base64
block with dtype and shape (one encode/decode per trace, matching the
simulator's columnar ``GenerationTrace``) — so a trace rehydrated from
disk is bit-identical to the one computed, which is what makes sharded
sweeps byte-identical to unsharded ones even when probes are trained
from cached traces. Legacy per-step-blob records (pre-``hidden-v2``
stores) are still readable.

The SQLite index tier
---------------------
Cold lookups normally scan whole segments into memory — O(store size)
on first touch, which is the right trade for small stores but not for
millions of entries. :meth:`PersistentGenerationCache.compact` therefore
also writes ``index.sqlite`` next to the compacted segment: an
``address → (segment, offset, length)`` map (plus the byte size of the
segment it covers). Readers skip scanning indexed segments entirely and
serve their entries by O(1) point lookup + seek — only segments written
*after* the compaction are ever scanned. The index is rebuilt on every
compaction (written to a temp file and atomically renamed), so a stale
index can never shadow newer entries: anything not in the index is
found by the ordinary tail scan.

Writer locks and compaction safety
----------------------------------
Compacting while another writer appends would silently drop (or
duplicate) that writer's entries, so the rule "compact only while no
writer is active" is *enforced*: every writer marks its segment with a
``<segment>.lock`` sidecar (pid + host, removed on close) and
:meth:`PersistentGenerationCache.compact` fails fast with
:class:`WriterActiveError` while any *other* live lock exists.
Same-host locks whose pid is gone are stale — a crashed writer — and
are swept up; locks from other hosts cannot be probed and count as
active. ``force=True`` (the CLI's ``--force``) overrides the guard for
operators who know the writers are actually gone.

Eviction
--------
None, by design: entries are content-addressed and immutable, so the
store only grows and never goes stale. Delete the namespace directory
(or the whole ``cache_dir``) to evict everything, or call
:meth:`PersistentGenerationCache.compact` — guarded as above — to
rewrite all segments into one with duplicates dropped.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import socket
import sqlite3
import threading
from pathlib import Path

import numpy as np

from repro.llm.model import GenerationStep, GenerationTrace
from repro.runtime.cache import _MISS, CacheStats, GenerationCache

__all__ = [
    "INDEX_NAME",
    "LOCK_SUFFIX",
    "PersistentGenerationCache",
    "SqliteSegmentIndex",
    "WriterActiveError",
    "active_writer_locks",
    "generation_namespace",
    "store_stats",
    "trace_to_record",
    "trace_from_record",
]

INDEX_NAME = "index.sqlite"
LOCK_SUFFIX = ".lock"


class WriterActiveError(RuntimeError):
    """``compact()`` refused: another writer holds a live segment lock."""


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # exists, just not ours to signal
        return True
    return True


def active_writer_locks(
    directory: "str | Path", exclude: "Path | None" = None
) -> "list[dict]":
    """Live writer locks in one namespace directory.

    Parses every ``*.lock`` sidecar: same-host locks whose pid is dead
    are deleted in passing (crashed writers must not wedge compaction
    forever) and not reported; unreadable locks are conservatively
    reported as active with ``"pid": None``; other-host locks cannot be
    probed and always count as active. ``exclude`` skips the caller's
    own lock.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    locks: list[dict] = []
    for path in sorted(directory.glob(f"*{LOCK_SUFFIX}")):
        if exclude is not None and path == exclude:
            continue
        try:
            info = json.loads(path.read_text())
            pid = int(info["pid"])
            host = str(info.get("host", ""))
        except FileNotFoundError:
            continue  # unlinked between glob and read: the writer just closed
        except (OSError, ValueError, KeyError):
            locks.append({"path": str(path), "pid": None, "host": None})
            continue
        if host == socket.gethostname() and not _pid_alive(pid):
            path.unlink(missing_ok=True)  # stale: the writer crashed
            continue
        locks.append({"path": str(path), "pid": pid, "host": host})
    return locks


def generation_namespace(*identity) -> str:
    """The store namespace for one simulated LLM identity.

    A generation is a pure function of the backend ``identity()`` —
    (simulator version, LLM config, LLM seed) — and the instance; the
    instance is captured by the cache key, the rest lives here. The
    simulator version participates so a bit-level change to trace
    synthesis (e.g. the ``hidden-v2`` two-phase scheme) lands in a fresh
    namespace and never aliases traces written by an older scheme.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in identity:
        digest.update(repr(part).encode("utf8"))
        digest.update(b"\x1f")
    return f"llm-{digest.hexdigest()}"


# -- exact trace (de)serialization --------------------------------------------


def _encode_array(arr: np.ndarray) -> dict:
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "b64": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _decode_array(record: dict) -> np.ndarray:
    raw = base64.b64decode(record["b64"].encode("ascii"))
    arr = np.frombuffer(raw, dtype=np.dtype(record["dtype"]))
    # copy(): frombuffer yields a read-only view over the bytes object.
    return arr.reshape(record["shape"]).copy()


def trace_to_record(trace: GenerationTrace) -> dict:
    """A JSON-able, bit-exact record of one generation trace.

    Hidden states are serialized columnar: the whole ``(n, layers,
    dim)`` tensor as one base64 block (one encode, one decode per
    trace) rather than one blob per step.
    """
    return {
        "instance_id": trace.instance_id,
        "aborted": bool(trace.aborted),
        "hidden": _encode_array(trace.hidden_matrix()),
        "steps": [
            {
                "position": int(step.position),
                "proposed": step.proposed,
                "max_prob": float(step.max_prob),
                "item_index": int(step.item_index),
                "within_index": int(step.within_index),
                "is_branching": bool(step.is_branching),
                "committed": step.committed,
                "forced": bool(step.forced),
                "decision_point": bool(step.decision_point),
            }
            for step in trace.steps
        ],
    }


def _step_from_record(step: dict, hidden) -> GenerationStep:
    return GenerationStep(
        position=step["position"],
        proposed=step["proposed"],
        hidden=hidden,
        max_prob=step["max_prob"],
        item_index=step["item_index"],
        within_index=step["within_index"],
        is_branching=step["is_branching"],
        committed=step["committed"],
        forced=step["forced"],
        decision_point=step.get("decision_point", True),
    )


def trace_from_record(record: dict) -> GenerationTrace:
    """Rehydrate a trace; inverse of :func:`trace_to_record`.

    Reads both layouts: the columnar format (one ``hidden`` tensor at
    the trace level, per-step views) and the legacy per-step-blob
    format still found in pre-``hidden-v2`` stores.
    """
    if "hidden" in record:
        stack = _decode_array(record["hidden"])
        steps = [_step_from_record(step, stack[i]) for i, step in enumerate(record["steps"])]
        return GenerationTrace(
            instance_id=record["instance_id"],
            steps=steps,
            aborted=record["aborted"],
            hidden_stack=stack,
        )
    return GenerationTrace(
        instance_id=record["instance_id"],
        steps=[_step_from_record(step, _decode_array(step["hidden"])) for step in record["steps"]],
        aborted=record["aborted"],
    )


# -- the compacted SQLite index tier ------------------------------------------


class SqliteSegmentIndex:
    """O(1) ``address → (segment, offset, length)`` lookups over a store.

    Built by :meth:`PersistentGenerationCache.compact` over the freshly
    compacted segment; readers resolve an address to an exact byte range
    and seek-read just that line instead of scanning the segment. The
    index also records the byte size of every segment it covers so scans
    can skip them wholesale (see the module docstring).
    """

    def __init__(self, directory: "str | Path"):
        self.directory = Path(directory)
        self.path = self.directory / INDEX_NAME
        self._conn: "sqlite3.Connection | None" = None
        self._lock = threading.Lock()

    def exists(self) -> bool:
        return self.path.is_file()

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def _connection(self) -> sqlite3.Connection:
        # Guarded by self._lock at every call site; one shared read-only
        # connection is plenty (lookups are sub-millisecond point reads).
        # mode=ro is load-bearing: a plain connect() to a just-deleted
        # path would *create* an empty database, permanently poisoning
        # the namespace for every future exists() check.
        if self._conn is None:
            uri = self.path.resolve().as_uri()  # as_uri needs an absolute path
            self._conn = sqlite3.connect(
                f"{uri}?mode=ro", uri=True, check_same_thread=False
            )
        return self._conn

    def covered_segments(self) -> "dict[str, int]":
        """Segment name → byte size at index-build time ({} on error)."""
        with self._lock:
            try:
                rows = self._connection().execute("SELECT name, size FROM segments")
                return {name: int(size) for name, size in rows}
            except sqlite3.Error:
                return {}

    def __len__(self) -> int:
        with self._lock:
            try:
                row = (
                    self._connection()
                    .execute("SELECT COUNT(*) FROM entries")
                    .fetchone()
                )
                return int(row[0])
            except sqlite3.Error:
                return 0

    def addresses(self) -> "set[str]":
        with self._lock:
            try:
                rows = self._connection().execute("SELECT address FROM entries")
                return {address for (address,) in rows}
            except sqlite3.Error:
                return set()

    def lookup(self, address: str) -> "dict | None":
        """The raw store entry for ``address``, or None if unindexed."""
        with self._lock:
            try:
                row = (
                    self._connection()
                    .execute(
                        "SELECT segment, offset, length FROM entries WHERE address = ?",
                        (address,),
                    )
                    .fetchone()
                )
            except sqlite3.Error:
                row = None
        if row is None:
            return None
        segment, offset, length = row
        try:
            with (self.directory / segment).open("rb") as handle:
                handle.seek(int(offset))
                blob = handle.read(int(length))
            return json.loads(blob.decode("utf8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # The indexed segment vanished or was rewritten under us (a
            # concurrent compaction, which the store documents as
            # unsafe); fail soft — the caller falls back to recompute.
            return None

    @classmethod
    def build(
        cls,
        directory: "str | Path",
        rows: "list[tuple[str, str, int, int]]",
        segments: "list[tuple[str, int]]",
    ) -> "SqliteSegmentIndex":
        """Write the index atomically (temp file + rename).

        ``rows`` are ``(address, segment, offset, length)`` tuples;
        ``segments`` are ``(name, size)`` for every covered segment.
        """
        directory = Path(directory)
        tmp = directory / f"{INDEX_NAME}.tmp-{os.getpid()}-{os.urandom(4).hex()}"
        conn = sqlite3.connect(tmp)
        try:
            conn.executescript(
                """
                CREATE TABLE entries (
                    address TEXT PRIMARY KEY,
                    segment TEXT NOT NULL,
                    offset INTEGER NOT NULL,
                    length INTEGER NOT NULL
                );
                CREATE TABLE segments (
                    name TEXT PRIMARY KEY,
                    size INTEGER NOT NULL
                );
                """
            )
            conn.executemany("INSERT OR REPLACE INTO entries VALUES (?, ?, ?, ?)", rows)
            conn.executemany("INSERT OR REPLACE INTO segments VALUES (?, ?)", segments)
            conn.commit()
        finally:
            conn.close()
        tmp.replace(directory / INDEX_NAME)
        return cls(directory)


# -- the persistent cache -----------------------------------------------------


class PersistentGenerationCache(GenerationCache):
    """A :class:`GenerationCache` backed by an on-disk segment store.

    Lookups fall through memory → disk → compute; computed values are
    spilled to this instance's own segment so other processes (and
    future runs) can reuse them. Stats distinguish ``hits`` (memory),
    ``disk_hits`` (loaded from the store) and ``misses`` (new LLM
    generations) — a warm sweep re-run must report zero misses.
    """

    def __init__(
        self,
        cache_dir: "str | Path",
        namespace: str = "default",
        use_index: bool = True,
    ):
        super().__init__()
        self.cache_dir = Path(cache_dir)
        self.namespace = str(namespace)
        self.use_index = bool(use_index)
        self._disk_hits = 0
        self._io_lock = threading.Lock()
        self._disk_index: dict[str, dict] = {}  # address -> raw value record
        self._offsets: dict[str, int] = {}  # segment name -> bytes consumed
        self._segment_path: "Path | None" = None
        self._lock_path: "Path | None" = None  # this writer's .lock sidecar
        self._handle = None
        self._index: "SqliteSegmentIndex | None" = None
        # No eager store scan: every read path (probe_disk, _from_disk,
        # disk_entries) refreshes on demand, so construction is O(1) —
        # maintenance flows like `repro-cache compact` never pay for an
        # in-memory index they won't use.

    @property
    def directory(self) -> Path:
        """This namespace's segment directory."""
        return self.cache_dir / self.namespace

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self._hits, misses=self._misses, disk_hits=self._disk_hits)

    def address(self, key) -> str:
        """The content address of one cache key within this namespace."""
        digest = hashlib.blake2b(digest_size=16)
        parts = key if isinstance(key, tuple) else (key,)
        for part in (self.namespace, *parts):
            digest.update(repr(part).encode("utf8"))
            digest.update(b"\x1f")
        return digest.hexdigest()

    def get_or_compute(self, key, compute):
        with self._lock:
            if key in self._data:
                self._hits += 1
                return self._data[key]
        address = self.address(key)
        value = self._from_disk(address)
        if value is not _MISS:
            with self._lock:
                self._disk_hits += 1
                self._data[key] = value
            return value
        with self._lock:
            self._misses += 1
        value = compute()  # computed outside the locks: misses run in parallel
        with self._lock:
            self._data[key] = value
        self._spill(address, key, value)
        return value

    def clear(self) -> None:
        """Reset in-memory state and every counter (including disk hits).

        The on-disk store is deliberately untouched: entries are
        immutable, so eviction means deleting the namespace directory
        (see the module docstring). This instance's own segment is
        retired (future spills open a new one) so its entries become
        readable again; subsequent lookups reload from disk and count
        as fresh ``disk_hits``.
        """
        with self._io_lock:
            self._release_segment_locked()
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0
            self._disk_hits = 0

    def admit(self, key, value, *, miss: bool = False, disk_hit: bool = False) -> None:
        """Store a service-resolved value; backend misses spill to disk."""
        super().admit(key, value, miss=miss, disk_hit=disk_hit)
        if miss:
            self._spill(self.address(key), key, value)

    def _disk_hit_count(self) -> None:  # called under self._lock
        self._disk_hits += 1

    def disk_entries(self) -> int:
        """Distinct addresses visible in the store right now."""
        with self._io_lock:
            self._refresh_locked()
            addresses = set(self._disk_index)
            index = self._index_locked()
            if index is not None:
                addresses |= index.addresses()
            return len(addresses)

    def close(self) -> None:
        """Close this writer's segment handle (entries stay on disk)."""
        with self._io_lock:
            self._release_segment_locked()
            if self._index is not None:
                self._index.close()
                self._index = None

    def _release_segment_locked(self) -> None:
        """Retire the open segment and its writer lock (io_lock held)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._segment_path = None
        if self._lock_path is not None:
            self._lock_path.unlink(missing_ok=True)
            self._lock_path = None

    def writer_locks(self) -> "list[dict]":
        """Live writer locks held by *other* writers in this namespace."""
        return active_writer_locks(self.directory, exclude=self._lock_path)

    def compact(self, index: "bool | None" = None, force: bool = False) -> int:
        """Merge every segment into one, dropping duplicate addresses.

        Only safe while no other writer is active — concurrent writers
        keep appending to unlinked segments and those entries are lost —
        so live writer locks (see :meth:`writer_locks`) make this fail
        fast with :class:`WriterActiveError` unless ``force=True``.
        By default (``index=None`` → this cache's ``use_index``) a
        :class:`SqliteSegmentIndex` is rebuilt over the compacted
        segment so cold lookups become O(1) point reads instead of full
        segment scans. Returns the number of distinct entries kept.
        """
        build_index = self.use_index if index is None else bool(index)
        with self._io_lock:
            self._release_segment_locked()
            active = self.writer_locks()
            if active and not force:
                holders = ", ".join(
                    f"{Path(lock['path']).name} (pid {lock['pid']}, host "
                    f"{lock['host']})"
                    for lock in active
                )
                raise WriterActiveError(
                    f"namespace {self.namespace!r} has {len(active)} active "
                    f"writer(s): {holders}; compacting now would drop their "
                    "in-flight entries — retry once they close, or force"
                )
            if self._index is not None:
                self._index.close()
                self._index = None
            directory = self.directory
            if not directory.is_dir():
                return 0
            # Full independent rescan — including this instance's own
            # segment and any segments an index let refreshes skip.
            entries: dict[str, dict] = {}
            stale = sorted(directory.glob("*.jsonl"))
            for path in stale:
                for _size, line, entry in _scan_segment(path, 0):
                    entries[entry["k"]] = entry
            target = directory / f"c-{os.getpid()}-{os.urandom(4).hex()}.jsonl"
            rows: list[tuple[str, str, int, int]] = []
            offset = 0
            with target.open("wb") as handle:
                for address in sorted(entries):
                    line = (json.dumps(entries[address], sort_keys=True) + "\n").encode(
                        "utf8"
                    )
                    handle.write(line)
                    rows.append((address, target.name, offset, len(line)))
                    offset += len(line)
            for path in stale:
                if path != target:
                    path.unlink(missing_ok=True)
            if build_index:
                self._index = SqliteSegmentIndex.build(
                    directory, rows, [(target.name, offset)]
                )
                # Indexed entries are served by point lookup, never scan.
                self._disk_index = {}
            else:
                (directory / INDEX_NAME).unlink(missing_ok=True)
                self._disk_index = {entry["k"]: entry["v"] for entry in entries.values()}
            self._offsets = {target.name: offset}
            return len(entries)

    # -- disk plumbing -------------------------------------------------------

    def _index_locked(self) -> "SqliteSegmentIndex | None":
        """The SQLite index handle, if attached or discoverable (io_lock held).

        An index this instance explicitly built (``compact(index=True)``)
        is always honored; ``use_index=False`` only stops the cache from
        going looking for index files left on disk by others.
        """
        if self._index is not None:
            return self._index
        if not self.use_index:
            return None
        candidate = SqliteSegmentIndex(self.directory)
        if not candidate.exists():
            return None
        self._index = candidate
        return self._index

    def probe_disk(self, address: str) -> "tuple[dict | None, str | None]":
        """Raw record for ``address`` plus the tier that served it.

        Returns ``(record, "segments")`` when a segment scan (or an
        earlier scan's in-memory index) has the entry and ``(record,
        "sqlite")`` when only the compacted SQLite index does. On a
        miss, the tier reports how deep the probe went: ``(None,
        "sqlite")`` if an index was actually consulted, ``(None,
        None)`` if the namespace has no index. Counts nothing — stats
        attribution is the caller's job (the service's per-tier stats,
        or :meth:`get_or_compute`'s aggregate ``disk_hits``).
        """
        with self._io_lock:
            record = self._disk_index.get(address)
            if record is None:
                self._refresh_locked()
                record = self._disk_index.get(address)
            if record is not None:
                return record, "segments"
            index = self._index_locked()
            if index is not None:
                record = index.lookup(address)
                if record is not None:
                    return record["v"], "sqlite"
                return None, "sqlite"
        return None, None

    def _from_disk(self, address: str):
        record, _tier = self.probe_disk(address)
        if record is None:
            return _MISS
        return trace_from_record(record)

    def _refresh_locked(self) -> None:
        """Pick up entries appended by other writers since the last scan.

        Segments covered by a compacted SQLite index are skipped — their
        entries resolve through O(1) index lookups instead of scans.
        """
        directory = self.directory
        if not directory.is_dir():
            return
        index = self._index_locked()
        if index is not None:
            for name, size in index.covered_segments().items():
                if self._offsets.get(name, 0) < size:
                    self._offsets[name] = size
        for path in sorted(directory.glob("*.jsonl")):
            if path == self._segment_path:
                continue  # own writes are already in memory
            consumed = self._offsets.get(path.name, 0)
            for consumed, _line, entry in _scan_segment(path, consumed):
                self._disk_index[entry["k"]] = entry["v"]
            self._offsets[path.name] = consumed

    def _spill(self, address: str, key, value: GenerationTrace) -> None:
        kind = key[0] if isinstance(key, tuple) and key else str(key)
        entry = {"k": address, "kind": kind, "v": trace_to_record(value)}
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._io_lock:
            if self._handle is None:
                self.directory.mkdir(parents=True, exist_ok=True)
                name = f"w-{os.getpid()}-{os.urandom(4).hex()}.jsonl"
                self._segment_path = self.directory / name
                # The writer lock: a sidecar marking this segment as
                # actively appended, so compact() fails fast instead of
                # silently dropping our in-flight entries. Removed when
                # the segment is retired (close/clear/compact); a crash
                # leaves it behind and the dead pid marks it stale.
                self._lock_path = self.directory / f"{name}{LOCK_SUFFIX}"
                self._lock_path.write_text(
                    json.dumps(
                        {
                            "pid": os.getpid(),
                            "host": socket.gethostname(),
                            "segment": name,
                        },
                        sort_keys=True,
                    )
                )
                self._handle = self._segment_path.open("a", encoding="utf8", newline="\n")
            self._handle.write(line)
            self._handle.flush()

    # A cache shipped to a worker process reopens the same store fresh:
    # its writes land in a new segment the parent picks up on refresh.
    def __getstate__(self) -> dict:
        return {
            "cache_dir": str(self.cache_dir),
            "namespace": self.namespace,
            "use_index": self.use_index,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["cache_dir"],
            namespace=state["namespace"],
            use_index=state.get("use_index", True),
        )


# -- store inspection (the repro-cache CLI) -----------------------------------


def _scan_segment(path: Path, consumed: int):
    """Yield ``(consumed_after, raw_line, entry)`` per complete entry.

    Starts at byte offset ``consumed`` and stops at a truncated or torn
    tail — the same tolerance as a reader refresh scan.
    """
    try:
        size = path.stat().st_size
    except OSError:  # pragma: no cover - racing deletion
        return
    if size <= consumed:
        return
    try:
        with path.open("rb") as handle:
            handle.seek(consumed)
            for line in handle:
                if not line.endswith(b"\n"):
                    return  # in-flight append
                stripped = line.strip()
                consumed += len(line)
                if not stripped:
                    continue
                try:
                    entry = json.loads(stripped.decode("utf8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    return  # torn write
                yield consumed, line, entry
    except OSError:  # pragma: no cover - racing deletion
        return


def store_stats(
    cache_dir: "str | Path", namespaces: "list[str] | None" = None
) -> dict:
    """Per-namespace shape of a persistent store, for ``repro-cache stats``.

    Scans segments at rest (no cache instance, no writers needed):
    distinct addresses, raw record counts (duplicates included — the
    compaction headroom), per-kind tallies, byte footprint, and whether
    a compacted SQLite index covers the namespace. ``namespaces``
    restricts the (potentially expensive) scan to the named ones.
    """
    cache_dir = Path(cache_dir)
    wanted = set(namespaces) if namespaces is not None else None
    namespaces: dict[str, dict] = {}
    if cache_dir.is_dir():
        for ns_dir in sorted(p for p in cache_dir.iterdir() if p.is_dir()):
            if wanted is not None and ns_dir.name not in wanted:
                continue
            segments = sorted(ns_dir.glob("*.jsonl"))
            addresses: set[str] = set()
            kinds: dict[str, int] = {}
            records = 0
            total_bytes = 0
            for segment in segments:
                total_bytes += segment.stat().st_size
                for _consumed, _line, entry in _scan_segment(segment, 0):
                    records += 1
                    addresses.add(entry["k"])
                    kind = str(entry.get("kind", "unknown"))
                    kinds[kind] = kinds.get(kind, 0) + 1
            index = SqliteSegmentIndex(ns_dir)
            indexed = index.exists()
            index_entries = 0
            if indexed:
                index_entries = len(index)
                addresses |= index.addresses()
                total_bytes += index.path.stat().st_size
                index.close()
            namespaces[ns_dir.name] = {
                "segments": len(segments),
                "records": records,
                "entries": len(addresses),
                "bytes": total_bytes,
                "kinds": dict(sorted(kinds.items())),
                "indexed": indexed,
                "index_entries": index_entries,
                "active_writers": len(active_writer_locks(ns_dir)),
            }
    return {"cache_dir": str(cache_dir), "namespaces": namespaces}
