"""Cross-process persistent generation cache.

The in-memory :class:`~repro.runtime.cache.GenerationCache` dies with
its process, so every sweep shard and every re-run pays the full
generation cost again. This module spills cache entries to a
content-addressed on-disk store that any number of concurrent readers
and writers — threads, worker processes, separate shard invocations,
even separate machines over a shared filesystem — can share safely.

Store layout
------------
``cache_dir/`` holds one subdirectory per *namespace* (a digest of the
simulated LLM's configuration and seed — generations from differently
seeded models must never alias), each containing append-only JSONL
*manifest* segments paired with raw binary *sidecars*::

    cache_dir/
      <namespace>/
        format.json              # store format version marker
        w-<pid>-<nonce>.jsonl    # one manifest segment per writer instance
        w-<pid>-<nonce>.bin      # its tensor sidecar (binary codec)
        c-<pid>-<nonce>.jsonl    # a compacted segment (see compact())
        c-<pid>-<nonce>.bin

Each manifest line is one entry ``{"k": <address>, "kind": ..., "v":
<trace record>}``. The address is a 128-bit blake2b digest over
(namespace, cache key) — the full identity of one generation input,
including the candidate universe via
:func:`~repro.runtime.cache.instance_key` — so an entry is immutable by
construction: the same address always maps to the same value, and
duplicate writes are harmless.

Tensor payloads (the dominant bytes) live in the ``.bin`` sidecar as
raw little-endian contiguous blocks; the manifest line carries only the
step metadata plus a ``{"bin", "offset", "length", "dtype", "shape"}``
descriptor. Readers memory-map the sidecar once and rehydrate
``hidden_stack`` as a zero-copy ``np.frombuffer`` view over the map —
a warm store hit costs a point lookup plus a view, not a
decode-and-copy. Legacy stores that inline tensors as base64 blocks
(format v1, written by ``codec="base64"``) stay fully readable, and
:meth:`PersistentGenerationCache.compact` transcodes them to binary.

Concurrency
-----------
Writers never touch each other's files: every cache instance lazily
creates its own uniquely named segment (manifest + sidecar) and appends
complete records under an in-process lock, flushing per entry. The
sidecar bytes are written and flushed *before* the manifest line, so a
manifest entry implies its tensor block is present. Readers scan every
manifest in the namespace, remember per-file byte offsets so refreshes
only read appended tails, and tolerate both a truncated final line and
a manifest entry whose sidecar bytes have not landed yet (a writer
killed mid-append) by leaving the tail for the next refresh. No file
locks are needed because segments are single-writer and entries are
immutable.

Values round-trip *exactly*: a trace's hidden states are stored
columnar — the whole ``(n_steps, n_layers, dim)`` tensor as one
contiguous little-endian block with dtype and shape (one write, one
mmap view per trace, matching the simulator's columnar
``GenerationTrace``) — so a trace rehydrated from disk is bit-identical
to the one computed, which is what makes sharded sweeps byte-identical
to unsharded ones even when probes are trained from cached traces.
Legacy base64 blocks and per-step-blob records (pre-``hidden-v2``
stores) are still readable.

The SQLite index tier
---------------------
Cold lookups normally scan whole segments into memory — O(store size)
on first touch, which is the right trade for small stores but not for
millions of entries. :meth:`PersistentGenerationCache.compact` therefore
also writes ``index.sqlite`` next to the compacted segment: an
``address → (segment, offset, length)`` map (plus the byte size of the
segment it covers). Readers skip scanning indexed segments entirely and
serve their entries by O(1) point lookup + seek — only segments written
*after* the compaction are ever scanned. The index is rebuilt on every
compaction (written to a temp file and atomically renamed), so a stale
index can never shadow newer entries: anything not in the index is
found by the ordinary tail scan.

Writer locks and compaction safety
----------------------------------
Compacting while another writer appends would silently drop (or
duplicate) that writer's entries, so the rule "compact only while no
writer is active" is *enforced*: every writer marks its segment with a
``<segment>.lock`` sidecar (pid + host, removed on close) and
:meth:`PersistentGenerationCache.compact` fails fast with
:class:`WriterActiveError` while any *other* live lock exists.
Same-host locks whose pid is gone are stale — a crashed writer — and
are swept up; locks from other hosts cannot be probed and count as
active. ``force=True`` (the CLI's ``--force``) overrides the guard for
operators who know the writers are actually gone.

Format versioning
-----------------
Every writer stamps the namespace with a ``format.json`` marker
(currently ``STORE_FORMAT_VERSION == 2``). Older stores (no marker,
or a lower version) are read-compatible and upgraded in place the
first time a new writer appends; a marker from a *future* version
makes writers refuse with :class:`RuntimeError` so two formats are
never mix-written into one namespace. ``compact()`` rewrites every
record into the current binary format, which is how legacy base64
stores migrate (``repro-cache migrate``).

Eviction
--------
None, by design: entries are content-addressed and immutable, so the
store only grows and never goes stale. Delete the namespace directory
(or the whole ``cache_dir``) to evict everything, or call
:meth:`PersistentGenerationCache.compact` — guarded as above — to
rewrite all segments into one with duplicates dropped.
"""

from __future__ import annotations

import base64
import hashlib
import json
import mmap
import os
import socket
import sqlite3
import threading
from pathlib import Path

import numpy as np

from repro.llm.model import GenerationStep, GenerationTrace
from repro.runtime.cache import _MISS, CacheStats, GenerationCache

__all__ = [
    "BASE64_CODEC",
    "BINARY_CODEC",
    "CODEC_ENV",
    "FORMAT_MARKER",
    "INDEX_NAME",
    "LOCK_SUFFIX",
    "STORE_FORMAT_VERSION",
    "PersistentGenerationCache",
    "SqliteSegmentIndex",
    "WriterActiveError",
    "active_writer_locks",
    "generation_namespace",
    "store_stats",
    "trace_to_record",
    "trace_from_record",
]

INDEX_NAME = "index.sqlite"
LOCK_SUFFIX = ".lock"
BIN_SUFFIX = ".bin"
FORMAT_MARKER = "format.json"
#: v1 = inline base64 tensors; v2 = binary ``.bin`` sidecars + manifest.
STORE_FORMAT_VERSION = 2
BASE64_CODEC = "base64"
BINARY_CODEC = "binary"
#: Env override for the default write codec (smokes exercise legacy writes).
CODEC_ENV = "REPRO_STORE_CODEC"


class WriterActiveError(RuntimeError):
    """``compact()`` refused: another writer holds a live segment lock."""


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # exists, just not ours to signal
        return True
    return True


def active_writer_locks(
    directory: "str | Path", exclude: "Path | None" = None
) -> "list[dict]":
    """Live writer locks in one namespace directory.

    Parses every ``*.lock`` sidecar: same-host locks whose pid is dead
    are deleted in passing (crashed writers must not wedge compaction
    forever) and not reported; unreadable locks are conservatively
    reported as active with ``"pid": None``; other-host locks cannot be
    probed and always count as active. ``exclude`` skips the caller's
    own lock.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    locks: list[dict] = []
    for path in sorted(directory.glob(f"*{LOCK_SUFFIX}")):
        if exclude is not None and path == exclude:
            continue
        try:
            info = json.loads(path.read_text())
            pid = int(info["pid"])
            host = str(info.get("host", ""))
        except FileNotFoundError:
            continue  # unlinked between glob and read: the writer just closed
        except (OSError, ValueError, KeyError):
            locks.append({"path": str(path), "pid": None, "host": None})
            continue
        if host == socket.gethostname() and not _pid_alive(pid):
            path.unlink(missing_ok=True)  # stale: the writer crashed
            continue
        locks.append({"path": str(path), "pid": pid, "host": host})
    return locks


def generation_namespace(*identity) -> str:
    """The store namespace for one simulated LLM identity.

    A generation is a pure function of the backend ``identity()`` —
    (simulator version, LLM config, LLM seed) — and the instance; the
    instance is captured by the cache key, the rest lives here. The
    simulator version participates so a bit-level change to trace
    synthesis (e.g. the ``hidden-v2`` two-phase scheme) lands in a fresh
    namespace and never aliases traces written by an older scheme.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in identity:
        digest.update(repr(part).encode("utf8"))
        digest.update(b"\x1f")
    return f"llm-{digest.hexdigest()}"


def _check_store_format(directory: Path, stamp: bool) -> None:
    """Refuse to write into a future-format namespace; stamp ours if asked.

    Binary writers (and ``compact()``) stamp the namespace with the
    current :data:`STORE_FORMAT_VERSION`; legacy ``codec="base64"``
    writers only enforce the ceiling — older layouts are readable by
    newer code, so they never need to claim the version.
    """
    marker = directory / FORMAT_MARKER
    try:
        version = int(json.loads(marker.read_text()).get("version", 1))
    except FileNotFoundError:
        version = None
    except (OSError, ValueError, TypeError):
        version = None  # unreadable marker: treat as unstamped, restamp
    if version is not None and version > STORE_FORMAT_VERSION:
        raise RuntimeError(
            f"store namespace {directory.name!r} is format v{version}, newer "
            f"than this code's v{STORE_FORMAT_VERSION}; refusing to write a "
            "mixed store"
        )
    if stamp and version != STORE_FORMAT_VERSION:
        marker.write_text(
            json.dumps({"version": STORE_FORMAT_VERSION}, sort_keys=True) + "\n"
        )


# -- exact trace (de)serialization --------------------------------------------


def _encode_array(arr: np.ndarray) -> dict:
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "b64": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _decode_array(record: dict, writable: bool = False) -> np.ndarray:
    raw = base64.b64decode(record["b64"].encode("ascii"))
    arr = np.frombuffer(raw, dtype=np.dtype(record["dtype"]))
    # frombuffer yields a read-only view over the bytes object — exactly
    # right for rehydrated traces, which are immutable by contract, so
    # the copy is opt-in for the rare caller that needs to mutate.
    arr = arr.reshape(record["shape"])
    return arr.copy() if writable else arr


def _little_endian(arr: np.ndarray) -> np.ndarray:
    """A C-contiguous little-endian view/copy of ``arr`` (.bin layout)."""
    dtype = arr.dtype
    if dtype.byteorder == ">":
        arr = arr.astype(dtype.newbyteorder("<"))
    return np.ascontiguousarray(arr)


def _b64_nbytes(b64: str) -> int:
    """Decoded byte length of one base64 block without decoding it."""
    padding = 2 if b64.endswith("==") else 1 if b64.endswith("=") else 0
    return len(b64) * 3 // 4 - padding


def _bin_reference(value: dict) -> "dict | None":
    """The binary-block descriptor of a value record, if it has one."""
    hidden = value.get("hidden") if isinstance(value, dict) else None
    if isinstance(hidden, dict) and "bin" in hidden:
        return hidden
    return None


class _BinReader:
    """Zero-copy reads over a namespace's ``.bin`` tensor sidecars.

    Keeps one read-only :mod:`mmap` per sidecar, remapping when the file
    has grown past the mapped size (another writer appended). Views are
    ``np.frombuffer`` slices of the map: read-only, no copy, and they
    keep the map alive through the buffer protocol even after
    :meth:`close` — which is why close tolerates :class:`BufferError`.
    """

    def __init__(self, directory: "str | Path"):
        self.directory = Path(directory)
        self._lock = threading.Lock()
        self._maps: "dict[str, tuple[mmap.mmap, int]]" = {}  # guarded-by: self._lock

    def view(self, record: dict) -> np.ndarray:
        """The tensor block ``record`` describes, as a read-only view."""
        name = str(record["bin"])
        offset = int(record["offset"])
        length = int(record["length"])
        dtype = np.dtype(record["dtype"])
        shape = tuple(int(n) for n in record["shape"])
        end = offset + length
        with self._lock:
            handle, size = self._maps.get(name, (None, 0))
            if handle is None or size < end:
                path = self.directory / name
                with path.open("rb") as raw:
                    remapped = mmap.mmap(raw.fileno(), 0, access=mmap.ACCESS_READ)
                if handle is not None:
                    _close_mmap(handle)
                handle, size = remapped, remapped.size()
                self._maps[name] = (handle, size)
            if end > size:
                raise ValueError(
                    f"binary block {name}@{offset}+{length} reaches past the "
                    f"{size}-byte sidecar (torn write)"
                )
            count = length // dtype.itemsize if dtype.itemsize else 0
            arr = np.frombuffer(handle, dtype=dtype, count=count, offset=offset)
            return arr.reshape(shape)

    def close(self) -> None:
        with self._lock:
            for handle, _size in self._maps.values():
                _close_mmap(handle)
            self._maps.clear()


def _close_mmap(handle: mmap.mmap) -> None:
    try:
        handle.close()
    except (BufferError, OSError):
        # Live numpy views still export the buffer; the map is released
        # when the last view dies.
        pass


def _steps_to_records(trace: GenerationTrace) -> "list[dict]":
    return [
        {
            "position": int(step.position),
            "proposed": step.proposed,
            "max_prob": float(step.max_prob),
            "item_index": int(step.item_index),
            "within_index": int(step.within_index),
            "is_branching": bool(step.is_branching),
            "committed": step.committed,
            "forced": bool(step.forced),
            "decision_point": bool(step.decision_point),
        }
        for step in trace.steps
    ]


def trace_to_record(trace: GenerationTrace) -> dict:
    """A JSON-able, bit-exact, *self-contained* record of one trace.

    Hidden states are serialized columnar: the whole ``(n, layers,
    dim)`` tensor as one base64 block (one encode, one decode per
    trace) rather than one blob per step. This is the v1 inline layout
    — still what standalone round-trips (artifacts, tests) use; the
    store's binary writer emits the sidecar-descriptor layout instead
    (see :class:`PersistentGenerationCache`).
    """
    return {
        "instance_id": trace.instance_id,
        "aborted": bool(trace.aborted),
        "hidden": _encode_array(trace.hidden_matrix()),
        "steps": _steps_to_records(trace),
    }


def _step_from_record(step: dict, hidden) -> GenerationStep:
    return GenerationStep(
        position=step["position"],
        proposed=step["proposed"],
        hidden=hidden,
        max_prob=step["max_prob"],
        item_index=step["item_index"],
        within_index=step["within_index"],
        is_branching=step["is_branching"],
        committed=step["committed"],
        forced=step["forced"],
        decision_point=step.get("decision_point", True),
    )


def trace_from_record(
    record: dict,
    directory: "str | Path | None" = None,
    reader: "_BinReader | None" = None,
) -> GenerationTrace:
    """Rehydrate a trace; inverse of :func:`trace_to_record`.

    Reads all three layouts: the binary sidecar-descriptor format (the
    ``hidden`` dict names a ``.bin`` block — needs ``directory`` or a
    ``reader`` to resolve it, served as a zero-copy mmap view), the
    inline base64 columnar format, and the legacy per-step-blob format
    still found in pre-``hidden-v2`` stores.
    """
    if "hidden" in record:
        hidden = record["hidden"]
        if "bin" in hidden:
            if reader is None:
                if directory is None:
                    raise ValueError(
                        "binary trace record references a .bin sidecar; pass "
                        "the segment directory (or a reader) to resolve it"
                    )
                reader = _BinReader(directory)
            stack = reader.view(hidden)
        else:
            stack = _decode_array(hidden)
        steps = [_step_from_record(step, stack[i]) for i, step in enumerate(record["steps"])]
        return GenerationTrace(
            instance_id=record["instance_id"],
            steps=steps,
            aborted=record["aborted"],
            hidden_stack=stack,
        )
    return GenerationTrace(
        instance_id=record["instance_id"],
        steps=[_step_from_record(step, _decode_array(step["hidden"])) for step in record["steps"]],
        aborted=record["aborted"],
    )


def _rebinarize_value(
    value, bin_name: str, bin_offset: int, read_block
) -> "tuple[dict, bytes | None, bool]":
    """One compaction step: ``value`` rewritten against the new sidecar.

    Returns ``(new_value, block_bytes, was_legacy)``. Already-binary
    records are relocated by raw byte copy (no decode); inline-base64
    and legacy per-step-blob records are transcoded to one little-endian
    columnar block. Values with no tensor payload (or unrecognized
    shapes) pass through with ``block_bytes=None``.
    """
    if not isinstance(value, dict):
        return value, None, False
    ref = _bin_reference(value)
    if ref is not None:
        block = read_block(str(ref["bin"]), int(ref["offset"]), int(ref["length"]))
        hidden = dict(ref)
        hidden.update(bin=bin_name, offset=int(bin_offset))
        return {**value, "hidden": hidden}, block, False
    hidden = value.get("hidden")
    if isinstance(hidden, dict) and "b64" in hidden:
        stack = _little_endian(_decode_array(hidden))
    elif "hidden" not in value and value.get("steps"):
        # Legacy per-step blobs: stack them columnar, strip the blobs.
        steps = value["steps"]
        if not all(isinstance(step.get("hidden"), dict) for step in steps):
            return value, None, False
        stack = _little_endian(np.stack([_decode_array(s["hidden"]) for s in steps]))
        value = {
            **value,
            "steps": [{k: v for k, v in s.items() if k != "hidden"} for s in steps],
        }
    elif "hidden" not in value and not value.get("steps"):
        stack = _little_endian(np.zeros((0, 0, 0)))
    else:
        return value, None, False
    descriptor = {
        "dtype": stack.dtype.str,
        "shape": [int(n) for n in stack.shape],
        "bin": bin_name,
        "offset": int(bin_offset),
        "length": int(stack.nbytes),
    }
    return {**value, "hidden": descriptor}, stack.tobytes(), True


# -- the compacted SQLite index tier ------------------------------------------


class SqliteSegmentIndex:
    """O(1) ``address → (segment, offset, length)`` lookups over a store.

    Built by :meth:`PersistentGenerationCache.compact` over the freshly
    compacted segment; readers resolve an address to an exact byte range
    and seek-read just that line instead of scanning the segment. The
    index also records the byte size of every segment it covers so scans
    can skip them wholesale (see the module docstring).
    """

    def __init__(self, directory: "str | Path"):
        self.directory = Path(directory)
        self.path = self.directory / INDEX_NAME
        self._conn: "sqlite3.Connection | None" = None  # guarded-by: self._lock
        self._lock = threading.Lock()

    def exists(self) -> bool:
        return self.path.is_file()

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def _connection(self) -> sqlite3.Connection:  # caller holds self._lock
        # One shared read-only
        # connection is plenty (lookups are sub-millisecond point reads).
        # mode=ro is load-bearing: a plain connect() to a just-deleted
        # path would *create* an empty database, permanently poisoning
        # the namespace for every future exists() check.
        if self._conn is None:
            uri = self.path.resolve().as_uri()  # as_uri needs an absolute path
            self._conn = sqlite3.connect(
                f"{uri}?mode=ro", uri=True, check_same_thread=False
            )
        return self._conn

    def covered_segments(self) -> "dict[str, int]":
        """Segment name → byte size at index-build time ({} on error)."""
        with self._lock:
            try:
                rows = self._connection().execute("SELECT name, size FROM segments")
                return {name: int(size) for name, size in rows}
            except sqlite3.Error:
                return {}

    def __len__(self) -> int:
        with self._lock:
            try:
                row = (
                    self._connection()
                    .execute("SELECT COUNT(*) FROM entries")
                    .fetchone()
                )
                return int(row[0])
            except sqlite3.Error:
                return 0

    def addresses(self) -> "set[str]":
        with self._lock:
            try:
                rows = self._connection().execute("SELECT address FROM entries")
                return {address for (address,) in rows}
            except sqlite3.Error:
                return set()

    def lookup(self, address: str) -> "dict | None":
        """The raw store entry for ``address``, or None if unindexed."""
        with self._lock:
            try:
                row = (
                    self._connection()
                    .execute(
                        "SELECT segment, offset, length FROM entries WHERE address = ?",
                        (address,),
                    )
                    .fetchone()
                )
            except sqlite3.Error:
                row = None
        if row is None:
            return None
        segment, offset, length = row
        try:
            with (self.directory / segment).open("rb") as handle:
                handle.seek(int(offset))
                blob = handle.read(int(length))
            return json.loads(blob.decode("utf8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # The indexed segment vanished or was rewritten under us (a
            # concurrent compaction, which the store documents as
            # unsafe); fail soft — the caller falls back to recompute.
            return None

    @classmethod
    def build(
        cls,
        directory: "str | Path",
        rows: "list[tuple[str, str, int, int]]",
        segments: "list[tuple[str, int]]",
    ) -> "SqliteSegmentIndex":
        """Write the index atomically (temp file + rename).

        ``rows`` are ``(address, segment, offset, length)`` tuples;
        ``segments`` are ``(name, size)`` for every covered segment.
        """
        directory = Path(directory)
        # repro-lint: ignore[determinism] uniqueness token for a writer-private temp file; never reaches record bytes
        tmp = directory / f"{INDEX_NAME}.tmp-{os.getpid()}-{os.urandom(4).hex()}"
        conn = sqlite3.connect(tmp)
        try:
            conn.executescript(
                """
                CREATE TABLE entries (
                    address TEXT PRIMARY KEY,
                    segment TEXT NOT NULL,
                    offset INTEGER NOT NULL,
                    length INTEGER NOT NULL
                );
                CREATE TABLE segments (
                    name TEXT PRIMARY KEY,
                    size INTEGER NOT NULL
                );
                """
            )
            conn.executemany("INSERT OR REPLACE INTO entries VALUES (?, ?, ?, ?)", rows)
            conn.executemany("INSERT OR REPLACE INTO segments VALUES (?, ?)", segments)
            conn.commit()
        finally:
            conn.close()
        tmp.replace(directory / INDEX_NAME)
        return cls(directory)


# -- the persistent cache -----------------------------------------------------


class PersistentGenerationCache(GenerationCache):
    """A :class:`GenerationCache` backed by an on-disk segment store.

    Lookups fall through memory → disk → compute; computed values are
    spilled to this instance's own segment so other processes (and
    future runs) can reuse them. Stats distinguish ``hits`` (memory),
    ``disk_hits`` (loaded from the store) and ``misses`` (new LLM
    generations) — a warm sweep re-run must report zero misses.
    """

    def __init__(
        self,
        cache_dir: "str | Path",
        namespace: str = "default",
        use_index: bool = True,
        codec: "str | None" = None,
    ):
        super().__init__()
        self.cache_dir = Path(cache_dir)
        self.namespace = str(namespace)
        self.use_index = bool(use_index)
        codec = codec or os.environ.get(CODEC_ENV) or BINARY_CODEC
        if codec not in (BASE64_CODEC, BINARY_CODEC):
            raise ValueError(f"unknown store codec {codec!r}")
        self.codec = codec
        #: Set by :meth:`compact`: ``{"entries": n, "transcoded": n}``.
        self.last_compaction: "dict | None" = None
        self._disk_hits = 0  # guarded-by: self._lock
        self._io_lock = threading.Lock()
        self._disk_index: dict[str, dict] = {}  # guarded-by: self._io_lock
        self._offsets: dict[str, int] = {}  # guarded-by: self._io_lock
        self._segment_path: "Path | None" = None  # guarded-by: self._io_lock
        self._lock_path: "Path | None" = None  # guarded-by: self._io_lock
        self._handle = None  # guarded-by: self._io_lock
        self._bin_handle = None  # guarded-by: self._io_lock
        self._bin_offset = 0  # guarded-by: self._io_lock
        self._reader: "_BinReader | None" = None  # guarded-by: self._io_lock
        self._index: "SqliteSegmentIndex | None" = None  # guarded-by: self._io_lock
        # No eager store scan: every read path (probe_disk, _from_disk,
        # disk_entries) refreshes on demand, so construction is O(1) —
        # maintenance flows like `repro-cache compact` never pay for an
        # in-memory index they won't use.

    @property
    def directory(self) -> Path:
        """This namespace's segment directory."""
        return self.cache_dir / self.namespace

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses, disk_hits=self._disk_hits)

    def address(self, key) -> str:
        """The content address of one cache key within this namespace."""
        digest = hashlib.blake2b(digest_size=16)
        parts = key if isinstance(key, tuple) else (key,)
        for part in (self.namespace, *parts):
            digest.update(repr(part).encode("utf8"))
            digest.update(b"\x1f")
        return digest.hexdigest()

    def get_or_compute(self, key, compute):
        with self._lock:
            if key in self._data:
                self._hits += 1
                return self._data[key]
        address = self.address(key)
        value = self._from_disk(address)
        if value is not _MISS:
            with self._lock:
                self._disk_hits += 1
                self._data[key] = value
            return value
        with self._lock:
            self._misses += 1
        value = compute()  # computed outside the locks: misses run in parallel
        with self._lock:
            self._data[key] = value
        self._spill(address, key, value)
        return value

    def clear(self) -> None:
        """Reset in-memory state and every counter (including disk hits).

        The on-disk store is deliberately untouched: entries are
        immutable, so eviction means deleting the namespace directory
        (see the module docstring). This instance's own segment is
        retired (future spills open a new one) so its entries become
        readable again; subsequent lookups reload from disk and count
        as fresh ``disk_hits``.
        """
        with self._io_lock:
            self._release_segment_locked()
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0
            self._disk_hits = 0

    def admit(self, key, value, *, miss: bool = False, disk_hit: bool = False) -> None:
        """Store a service-resolved value; backend misses spill to disk."""
        super().admit(key, value, miss=miss, disk_hit=disk_hit)
        if miss:
            self._spill(self.address(key), key, value)

    def _disk_hit_count(self) -> None:  # caller holds self._lock
        self._disk_hits += 1

    def disk_entries(self) -> int:
        """Distinct addresses visible in the store right now."""
        with self._io_lock:
            self._refresh_locked()
            addresses = set(self._disk_index)
            index = self._index_locked()
            if index is not None:
                addresses |= index.addresses()
            return len(addresses)

    def close(self) -> None:
        """Close this writer's segment handle (entries stay on disk)."""
        with self._io_lock:
            self._release_segment_locked()
            if self._reader is not None:
                self._reader.close()
                self._reader = None
            if self._index is not None:
                self._index.close()
                self._index = None

    def _release_segment_locked(self) -> None:  # caller holds self._io_lock
        """Retire the open segment and its writer lock."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._bin_handle is not None:
            self._bin_handle.close()
            self._bin_handle = None
        self._bin_offset = 0
        self._segment_path = None
        if self._lock_path is not None:
            self._lock_path.unlink(missing_ok=True)
            self._lock_path = None

    def writer_locks(self) -> "list[dict]":
        """Live writer locks held by *other* writers in this namespace."""
        with self._io_lock:
            return self._writer_locks_locked()

    def _writer_locks_locked(self) -> "list[dict]":  # caller holds self._io_lock
        return active_writer_locks(self.directory, exclude=self._lock_path)

    def compact(self, index: "bool | None" = None, force: bool = False) -> int:
        """Merge every segment into one, dropping duplicate addresses.

        Only safe while no other writer is active — concurrent writers
        keep appending to unlinked segments and those entries are lost —
        so live writer locks (see :meth:`writer_locks`) make this fail
        fast with :class:`WriterActiveError` unless ``force=True``.
        By default (``index=None`` → this cache's ``use_index``) a
        :class:`SqliteSegmentIndex` is rebuilt over the compacted
        segment so cold lookups become O(1) point reads instead of full
        segment scans.

        Compaction is also the store's format migrator: every record is
        rewritten in the binary sidecar layout — already-binary blocks
        are copied byte-for-byte without decoding, legacy inline-base64
        and per-step-blob records are transcoded. Returns the number of
        distinct entries kept; the breakdown (including the transcode
        count) lands in :attr:`last_compaction`.
        """
        build_index = self.use_index if index is None else bool(index)
        with self._io_lock:
            self._release_segment_locked()
            active = self._writer_locks_locked()
            if active and not force:
                holders = ", ".join(
                    f"{Path(lock['path']).name} (pid {lock['pid']}, host "
                    f"{lock['host']})"
                    for lock in active
                )
                raise WriterActiveError(
                    f"namespace {self.namespace!r} has {len(active)} active "
                    f"writer(s): {holders}; compacting now would drop their "
                    "in-flight entries — retry once they close, or force"
                )
            if self._index is not None:
                self._index.close()
                self._index = None
            directory = self.directory
            if not directory.is_dir():
                self.last_compaction = {"entries": 0, "transcoded": 0}
                return 0
            _check_store_format(directory, stamp=True)
            # Full independent rescan — including this instance's own
            # segment and any segments an index let refreshes skip.
            entries: dict[str, dict] = {}
            stale = sorted(directory.glob("*.jsonl"))
            for path in stale:
                for _size, line, entry in _scan_segment(path, 0):
                    entries[entry["k"]] = entry
            # repro-lint: ignore[determinism] uniqueness token for the compactor-private segment name; never reaches record bytes
            stem = f"c-{os.getpid()}-{os.urandom(4).hex()}"
            target = directory / f"{stem}.jsonl"
            bin_target = directory / f"{stem}{BIN_SUFFIX}"
            stale_bins = sorted(directory.glob(f"*{BIN_SUFFIX}"))
            sources: dict[str, object] = {}  # old sidecar name -> read handle

            def read_block(name: str, at: int, length: int) -> bytes:
                handle = sources.get(name)
                if handle is None:
                    handle = (directory / name).open("rb")
                    sources[name] = handle
                handle.seek(at)
                block = handle.read(length)
                if len(block) != length:
                    raise ValueError(f"short read from sidecar {name}")
                return block

            rows: list[tuple[str, str, int, int]] = []
            offset = 0
            bin_offset = 0
            transcoded = 0
            try:
                with target.open("wb") as handle, bin_target.open("wb") as bin_handle:
                    for address in sorted(entries):
                        entry = dict(entries[address])
                        value, block, was_legacy = _rebinarize_value(
                            entry.get("v"), bin_target.name, bin_offset, read_block
                        )
                        if block is not None:
                            bin_handle.write(block)
                            bin_offset += len(block)
                            entry["v"] = value
                            entries[address] = entry
                            transcoded += int(was_legacy)
                        line = (json.dumps(entry, sort_keys=True) + "\n").encode("utf8")
                        handle.write(line)
                        rows.append((address, target.name, offset, len(line)))
                        offset += len(line)
            finally:
                for handle in sources.values():
                    handle.close()
            if bin_offset == 0:
                bin_target.unlink(missing_ok=True)
            for path in stale:
                if path != target:
                    path.unlink(missing_ok=True)
            for path in stale_bins:
                if path != bin_target:
                    path.unlink(missing_ok=True)
            # Old sidecars are gone: drop their maps so future reads map
            # the compacted one (live views keep the old maps alive).
            if self._reader is not None:
                self._reader.close()
                self._reader = None
            if build_index:
                self._index = SqliteSegmentIndex.build(
                    directory, rows, [(target.name, offset)]
                )
                # Indexed entries are served by point lookup, never scan.
                self._disk_index = {}
            else:
                (directory / INDEX_NAME).unlink(missing_ok=True)
                self._disk_index = {entry["k"]: entry["v"] for entry in entries.values()}
            self._offsets = {target.name: offset}
            self.last_compaction = {"entries": len(entries), "transcoded": transcoded}
            return len(entries)

    # -- disk plumbing -------------------------------------------------------

    def _index_locked(self) -> "SqliteSegmentIndex | None":  # caller holds self._io_lock
        """The SQLite index handle, if attached or discoverable.

        An index this instance explicitly built (``compact(index=True)``)
        is always honored; ``use_index=False`` only stops the cache from
        going looking for index files left on disk by others.
        """
        if self._index is not None:
            return self._index
        if not self.use_index:
            return None
        candidate = SqliteSegmentIndex(self.directory)
        if not candidate.exists():
            return None
        self._index = candidate
        return self._index

    def probe_disk(self, address: str) -> "tuple[dict | None, str | None]":
        """Raw record for ``address`` plus the tier that served it.

        Returns ``(record, "segments")`` when a segment scan (or an
        earlier scan's in-memory index) has the entry and ``(record,
        "sqlite")`` when only the compacted SQLite index does. On a
        miss, the tier reports how deep the probe went: ``(None,
        "sqlite")`` if an index was actually consulted, ``(None,
        None)`` if the namespace has no index. Counts nothing — stats
        attribution is the caller's job (the service's per-tier stats,
        or :meth:`get_or_compute`'s aggregate ``disk_hits``).
        """
        with self._io_lock:
            record = self._disk_index.get(address)
            if record is None:
                self._refresh_locked()
                record = self._disk_index.get(address)
            if record is not None:
                return record, "segments"
            index = self._index_locked()
            if index is not None:
                record = index.lookup(address)
                if record is not None:
                    return record["v"], "sqlite"
                return None, "sqlite"
        return None, None

    def record_to_trace(self, record: dict) -> GenerationTrace:
        """Rehydrate a probed record, resolving binary blocks via mmap.

        The cache's shared :class:`_BinReader` keeps one map per
        sidecar, so a warm hit costs a zero-copy view, not a decode.
        """
        with self._io_lock:
            if self._reader is None:
                self._reader = _BinReader(self.directory)
            reader = self._reader
        return trace_from_record(record, reader=reader)

    def _from_disk(self, address: str):
        record, _tier = self.probe_disk(address)
        if record is None:
            return _MISS
        try:
            return self.record_to_trace(record)
        except (OSError, ValueError, KeyError):
            # A sidecar vanished or tore under us (e.g. a concurrent
            # compaction, documented as unsafe); fail soft — the caller
            # recomputes and the store heals on the next spill.
            return _MISS

    def _refresh_locked(self) -> None:  # caller holds self._io_lock
        """Pick up entries appended by other writers since the last scan.

        Segments covered by a compacted SQLite index are skipped — their
        entries resolve through O(1) index lookups instead of scans.
        """
        directory = self.directory
        if not directory.is_dir():
            return
        index = self._index_locked()
        if index is not None:
            for name, size in index.covered_segments().items():
                if self._offsets.get(name, 0) < size:
                    self._offsets[name] = size
        for path in sorted(directory.glob("*.jsonl")):
            if path == self._segment_path:
                continue  # own writes are already in memory
            consumed = self._offsets.get(path.name, 0)
            for consumed, _line, entry in _scan_segment(path, consumed):
                self._disk_index[entry["k"]] = entry["v"]
            self._offsets[path.name] = consumed

    def _spill(self, address: str, key, value: GenerationTrace) -> None:
        kind = key[0] if isinstance(key, tuple) and key else str(key)
        with self._io_lock:
            if self._handle is None:
                self.directory.mkdir(parents=True, exist_ok=True)
                _check_store_format(self.directory, stamp=self.codec == BINARY_CODEC)
                # repro-lint: ignore[determinism] uniqueness token for this writer's private segment name; never reaches record bytes
                name = f"w-{os.getpid()}-{os.urandom(4).hex()}.jsonl"
                self._segment_path = self.directory / name
                # The writer lock: a sidecar marking this segment as
                # actively appended, so compact() fails fast instead of
                # silently dropping our in-flight entries. Removed when
                # the segment is retired (close/clear/compact); a crash
                # leaves it behind and the dead pid marks it stale.
                self._lock_path = self.directory / f"{name}{LOCK_SUFFIX}"
                self._lock_path.write_text(
                    json.dumps(
                        {
                            "pid": os.getpid(),
                            "host": socket.gethostname(),
                            "segment": name,
                        },
                        sort_keys=True,
                    )
                )
                self._handle = self._segment_path.open("a", encoding="utf8", newline="\n")
                if self.codec == BINARY_CODEC:
                    bin_path = self._segment_path.with_suffix(BIN_SUFFIX)
                    self._bin_handle = bin_path.open("ab")
                    self._bin_offset = 0
            if self.codec == BINARY_CODEC:
                # Sidecar bytes land (and are flushed) before the
                # manifest line: a manifest entry implies its block.
                stack = _little_endian(value.hidden_matrix())
                self._bin_handle.write(stack.tobytes())
                self._bin_handle.flush()
                record = {
                    "instance_id": value.instance_id,
                    "aborted": bool(value.aborted),
                    "hidden": {
                        "dtype": stack.dtype.str,
                        "shape": [int(n) for n in stack.shape],
                        "bin": self._segment_path.with_suffix(BIN_SUFFIX).name,
                        "offset": int(self._bin_offset),
                        "length": int(stack.nbytes),
                    },
                    "steps": _steps_to_records(value),
                }
                self._bin_offset += stack.nbytes
            else:
                record = trace_to_record(value)
            entry = {"k": address, "kind": kind, "v": record}
            self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
            self._handle.flush()

    # A cache shipped to a worker process reopens the same store fresh:
    # its writes land in a new segment the parent picks up on refresh.
    def __getstate__(self) -> dict:
        return {
            "cache_dir": str(self.cache_dir),
            "namespace": self.namespace,
            "use_index": self.use_index,
            "codec": self.codec,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["cache_dir"],
            namespace=state["namespace"],
            use_index=state.get("use_index", True),
            codec=state.get("codec"),
        )


# -- store inspection (the repro-cache CLI) -----------------------------------


def _scan_segment(path: Path, consumed: int):
    """Yield ``(consumed_after, raw_line, entry)`` per complete entry.

    Starts at byte offset ``consumed`` and stops at a truncated or torn
    tail — the same tolerance as a reader refresh scan. A manifest entry
    whose ``.bin`` block reaches past the sidecar's current size is the
    binary-format torn tail (the writer died between sidecar flush and
    manifest flush, or the sidecar was truncated): the scan stops
    *before* it without advancing ``consumed``, so the loadable prefix
    is served and the tail is retried on the next refresh.
    """
    try:
        size = path.stat().st_size
    except OSError:  # pragma: no cover - racing deletion
        return
    if size <= consumed:
        return
    bin_sizes: dict[str, int] = {}
    try:
        with path.open("rb") as handle:
            handle.seek(consumed)
            for line in handle:
                if not line.endswith(b"\n"):
                    return  # in-flight append
                stripped = line.strip()
                consumed += len(line)
                if not stripped:
                    continue
                try:
                    entry = json.loads(stripped.decode("utf8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    return  # torn write
                ref = _bin_reference(entry.get("v")) if isinstance(entry, dict) else None
                if ref is not None:
                    name = str(ref["bin"])
                    if name not in bin_sizes:
                        try:
                            bin_sizes[name] = (path.parent / name).stat().st_size
                        except OSError:
                            bin_sizes[name] = 0  # missing sidecar: all torn
                    if int(ref["offset"]) + int(ref["length"]) > bin_sizes[name]:
                        return  # torn binary tail: block bytes not landed
                yield consumed, line, entry
    except OSError:  # pragma: no cover - racing deletion
        return


def store_stats(
    cache_dir: "str | Path", namespaces: "list[str] | None" = None
) -> dict:
    """Per-namespace shape of a persistent store, for ``repro-cache stats``.

    Scans segments at rest (no cache instance, no writers needed):
    distinct addresses, raw record counts (duplicates included — the
    compaction headroom), per-kind tallies, the per-codec mix (how many
    records and tensor bytes still sit in the legacy base64 layout vs
    binary sidecar blocks — the migration dashboard), byte footprint,
    and whether a compacted SQLite index covers the namespace.
    ``namespaces`` restricts the (potentially expensive) scan to the
    named ones.
    """
    cache_dir = Path(cache_dir)
    wanted = set(namespaces) if namespaces is not None else None
    namespaces: dict[str, dict] = {}
    if cache_dir.is_dir():
        for ns_dir in sorted(p for p in cache_dir.iterdir() if p.is_dir()):
            if wanted is not None and ns_dir.name not in wanted:
                continue
            segments = sorted(ns_dir.glob("*.jsonl"))
            addresses: set[str] = set()
            kinds: dict[str, int] = {}
            codecs: dict[str, dict] = {}
            records = 0
            total_bytes = 0
            for sidecar in sorted(ns_dir.glob(f"*{BIN_SUFFIX}")):
                total_bytes += sidecar.stat().st_size
            for segment in segments:
                total_bytes += segment.stat().st_size
                for _consumed, _line, entry in _scan_segment(segment, 0):
                    records += 1
                    addresses.add(entry["k"])
                    kind = str(entry.get("kind", "unknown"))
                    kinds[kind] = kinds.get(kind, 0) + 1
                    codec, nbytes = _record_codec(entry.get("v"))
                    tally = codecs.setdefault(codec, {"records": 0, "bytes": 0})
                    tally["records"] += 1
                    tally["bytes"] += nbytes
            index = SqliteSegmentIndex(ns_dir)
            indexed = index.exists()
            index_entries = 0
            if indexed:
                index_entries = len(index)
                addresses |= index.addresses()
                total_bytes += index.path.stat().st_size
                index.close()
            namespaces[ns_dir.name] = {
                "segments": len(segments),
                "records": records,
                "entries": len(addresses),
                "bytes": total_bytes,
                "kinds": dict(sorted(kinds.items())),
                "codecs": dict(sorted(codecs.items())),
                "indexed": indexed,
                "index_entries": index_entries,
                "active_writers": len(active_writer_locks(ns_dir)),
            }
    return {"cache_dir": str(cache_dir), "namespaces": namespaces}


def _record_codec(value) -> "tuple[str, int]":
    """``(codec, tensor_bytes)`` of one stored value record."""
    if not isinstance(value, dict):
        return "unknown", 0
    ref = _bin_reference(value)
    if ref is not None:
        return BINARY_CODEC, int(ref["length"])
    hidden = value.get("hidden")
    if isinstance(hidden, dict) and "b64" in hidden:
        return BASE64_CODEC, _b64_nbytes(hidden["b64"])
    if "hidden" not in value and value.get("steps"):
        nbytes = sum(
            _b64_nbytes(step["hidden"]["b64"])
            for step in value["steps"]
            if isinstance(step.get("hidden"), dict) and "b64" in step["hidden"]
        )
        return BASE64_CODEC, nbytes
    return "unknown", 0
