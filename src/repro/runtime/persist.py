"""Cross-process persistent generation cache.

The in-memory :class:`~repro.runtime.cache.GenerationCache` dies with
its process, so every sweep shard and every re-run pays the full
generation cost again. This module spills cache entries to a
content-addressed on-disk store that any number of concurrent readers
and writers — threads, worker processes, separate shard invocations,
even separate machines over a shared filesystem — can share safely.

Store layout
------------
``cache_dir/`` holds one subdirectory per *namespace* (a digest of the
simulated LLM's configuration and seed — generations from differently
seeded models must never alias), each containing append-only JSONL
*segment* files::

    cache_dir/
      <namespace>/
        w-<pid>-<nonce>.jsonl    # one segment per writer instance
        c-<pid>-<nonce>.jsonl    # a compacted segment (see compact())

Each line is one entry ``{"k": <address>, "kind": ..., "v": <trace>}``.
The address is a 128-bit blake2b digest over (namespace, cache key) —
the full identity of one generation input, including the candidate
universe via :func:`~repro.runtime.cache.instance_key` — so an entry is
immutable by construction: the same address always maps to the same
value, and duplicate writes are harmless.

Concurrency
-----------
Writers never touch each other's files: every cache instance lazily
creates its own uniquely named segment and appends complete lines under
an in-process lock, flushing per entry. Readers scan every segment in
the namespace, remember per-file byte offsets so refreshes only read
appended tails, and tolerate a truncated final line (a writer killed
mid-append) by leaving it for the next refresh. No file locks are
needed because segments are single-writer and entries are immutable.

Values round-trip *exactly*: hidden-state matrices are stored as base64
raw bytes with dtype and shape, so a trace rehydrated from disk is
bit-identical to the one computed — which is what makes sharded sweeps
byte-identical to unsharded ones even when probes are trained from
cached traces.

Eviction
--------
None, by design: entries are content-addressed and immutable, so the
store only grows and never goes stale. Delete the namespace directory
(or the whole ``cache_dir``) to evict everything, or call
:meth:`PersistentGenerationCache.compact` — only while no other writer
is active — to rewrite all segments into one with duplicates dropped.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import threading
from pathlib import Path

import numpy as np

from repro.llm.model import GenerationStep, GenerationTrace
from repro.runtime.cache import CacheStats, GenerationCache

__all__ = [
    "PersistentGenerationCache",
    "generation_namespace",
    "trace_to_record",
    "trace_from_record",
]

_MISS = object()


def generation_namespace(config, seed: int) -> str:
    """The store namespace for one simulated LLM identity.

    A generation is a pure function of (LLM config, LLM seed, instance);
    the instance is captured by the cache key, the rest lives here.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in (repr(config), int(seed)):
        digest.update(repr(part).encode("utf8"))
        digest.update(b"\x1f")
    return f"llm-{digest.hexdigest()}"


# -- exact trace (de)serialization --------------------------------------------


def _encode_array(arr: np.ndarray) -> dict:
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "b64": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _decode_array(record: dict) -> np.ndarray:
    raw = base64.b64decode(record["b64"].encode("ascii"))
    arr = np.frombuffer(raw, dtype=np.dtype(record["dtype"]))
    # copy(): frombuffer yields a read-only view over the bytes object.
    return arr.reshape(record["shape"]).copy()


def trace_to_record(trace: GenerationTrace) -> dict:
    """A JSON-able, bit-exact record of one generation trace."""
    return {
        "instance_id": trace.instance_id,
        "aborted": bool(trace.aborted),
        "steps": [
            {
                "position": int(step.position),
                "proposed": step.proposed,
                "hidden": _encode_array(step.hidden),
                "max_prob": float(step.max_prob),
                "item_index": int(step.item_index),
                "within_index": int(step.within_index),
                "is_branching": bool(step.is_branching),
                "committed": step.committed,
                "forced": bool(step.forced),
            }
            for step in trace.steps
        ],
    }


def trace_from_record(record: dict) -> GenerationTrace:
    """Rehydrate a trace; inverse of :func:`trace_to_record`."""
    return GenerationTrace(
        instance_id=record["instance_id"],
        steps=[
            GenerationStep(
                position=step["position"],
                proposed=step["proposed"],
                hidden=_decode_array(step["hidden"]),
                max_prob=step["max_prob"],
                item_index=step["item_index"],
                within_index=step["within_index"],
                is_branching=step["is_branching"],
                committed=step["committed"],
                forced=step["forced"],
            )
            for step in record["steps"]
        ],
        aborted=record["aborted"],
    )


# -- the persistent cache -----------------------------------------------------


class PersistentGenerationCache(GenerationCache):
    """A :class:`GenerationCache` backed by an on-disk segment store.

    Lookups fall through memory → disk → compute; computed values are
    spilled to this instance's own segment so other processes (and
    future runs) can reuse them. Stats distinguish ``hits`` (memory),
    ``disk_hits`` (loaded from the store) and ``misses`` (new LLM
    generations) — a warm sweep re-run must report zero misses.
    """

    def __init__(self, cache_dir: "str | Path", namespace: str = "default"):
        super().__init__()
        self.cache_dir = Path(cache_dir)
        self.namespace = str(namespace)
        self._disk_hits = 0
        self._io_lock = threading.Lock()
        self._disk_index: dict[str, dict] = {}  # address -> raw value record
        self._offsets: dict[str, int] = {}  # segment name -> bytes consumed
        self._segment_path: "Path | None" = None
        self._handle = None
        with self._io_lock:
            self._refresh_locked()

    @property
    def directory(self) -> Path:
        """This namespace's segment directory."""
        return self.cache_dir / self.namespace

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self._hits, misses=self._misses, disk_hits=self._disk_hits)

    def address(self, key) -> str:
        """The content address of one cache key within this namespace."""
        digest = hashlib.blake2b(digest_size=16)
        parts = key if isinstance(key, tuple) else (key,)
        for part in (self.namespace, *parts):
            digest.update(repr(part).encode("utf8"))
            digest.update(b"\x1f")
        return digest.hexdigest()

    def get_or_compute(self, key, compute):
        with self._lock:
            if key in self._data:
                self._hits += 1
                return self._data[key]
        address = self.address(key)
        value = self._from_disk(address)
        if value is not _MISS:
            with self._lock:
                self._disk_hits += 1
                self._data[key] = value
            return value
        with self._lock:
            self._misses += 1
        value = compute()  # computed outside the locks: misses run in parallel
        with self._lock:
            self._data[key] = value
        self._spill(address, key, value)
        return value

    def clear(self) -> None:
        """Reset in-memory state and every counter (including disk hits).

        The on-disk store is deliberately untouched: entries are
        immutable, so eviction means deleting the namespace directory
        (see the module docstring). This instance's own segment is
        retired (future spills open a new one) so its entries become
        readable again; subsequent lookups reload from disk and count
        as fresh ``disk_hits``.
        """
        with self._io_lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._segment_path = None
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0
            self._disk_hits = 0

    def disk_entries(self) -> int:
        """Distinct addresses visible in the store right now."""
        with self._io_lock:
            self._refresh_locked()
            return len(self._disk_index)

    def close(self) -> None:
        """Close this writer's segment handle (entries stay on disk)."""
        with self._io_lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def compact(self) -> int:
        """Merge every segment into one, dropping duplicate addresses.

        Only safe while no other writer is active: concurrent writers
        keep appending to unlinked segments and those entries are lost.
        Returns the number of distinct entries kept.
        """
        with self._io_lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            # Re-read everything, including this instance's own segment.
            self._segment_path = None
            self._offsets.clear()
            self._disk_index.clear()
            self._refresh_locked()
            directory = self.directory
            if not directory.is_dir():
                return 0
            stale = sorted(directory.glob("*.jsonl"))
            target = directory / f"c-{os.getpid()}-{os.urandom(4).hex()}.jsonl"
            with target.open("w", encoding="utf8", newline="\n") as handle:
                for address in sorted(self._disk_index):
                    entry = {"k": address, "v": self._disk_index[address]}
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
            for path in stale:
                if path != target:
                    path.unlink(missing_ok=True)
            self._offsets = {target.name: target.stat().st_size}
            return len(self._disk_index)

    # -- disk plumbing -------------------------------------------------------

    def _from_disk(self, address: str):
        with self._io_lock:
            record = self._disk_index.get(address)
            if record is None:
                self._refresh_locked()
                record = self._disk_index.get(address)
        if record is None:
            return _MISS
        return trace_from_record(record)

    def _refresh_locked(self) -> None:
        """Pick up entries appended by other writers since the last scan."""
        directory = self.directory
        if not directory.is_dir():
            return
        for path in sorted(directory.glob("*.jsonl")):
            if path == self._segment_path:
                continue  # own writes are already in memory
            consumed = self._offsets.get(path.name, 0)
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover - racing deletion
                continue
            if size <= consumed:
                continue
            with path.open("rb") as handle:
                handle.seek(consumed)
                for line in handle:
                    if not line.endswith(b"\n"):
                        break  # in-flight append; retry next refresh
                    stripped = line.strip()
                    if stripped:
                        try:
                            entry = json.loads(stripped.decode("utf8"))
                        except (json.JSONDecodeError, UnicodeDecodeError):
                            break  # torn write; retry next refresh
                        self._disk_index[entry["k"]] = entry["v"]
                    consumed += len(line)
            self._offsets[path.name] = consumed

    def _spill(self, address: str, key, value: GenerationTrace) -> None:
        kind = key[0] if isinstance(key, tuple) and key else str(key)
        entry = {"k": address, "kind": kind, "v": trace_to_record(value)}
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._io_lock:
            if self._handle is None:
                self.directory.mkdir(parents=True, exist_ok=True)
                name = f"w-{os.getpid()}-{os.urandom(4).hex()}.jsonl"
                self._segment_path = self.directory / name
                self._handle = self._segment_path.open("a", encoding="utf8", newline="\n")
            self._handle.write(line)
            self._handle.flush()

    # A cache shipped to a worker process reopens the same store fresh:
    # its writes land in a new segment the parent picks up on refresh.
    def __getstate__(self) -> dict:
        return {"cache_dir": str(self.cache_dir), "namespace": self.namespace}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["cache_dir"], namespace=state["namespace"])
