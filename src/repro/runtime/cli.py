"""``repro-run`` — batched evaluation sweeps from the command line.

Examples
--------
Link-level sweep with four threads, streaming a resumable artifact::

    repro-run --benchmark bird --split dev --task table --mode abstain \
        --workers 4 --artifact out/bird-table.jsonl

Joint table→column sweep with the expert human in the loop::

    repro-run --benchmark spider --split test --joint --mode human

Interrupt either run and re-issue the same command: completed examples
are loaded from the artifact and only the remainder is evaluated.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.config import ABSTAIN, HUMAN, MITIGATION_MODES, SURROGATE
from repro.corpus.generator import CorpusScale
from repro.experiments.common import ExperimentContext
from repro.runtime.artifacts import strict_jsonable
from repro.runtime.pool import BACKENDS, THREAD, default_workers

__all__ = ["build_parser", "main"]

SCALES = ("tiny", "small")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Batched RTS evaluation over a benchmark split.",
    )
    parser.add_argument("--benchmark", choices=("bird", "spider"), default="bird")
    parser.add_argument("--split", choices=("train", "dev", "test"), default="dev")
    parser.add_argument(
        "--task",
        choices=("table", "column"),
        default="table",
        help="linking task for per-task sweeps (ignored with --joint)",
    )
    parser.add_argument(
        "--joint",
        action="store_true",
        help="run the joint table->column pipeline instead of one task",
    )
    def positive_int(value: str) -> int:
        parsed = int(value)
        if parsed < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return parsed

    parser.add_argument("--mode", choices=sorted(MITIGATION_MODES), default=ABSTAIN)
    parser.add_argument("--workers", type=positive_int, default=default_workers())
    parser.add_argument("--backend", choices=BACKENDS, default=THREAD)
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default="small",
        help="synthetic corpus scale (tiny is the test/CI size)",
    )
    parser.add_argument(
        "--limit", type=positive_int, default=None, help="cap example count"
    )
    parser.add_argument(
        "--artifact",
        default=None,
        help="JSONL path for streamed per-example records (enables resume)",
    )
    parser.add_argument("--corpus-seed", type=int, default=7)
    parser.add_argument("--llm-seed", type=int, default=11)
    parser.add_argument("--rts-seed", type=int, default=3)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    scale = CorpusScale.tiny() if args.scale == "tiny" else CorpusScale.small()
    ctx = ExperimentContext(
        corpus_seed=args.corpus_seed,
        llm_seed=args.llm_seed,
        rts_seed=args.rts_seed,
        scale=scale,
        workers=args.workers,
        backend=args.backend,
    )
    benchmark = ctx.benchmark(args.benchmark)
    runner = ctx.runner(args.benchmark)
    surrogate = ctx.surrogate(args.benchmark) if args.mode == SURROGATE else None
    human = ctx.human() if args.mode == HUMAN else None

    if args.joint:
        examples = list(benchmark.split(args.split))[: args.limit]
        result = runner.run_joint(
            examples,
            benchmark,
            mode=args.mode,
            surrogate=surrogate,
            human=human,
            artifact=args.artifact,
        )
    else:
        instances = ctx.instances(args.benchmark, args.split, args.task)[: args.limit]
        result = runner.run_link(
            instances,
            mode=args.mode,
            surrogate=surrogate,
            human=human,
            artifact=args.artifact,
        )

    payload = {
        "benchmark": args.benchmark,
        "split": args.split,
        "task": "joint" if args.joint else args.task,
        "mode": args.mode,
        "workers": runner.pool.workers,
        "backend": runner.pool.backend,
        "n_resumed": result.n_resumed,
        "n_evaluated": result.n_evaluated,
        "summary": result.summary,
    }
    if result.cache_stats is not None:
        payload["generation_cache"] = result.cache_stats.as_dict()
    json.dump(strict_jsonable(payload), sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
