"""``repro-run``, ``repro-sweep`` and ``repro-cache`` from the shell.

Examples
--------
Link-level sweep with four threads, streaming a resumable artifact; the
``--backend`` axis picks the generation backend (``simulator`` for
direct in-process calls, ``async`` for microbatch-coalescing asyncio
scheduling, ``process`` for crash-isolated worker subprocesses —
byte-identical summaries whichever is chosen), and ``--cache-dir``
(defaulting to ``$REPRO_CACHE_DIR``) shares the persistent generation
store with sweeps and the table/figure drivers::

    repro-run --benchmark bird --split dev --task table --mode abstain \
        --workers 4 --backend async --artifact out/bird-table.jsonl

    repro-run --benchmark bird --split dev --task table --mode abstain \
        --workers 4 --backend process --worker-log-dir out/worker-logs

Joint table→column sweep with the expert human in the loop::

    repro-run --benchmark spider --split test --joint --mode human

Interrupt either run and re-issue the same command: completed examples
are loaded from the artifact and only the remainder is evaluated.

Multi-axis matrices shard across machines with ``repro-sweep``: every
invocation below may run on a different host against a shared
filesystem, and generations are reused across all of them through the
persistent cache under ``--cache-dir``. ``--progress`` streams per-unit
completion lines to stderr (stdout stays pure JSON)::

    repro-sweep run --benchmarks bird spider --modes abstain human \
        --shard-index 0 --shard-count 2 --out out/sweep --cache-dir out/gen
    repro-sweep run --benchmarks bird spider --modes abstain human \
        --shard-index 1 --shard-count 2 --out out/sweep --cache-dir out/gen \
        --progress
    repro-sweep merge --out out/sweep

The merged ``sweep-summary.json`` is byte-identical however the sweep
was sharded; ``repro-sweep plan`` previews the shard assignment.

``repro-cache`` inspects and maintains the store itself: ``stats``
reports per-namespace segment/entry/kind tallies, ``compact`` folds all
segments into one and builds the SQLite index tier for O(1) cold
lookups. Compaction fails fast while another writer holds a live
per-namespace lock (``--force`` overrides, accepting that concurrently
appended entries may be dropped)::

    repro-cache stats --cache-dir out/gen
    repro-cache compact --cache-dir out/gen

The online tier lives next door: ``repro-serve`` (see
:mod:`repro.runtime.serve`) answers HTTP queries through the same
service, byte-identically to these offline drivers, and
``repro-worker --connect`` (see :mod:`repro.runtime.remote`) joins a
socket-transport supervisor from any machine. All four entry points
share one :class:`~repro.runtime.service.BackendSpec` flag vocabulary.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.config import ABSTAIN, HUMAN, MITIGATION_MODES, SURROGATE
from repro.corpus.generator import CorpusScale
from repro.experiments.common import ExperimentContext
from repro.runtime.artifacts import strict_jsonable
from repro.runtime.pool import BACKENDS, THREAD, default_workers
from repro.runtime.service import BackendSpec
from repro.runtime.sweep import (
    BENCHMARKS,
    SCALES as SWEEP_SCALES,
    SPLITS,
    TASKS,
    ShardPlan,
    SweepRunner,
    SweepSpec,
    merge_sweep,
)

__all__ = [
    "build_parser",
    "main",
    "build_sweep_parser",
    "main_sweep",
    "build_cache_parser",
    "main_cache",
]

SCALES = ("tiny", "small")


def positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return parsed


def nonnegative_float(value: str) -> float:
    parsed = float(value)
    if not parsed >= 0:  # also rejects NaN
        raise argparse.ArgumentTypeError("must be >= 0")
    return parsed


def _default_cache_dir() -> "str | None":
    """``--cache-dir`` default: the driver-shared ``REPRO_CACHE_DIR``."""
    return os.environ.get("REPRO_CACHE_DIR") or None


RUN_EPILOG = """\
examples:
  # four-thread link sweep, resumable artifact, shared generation store
  repro-run --benchmark bird --split dev --task table --mode abstain \\
      --workers 4 --artifact out/bird-table.jsonl --cache-dir out/gen

  # the same unit on the async microbatching backend (byte-identical)
  repro-run --benchmark bird --split dev --task table --mode abstain \\
      --workers 4 --backend async --max-batch 8 --max-wait-ms 2

  # crash-isolated worker processes over unix-domain sockets; external
  # `repro-worker --connect <address>` processes may join the fleet
  repro-run --benchmark bird --split dev --task table --mode abstain \\
      --workers 4 --backend process --transport unix \\
      --worker-log-dir out/worker-logs

The --backend axis never changes a summary byte: all three backends are
pure functions of the same requests and share one cache namespace. The
same spec drives the online tier: `repro-serve` answers HTTP queries
byte-identically to these offline runs (see repro-serve --help), and
the shared SLO knobs apply offline too — --request-timeout-s deadlines
each generation and --fleet-token (or $REPRO_FLEET_TOKEN) gates socket
workers joining the fleet. Operator docs: README.md, docs/.
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Batched RTS evaluation over a benchmark split.",
        epilog=RUN_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--benchmark", choices=("bird", "spider"), default="bird")
    parser.add_argument("--split", choices=("train", "dev", "test"), default="dev")
    parser.add_argument(
        "--task",
        choices=("table", "column"),
        default="table",
        help="linking task for per-task sweeps (ignored with --joint)",
    )
    parser.add_argument(
        "--joint",
        action="store_true",
        help="run the joint table->column pipeline instead of one task",
    )
    parser.add_argument("--mode", choices=sorted(MITIGATION_MODES), default=ABSTAIN)
    parser.add_argument("--workers", type=positive_int, default=default_workers())
    parser.add_argument(
        "--pool",
        choices=BACKENDS,
        default=THREAD,
        help="worker-pool execution backend for per-example evaluation",
    )
    BackendSpec.add_arguments(parser)
    parser.add_argument(
        "--cache-dir",
        default=_default_cache_dir(),
        help="persistent generation cache shared with sweeps and drivers "
        "(default: $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default="small",
        help="synthetic corpus scale (tiny is the test/CI size)",
    )
    parser.add_argument(
        "--limit", type=positive_int, default=None, help="cap example count"
    )
    parser.add_argument(
        "--artifact",
        default=None,
        help="JSONL path for streamed per-example records (enables resume)",
    )
    parser.add_argument("--corpus-seed", type=int, default=7)
    parser.add_argument("--llm-seed", type=int, default=11)
    parser.add_argument("--rts-seed", type=int, default=3)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    scale = CorpusScale.tiny() if args.scale == "tiny" else CorpusScale.small()
    ctx = ExperimentContext(
        corpus_seed=args.corpus_seed,
        llm_seed=args.llm_seed,
        rts_seed=args.rts_seed,
        scale=scale,
        workers=args.workers,
        backend=args.pool,
        cache_dir=args.cache_dir,
        spec=BackendSpec.from_args(args, workers=max(1, args.workers)),
    )
    with ctx:
        benchmark = ctx.benchmark(args.benchmark)
        runner = ctx.runner(args.benchmark)
        surrogate = ctx.surrogate(args.benchmark) if args.mode == SURROGATE else None
        human = ctx.human() if args.mode == HUMAN else None

        if args.joint:
            examples = list(benchmark.split(args.split))[: args.limit]
            result = runner.run_joint(
                examples,
                benchmark,
                mode=args.mode,
                surrogate=surrogate,
                human=human,
                artifact=args.artifact,
            )
        else:
            instances = ctx.instances(args.benchmark, args.split, args.task)
            result = runner.run_link(
                instances[: args.limit],
                mode=args.mode,
                surrogate=surrogate,
                human=human,
                artifact=args.artifact,
            )

        payload = {
            "benchmark": args.benchmark,
            "split": args.split,
            "task": "joint" if args.joint else args.task,
            "mode": args.mode,
            "workers": runner.pool.workers,
            "pool": runner.pool.backend,
            "backend": args.backend,
            "cache_dir": args.cache_dir,
            "n_resumed": result.n_resumed,
            "n_evaluated": result.n_evaluated,
            "summary": result.summary,
        }
        if result.cache_stats is not None:
            payload["generation_cache"] = result.cache_stats.as_dict()
        json.dump(strict_jsonable(payload), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0


# -- repro-sweep --------------------------------------------------------------


def _emit(payload: dict) -> None:
    json.dump(strict_jsonable(payload), sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    matrix = parser.add_argument_group("sweep matrix")
    matrix.add_argument("--benchmarks", nargs="+", choices=BENCHMARKS, default=["bird"])
    matrix.add_argument("--splits", nargs="+", choices=SPLITS, default=["dev"])
    matrix.add_argument("--tasks", nargs="+", choices=TASKS, default=["table"])
    matrix.add_argument(
        "--modes", nargs="+", choices=sorted(MITIGATION_MODES), default=[ABSTAIN]
    )
    matrix.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[3],
        help="RTS pipeline seeds (one fitted pipeline per seed)",
    )
    matrix.add_argument("--corpus-seed", type=int, default=7)
    matrix.add_argument("--llm-seed", type=int, default=11)
    matrix.add_argument("--scale", choices=tuple(SWEEP_SCALES), default="small")
    matrix.add_argument(
        "--limit", type=positive_int, default=None, help="cap examples per unit"
    )


def _spec_from_args(args: argparse.Namespace) -> SweepSpec:
    return SweepSpec(
        benchmarks=tuple(args.benchmarks),
        splits=tuple(args.splits),
        tasks=tuple(args.tasks),
        modes=tuple(args.modes),
        seeds=tuple(args.seeds),
        corpus_seed=args.corpus_seed,
        llm_seed=args.llm_seed,
        scale=args.scale,
        limit=args.limit,
    )


SWEEP_EPILOG = """\
examples:
  # two shards (any two machines over a shared filesystem), then merge
  repro-sweep run --benchmarks bird spider --modes abstain human \\
      --shard-index 0 --shard-count 2 --out out/sweep --cache-dir out/gen
  repro-sweep run --benchmarks bird spider --modes abstain human \\
      --shard-index 1 --shard-count 2 --out out/sweep --cache-dir out/gen \\
      --backend process --workers 4 --worker-log-dir out/worker-logs
  repro-sweep merge --out out/sweep

Shards may mix --backend values freely (simulator, async, process):
unit summaries and the merged sweep-summary.json are byte-identical
regardless, and all backends share one persistent cache namespace.
With --backend process --transport unix|tcp the workers connect over
sockets, and external machines can lend capacity to a shard by running
`repro-worker --connect <address>` against its supervisor — gated by
--fleet-token / $REPRO_FLEET_TOKEN when set. --request-timeout-s
deadlines each generation instead of waiting forever. Operator docs:
README.md, docs/.
"""


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Sharded multi-axis evaluation sweeps with a persistent "
        "cross-process generation cache.",
        epilog=SWEEP_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one shard of the sweep matrix")
    _add_spec_arguments(run)
    run.add_argument("--shard-index", type=int, default=0)
    run.add_argument("--shard-count", type=positive_int, default=1)
    run.add_argument("--out", required=True, help="sweep output directory")
    run.add_argument(
        "--cache-dir",
        default=_default_cache_dir(),
        help="persistent generation cache shared across shards and re-runs "
        "(default: $REPRO_CACHE_DIR)",
    )
    run.add_argument("--workers", type=positive_int, default=1)
    run.add_argument(
        "--pool",
        choices=BACKENDS,
        default=THREAD,
        help="worker-pool execution backend for per-example evaluation",
    )
    BackendSpec.add_arguments(run)
    run.add_argument(
        "--progress",
        action="store_true",
        help="stream per-unit completion lines (id, examples, tier hit "
        "rates) to stderr; JSON artifacts are unaffected",
    )

    plan = commands.add_parser("plan", help="preview the shard assignment")
    _add_spec_arguments(plan)
    plan.add_argument("--shard-count", type=positive_int, default=1)

    merge = commands.add_parser(
        "merge", help="merge shard manifests into sweep-summary.json"
    )
    merge.add_argument("--out", required=True, help="sweep output directory")
    return parser


def main_sweep(argv: "list[str] | None" = None) -> int:
    parser = build_sweep_parser()
    args = parser.parse_args(argv)
    if args.command == "run" and not 0 <= args.shard_index < args.shard_count:
        parser.error(
            f"--shard-index {args.shard_index} out of range for "
            f"--shard-count {args.shard_count}"
        )
    if args.command == "merge":
        merged = merge_sweep(args.out)
        _emit(merged)
        return 0

    spec = _spec_from_args(args)
    if args.command == "plan":
        plan = ShardPlan(spec, args.shard_count)
        _emit(
            {
                "spec": spec.to_dict(),
                "spec_digest": spec.digest(),
                "n_units": len(spec.units()),
                "shards": {
                    f"shard-{i}": [u.unit_id for u in plan.shard(i)]
                    for i in range(args.shard_count)
                },
            }
        )
        return 0

    def progress_line(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    with SweepRunner(
        spec,
        args.out,
        cache_dir=args.cache_dir,
        workers=args.workers,
        pool=args.pool,
        backend_spec=BackendSpec.from_args(args, workers=max(1, args.workers)),
        progress=progress_line if args.progress else None,
    ) as runner:
        manifest = runner.run_shard(args.shard_index, args.shard_count)
    _emit(manifest)
    return 0


# -- repro-cache --------------------------------------------------------------


CACHE_EPILOG = """\
examples:
  repro-cache stats --cache-dir out/gen
  repro-cache compact --cache-dir out/gen
  repro-cache compact --cache-dir out/gen --namespace llm-0123abcd --force
  repro-cache migrate --cache-dir out/gen

stats reports the per-namespace codec mix (base64 vs binary records and
payload bytes), so a store mid-migration is visible at a glance.

compact folds segments, drops duplicates, and transcodes any legacy
base64 records into the binary sidecar layout; the transcode count is
logged and reported per namespace.  migrate is an alias for compact —
use it when the intent is codec migration rather than space reclaim.

compact fails fast while another writer holds a live lock on the
namespace (a crashed writer's stale lock is swept automatically);
--force overrides, accepting that concurrently appended entries may be
dropped.
"""


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="Inspect and maintain the persistent generation store.",
        epilog=CACHE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser(
        "stats", help="per-namespace segment/entry/kind/index tallies"
    )
    stats.add_argument(
        "--cache-dir",
        default=_default_cache_dir(),
        help="store root (default: $REPRO_CACHE_DIR)",
    )

    compact_help = {
        "compact": "fold each namespace's segments into one, dropping "
        "duplicates, transcoding legacy base64 records to the binary "
        "layout, and building the SQLite index tier (only while no "
        "writer is active)",
        "migrate": "alias for compact: rewrite every namespace in the "
        "current binary segment format (legacy base64 records are "
        "transcoded in place)",
    }
    for name, help_text in compact_help.items():
        compact = commands.add_parser(name, help=help_text)
        compact.add_argument(
            "--cache-dir",
            default=_default_cache_dir(),
            help="store root (default: $REPRO_CACHE_DIR)",
        )
        compact.add_argument(
            "--namespace",
            default=None,
            help="compact one namespace only (default: every namespace)",
        )
        compact.add_argument(
            "--no-index",
            action="store_true",
            help="skip building the SQLite index tier (segment scans only)",
        )
        compact.add_argument(
            "--force",
            action="store_true",
            help="compact even while other writers hold live locks (their "
            "in-flight entries may be dropped)",
        )
    return parser


def main_cache(argv: "list[str] | None" = None) -> int:
    from pathlib import Path

    from repro.runtime.persist import (
        INDEX_NAME,
        PersistentGenerationCache,
        WriterActiveError,
        store_stats,
    )

    parser = build_cache_parser()
    args = parser.parse_args(argv)
    if args.cache_dir is None:
        parser.error("--cache-dir is required (or set REPRO_CACHE_DIR)")

    if args.command == "stats":
        _emit(store_stats(args.cache_dir))
        return 0

    cache_dir = Path(args.cache_dir)
    present = (
        sorted(p.name for p in cache_dir.iterdir() if p.is_dir())
        if cache_dir.is_dir()
        else []
    )
    if args.namespace is not None:
        if args.namespace not in present:
            parser.error(
                f"namespace {args.namespace!r} not found under {cache_dir}"
            )
        targets = [args.namespace]
    else:
        targets = present
    # One record-parsing scan of the target namespaces only (the
    # "before" report); compact() below does the rewrite's own scan,
    # and the "after" numbers are stat()-sized, never re-parsed.
    before = store_stats(cache_dir, namespaces=targets)["namespaces"]
    compacted: dict = {}
    for namespace in targets:
        cache = PersistentGenerationCache(
            cache_dir, namespace=namespace, use_index=not args.no_index
        )
        try:
            kept = cache.compact(index=not args.no_index, force=args.force)
        except WriterActiveError as exc:
            # Fail fast, not silently: compacting under an active writer
            # drops or duplicates its in-flight entries.
            print(f"repro-cache: {exc}", file=sys.stderr)
            print("repro-cache: pass --force to compact anyway", file=sys.stderr)
            cache.close()
            return 3
        directory = cache.directory
        transcoded = (cache.last_compaction or {}).get("transcoded", 0)
        cache.close()
        # stat() sizes only — no second record-parsing scan of the store.
        bytes_after = sum(
            p.stat().st_size
            for pattern in ("*.jsonl", "*.bin")
            for p in directory.glob(pattern)
        )
        index_path = directory / INDEX_NAME
        if index_path.is_file():
            bytes_after += index_path.stat().st_size
        if transcoded:
            print(
                f"repro-cache: {namespace}: transcoded {transcoded} legacy "
                "base64 record(s) to binary",
                file=sys.stderr,
            )
        compacted[namespace] = {
            "entries": kept,
            "segments_before": before[namespace]["segments"],
            "records_before": before[namespace]["records"],
            "bytes_before": before[namespace]["bytes"],
            "bytes_after": bytes_after,
            "transcoded": transcoded,
            "indexed": not args.no_index,
        }
    _emit({"cache_dir": str(cache_dir), "compacted": compacted})
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
