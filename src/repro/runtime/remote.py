"""Process-isolated generation backend with crash recovery.

`SimulatorBackend` and `AsyncBatchedBackend` both execute generations
inside the calling process: one worker crash (OOM, native-extension
fault, operator SIGKILL) takes the whole sweep shard down with it, and a
GIL-bound kernel caps throughput at one core no matter how many threads
the scheduler runs. This module moves execution out of process:

:class:`ProcessBackend` (the supervisor)
    Spawns N worker subprocesses, each running :func:`worker_main` — a
    request-serving loop over framed, length-prefixed IPC on the
    worker's stdin/stdout pipes. The supervisor dispatches a batch
    round-robin over the workers, a reader thread per worker routes
    results back to the submitting callers, and worker lifecycle is
    managed end to end: liveness is checked before every batch (plus an
    explicit :meth:`ProcessBackend.ping` health check), a crashed
    worker is restarted within a restart budget, and every request that
    was in flight on a dead worker is requeued to a surviving worker.
    Each request resolves exactly once — a kill can delay a generation
    but never lose or duplicate one.

Wire protocol
-------------
Frames are ``4-byte big-endian length + payload``; payloads are pickled
message dicts tagged with ``"op"``::

    supervisor -> worker: {"op": "init", "llm": TransparentLLM}
    worker -> supervisor: {"op": "ready", "pid": ...}
    supervisor -> worker: {"op": "generate", "id": n, "request": GenerationRequest}
    worker -> supervisor: {"op": "result", "id": n, "trace": GenerationTrace}
                          | {"op": "error", "id": n, "error": traceback str}
    supervisor -> worker: {"op": "ping", "id": n}   -> {"op": "pong", "id": n}
    supervisor -> worker: {"op": "shutdown"}        (or EOF on stdin)

Pickle round-trips numpy arrays bit-exactly and traces are pure
functions of their requests, so :class:`ProcessBackend` is byte-identical
to :class:`~repro.runtime.service.SimulatorBackend` — the ``--backend
process`` axis changes *where* a generation runs, never a single summary
byte. ``identity()`` is the simulator identity tuple, so all three
backends share one persistent-cache namespace.

Workers write nothing to stdout except frames (diagnostics go to
stderr, optionally captured per worker under ``log_dir``). The
``REPRO_WORKER_CHAOS_DELAY_MS`` environment variable makes each worker
sleep that long before every generation — a fault-injection knob used by
the kill-recovery tests and the CI ``service-smoke`` job to hold a batch
open long enough to crash a worker mid-flight.

This is deliberately the seam future *remote* (multi-machine) backends
plug into: the framing and message vocabulary carry no process-local
state, so a socket transport can reuse them unchanged.
"""

from __future__ import annotations

import os
import pickle
import struct
import subprocess
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.llm.model import GenerationTrace, TransparentLLM
from repro.runtime.service import FORCED, simulator_identity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.service import GenerationRequest

__all__ = [
    "CHAOS_DELAY_ENV",
    "ProcessBackend",
    "SupervisorStats",
    "WorkerCrashError",
    "WorkerError",
    "read_frame",
    "recv_message",
    "send_message",
    "worker_main",
    "write_frame",
]

CHAOS_DELAY_ENV = "REPRO_WORKER_CHAOS_DELAY_MS"

_HEADER = struct.Struct(">I")


class WorkerError(RuntimeError):
    """A worker computed a generation and raised; the traceback travels."""


class WorkerCrashError(RuntimeError):
    """Workers died faster than the restart budget could replace them."""


# -- framing ------------------------------------------------------------------


def _read_exact(stream, n: int) -> "bytes | None":
    """``n`` bytes from ``stream``, or None on EOF (torn reads included)."""
    chunks = []
    while n:
        chunk = stream.read(n)
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def write_frame(stream, payload: bytes) -> None:
    """One length-prefixed frame, flushed so the peer sees it now."""
    stream.write(_HEADER.pack(len(payload)))
    stream.write(payload)
    stream.flush()


def read_frame(stream) -> "bytes | None":
    """The next frame payload, or None on EOF / a torn partial frame.

    A frame cut short by a dying peer is indistinguishable from EOF on
    purpose: both mean "this channel is done", never a corrupt message.
    """
    header = _read_exact(stream, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length == 0:
        return b""
    return _read_exact(stream, length)


def send_message(stream, message: dict) -> None:
    write_frame(stream, pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))


def recv_message(stream) -> "dict | None":
    payload = read_frame(stream)
    if payload is None:
        return None
    return pickle.loads(payload)


# -- the worker loop ----------------------------------------------------------


def worker_main(stdin=None, stdout=None) -> int:
    """Serve generation requests over framed stdin/stdout until EOF.

    The first frame is the init message carrying the pickled
    :class:`TransparentLLM`; everything after is request/response.
    Request-level failures are reported as ``error`` messages (the loop
    keeps serving); only a broken channel or a shutdown message ends it.
    """
    stdin = stdin if stdin is not None else sys.stdin.buffer
    stdout = stdout if stdout is not None else sys.stdout.buffer
    init = recv_message(stdin)
    if init is None or init.get("op") != "init":
        print("repro worker: no init message; exiting", file=sys.stderr)
        return 1
    llm = init["llm"]
    chaos_delay = float(os.environ.get(CHAOS_DELAY_ENV, "0") or 0) / 1000.0
    send_message(stdout, {"op": "ready", "pid": os.getpid()})
    while True:
        message = recv_message(stdin)
        if message is None or message.get("op") == "shutdown":
            return 0
        if message["op"] == "ping":
            send_message(stdout, {"op": "pong", "id": message["id"]})
            continue
        request = message["request"]
        try:
            if chaos_delay:
                time.sleep(chaos_delay)
            if request.kind == FORCED:
                trace = llm.teacher_forced_trace(request.instance)
            else:
                trace = llm.generate(request.instance)
        except Exception:
            send_message(
                stdout,
                {"op": "error", "id": message["id"], "error": traceback.format_exc()},
            )
            continue
        send_message(stdout, {"op": "result", "id": message["id"], "trace": trace})


# -- the supervisor -----------------------------------------------------------


@dataclass(frozen=True)
class SupervisorStats:
    """Lifecycle bookkeeping for one :class:`ProcessBackend`."""

    n_workers: int
    n_alive: int
    n_spawned: int
    n_restarts: int
    n_requeued: int
    n_duplicate_results: int


class _Pending:
    """One dispatched request waiting for its result."""

    __slots__ = ("request", "worker", "event", "value", "error")

    def __init__(self, request):
        self.request = request
        self.worker: "_Worker | None" = None
        self.event = threading.Event()
        self.value = None
        self.error: "BaseException | None" = None

    def resolve(self, value=None, error=None) -> None:
        self.value = value
        self.error = error
        self.event.set()


class _Worker:
    """A subprocess plus its write lock, reader thread and liveness flag."""

    __slots__ = ("index", "proc", "log_handle", "write_lock", "ready", "dead", "reader")

    def __init__(self, index: int, proc: subprocess.Popen, log_handle):
        self.index = index
        self.proc = proc
        self.log_handle = log_handle
        self.write_lock = threading.Lock()
        self.ready = threading.Event()
        self.dead = False  # guarded by the supervisor lock
        self.reader: "threading.Thread | None" = None


class ProcessBackend:
    """Supervises N generation worker subprocesses over framed pipe IPC.

    ``generate`` dispatches a batch round-robin across alive workers and
    blocks until every request resolves. A worker that exits — crash,
    OOM kill, operator SIGKILL — triggers recovery on its reader thread:
    the worker is replaced (while ``max_restarts`` lasts) and all of its
    in-flight requests are requeued to surviving workers, so a killed
    worker delays results but never loses or duplicates one. When the
    fleet cannot be kept alive, every stranded caller gets a
    :class:`WorkerCrashError` instead of a hang.

    Determinism: workers run the same ``TransparentLLM`` code as
    :class:`~repro.runtime.service.SimulatorBackend` and pickle
    round-trips traces bit-exactly, so results are byte-identical to the
    in-process backends and ``identity()`` (the simulator identity
    tuple) keeps the persistent-cache namespace shared across all of
    them.
    """

    def __init__(
        self,
        llm: TransparentLLM,
        workers: int = 2,
        max_restarts: "int | None" = None,
        startup_timeout_s: float = 60.0,
        shutdown_timeout_s: float = 5.0,
        log_dir: "str | Path | None" = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_restarts is not None and max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.llm = llm
        self.workers = int(workers)
        self.max_restarts = 2 * self.workers if max_restarts is None else int(max_restarts)
        self.startup_timeout_s = float(startup_timeout_s)
        self.shutdown_timeout_s = float(shutdown_timeout_s)
        self.log_dir = Path(log_dir) if log_dir is not None else None
        self._lock = threading.RLock()
        self._started = False
        self._closing = False
        self._fleet: "list[_Worker]" = []
        self._pending: "dict[int, _Pending]" = {}
        self._next_id = 0
        self._next_worker_index = 0
        self._rr = 0
        self._n_spawned = 0
        self._n_restarts = 0
        self._n_requeued = 0
        self._n_duplicate_results = 0
        self._init_blob: "bytes | None" = None

    # -- protocol surface ----------------------------------------------------

    @property
    def base_llm(self) -> TransparentLLM:
        return self.llm

    def identity(self) -> tuple:
        # The shared simulator identity: process isolation must not move
        # the persistent-cache namespace (see service.simulator_identity).
        return simulator_identity(self.llm)

    @property
    def stats(self) -> SupervisorStats:
        with self._lock:
            return SupervisorStats(
                n_workers=self.workers,
                n_alive=len(self._alive()),
                n_spawned=self._n_spawned,
                n_restarts=self._n_restarts,
                n_requeued=self._n_requeued,
                n_duplicate_results=self._n_duplicate_results,
            )

    @property
    def restarts(self) -> int:
        return self._n_restarts

    def worker_pids(self) -> "list[int]":
        """PIDs of the alive workers (for health tooling and kill tests)."""
        with self._lock:
            return [worker.proc.pid for worker in self._alive()]

    # -- lifecycle -----------------------------------------------------------

    def _alive(self) -> "list[_Worker]":  # caller holds self._lock
        return [worker for worker in self._fleet if not worker.dead]

    def _worker_env(self) -> dict:
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing else f"{src_root}{os.pathsep}{existing}"
        return env

    def _spawn_worker(self) -> _Worker:  # caller holds self._lock
        if self._init_blob is None:
            self._init_blob = pickle.dumps(
                {"op": "init", "llm": self.llm}, protocol=pickle.HIGHEST_PROTOCOL
            )
        index = self._next_worker_index
        self._next_worker_index += 1
        log_handle = None
        if self.log_dir is not None:
            self.log_dir.mkdir(parents=True, exist_ok=True)
            log_handle = (self.log_dir / f"worker-{index}.log").open("ab")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.remote"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=log_handle,
            env=self._worker_env(),
        )
        worker = _Worker(index, proc, log_handle)
        worker.reader = threading.Thread(
            target=self._read_loop,
            args=(worker,),
            name=f"generation-worker-reader-{index}",
            daemon=True,
        )
        try:
            with worker.write_lock:
                try:
                    write_frame(proc.stdin, self._init_blob)
                except (OSError, ValueError) as exc:
                    raise WorkerCrashError(
                        f"worker {index} died during handshake (see "
                        f"{self._log_path(worker)})"
                    ) from exc
            worker.reader.start()
            deadline = time.monotonic() + self.startup_timeout_s
            while not worker.ready.wait(0.05):
                if worker.proc.poll() is not None:
                    raise WorkerCrashError(
                        f"worker {index} exited during startup (see "
                        f"{self._log_path(worker)})"
                    )
                if time.monotonic() > deadline:
                    raise WorkerCrashError(
                        f"worker {index} not ready after "
                        f"{self.startup_timeout_s}s (see {self._log_path(worker)})"
                    )
        except BaseException:
            # A worker that never booted must not leak: mark it dead
            # before killing so the reader's retirement pass no-ops,
            # and never let it into the fleet (close() would otherwise
            # join a never-started reader thread).
            worker.dead = True
            if proc.poll() is None:
                proc.kill()
            proc.wait()
            if log_handle is not None:
                log_handle.close()
            raise
        # Only a fully booted worker joins the fleet.
        self._fleet.append(worker)
        self._n_spawned += 1
        return worker

    def _log_path(self, worker: _Worker) -> str:
        if self.log_dir is None:
            return "worker stderr"
        return str(self.log_dir / f"worker-{worker.index}.log")

    def _ensure_started(self) -> None:
        with self._lock:
            if self._started:
                return
            self._closing = False
            for _ in range(self.workers):
                self._spawn_worker()
            self._started = True

    def check_health(self) -> int:
        """Reap exited workers, replace them within budget; alive count.

        Cheap (one ``poll()`` per worker), called before every batch so
        a worker that died idle is replaced *before* requests are
        dispatched at it.
        """
        with self._lock:
            if not self._started:
                return 0
            for worker in list(self._fleet):
                if not worker.dead and worker.proc.poll() is not None:
                    self._retire_worker(worker)
            if not self._closing:
                try:
                    self._replenish()
                except Exception:
                    # A replacement that won't boot must not fail a
                    # batch the survivors could serve; with no survivor
                    # either, dispatch fails each request cleanly.
                    pass
            return len(self._alive())

    def _replenish(self) -> None:  # caller holds self._lock
        """Restart-on-crash: refill the fleet while the budget lasts."""
        while len(self._alive()) < self.workers and self._n_restarts < self.max_restarts:
            self._n_restarts += 1
            self._spawn_worker()

    def ping(self, timeout_s: float = 10.0) -> "list[int]":
        """Round-trip a ping through every alive worker; responsive PIDs."""
        self._ensure_started()
        self.check_health()
        with self._lock:
            fleet = list(self._alive())
            entries = []
            for worker in fleet:
                pending = _Pending(request=None)
                pending.worker = worker
                request_id = self._next_id
                self._next_id += 1
                self._pending[request_id] = pending
                entries.append((worker, request_id, pending))
        responsive = []
        for worker, request_id, pending in entries:
            if not self._send(worker, {"op": "ping", "id": request_id}):
                with self._lock:
                    self._pending.pop(request_id, None)
                continue
            if pending.event.wait(timeout_s) and pending.error is None:
                responsive.append(worker.proc.pid)
            else:
                with self._lock:
                    self._pending.pop(request_id, None)
        return responsive

    def close(self) -> None:
        """Shut the fleet down: graceful first, SIGKILL stragglers.

        In-flight requests are failed with a :class:`WorkerCrashError`
        rather than left to hang their submitters. The backend restarts
        cleanly on the next ``generate`` call, like the async backend.
        """
        with self._lock:
            if not self._started and not self._fleet:
                # Not merely "not started": a partial startup failure
                # can leave booted workers behind; tear those down too.
                return
            self._closing = True
            fleet = list(self._fleet)
            stranded = list(self._pending.values())
            self._pending.clear()
        for pending in stranded:
            pending.resolve(error=WorkerCrashError("ProcessBackend closed"))
        for worker in fleet:
            with worker.write_lock:
                try:
                    send_message(worker.proc.stdin, {"op": "shutdown"})
                    worker.proc.stdin.close()
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + self.shutdown_timeout_s
        for worker in fleet:
            try:
                worker.proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait()
            if worker.reader is not None:
                worker.reader.join(timeout=5)
            if worker.log_handle is not None:
                worker.log_handle.close()
        with self._lock:
            self._fleet = []
            self._started = False
            self._closing = False

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------------

    def generate(
        self, requests: "Sequence[GenerationRequest]"
    ) -> "list[GenerationTrace]":
        requests = list(requests)
        if not requests:
            return []
        self._ensure_started()
        self.check_health()
        entries = [self._submit(request) for request in requests]
        results = []
        for entry in entries:
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            results.append(entry.value)
        return results

    def _submit(self, request) -> _Pending:
        pending = _Pending(request)
        self._dispatch(pending)
        return pending

    def _dispatch(self, pending: _Pending) -> None:
        """Assign ``pending`` to an alive worker and send it (or fail it)."""
        while True:
            with self._lock:
                if self._closing:
                    pending.resolve(error=WorkerCrashError("ProcessBackend closed"))
                    return
                fleet = self._alive()
                if not fleet:
                    try:
                        fleet = [self._replace_worker()]
                    except WorkerCrashError as exc:
                        pending.resolve(error=exc)
                        return
                worker = fleet[self._rr % len(fleet)]
                self._rr += 1
                pending.worker = worker
                request_id = self._next_id
                self._next_id += 1
                self._pending[request_id] = pending
            if self._send(
                worker, {"op": "generate", "id": request_id, "request": pending.request}
            ):
                return
            # The pipe broke under us: recovery requeues everything that
            # was assigned to this worker — including this request,
            # unless a racing recovery pass already moved it elsewhere.
            self._retire_worker(worker)
            with self._lock:
                if pending.worker is not worker or pending.event.is_set():
                    return  # someone else already re-dispatched or failed it

    def _send(self, worker: _Worker, message: dict) -> bool:
        with worker.write_lock:
            try:
                send_message(worker.proc.stdin, message)
                return True
            except (OSError, ValueError):
                return False

    def _replace_worker(self) -> _Worker:  # caller holds self._lock
        if self._n_restarts >= self.max_restarts:
            raise WorkerCrashError(
                f"workers kept dying: restart budget ({self.max_restarts}) exhausted"
            )
        self._n_restarts += 1
        return self._spawn_worker()

    # -- the reader threads --------------------------------------------------

    def _read_loop(self, worker: _Worker) -> None:
        stream = worker.proc.stdout
        while True:
            try:
                message = recv_message(stream)
            except Exception:  # torn pickle == dying worker
                message = None
            if message is None:
                break
            op = message.get("op")
            if op == "ready":
                worker.ready.set()
            elif op in ("result", "error", "pong"):
                self._resolve(message)
        self._retire_worker(worker)

    def _resolve(self, message: dict) -> None:
        with self._lock:
            pending = self._pending.pop(message["id"], None)
            if pending is None:
                if message["op"] != "pong":
                    # A requeued request answered twice (the original
                    # worker turned out to be alive after a torn
                    # write). The first resolution won; identical by
                    # purity, dropped by design. Late pongs after a
                    # ping timeout are just slow workers, not dups.
                    self._n_duplicate_results += 1
                return
        if message["op"] == "error":
            pending.resolve(error=WorkerError(message["error"]))
        elif message["op"] == "pong":
            pending.resolve(value=True)
        else:
            pending.resolve(value=message["trace"])

    # -- crash recovery ------------------------------------------------------

    def _retire_worker(self, worker: _Worker) -> None:
        """Mark a worker dead and requeue its in-flight requests.

        Runs on reader threads, dispatchers that hit a broken pipe and
        ``check_health`` — idempotent under the supervisor lock, so the
        racing paths agree on exactly one recovery pass.
        """
        with self._lock:
            if worker.dead:
                return
            worker.dead = True
            closing = self._closing
            orphaned = [
                (request_id, pending)
                for request_id, pending in self._pending.items()
                if pending.worker is worker
            ]
            for request_id, _pending in orphaned:
                del self._pending[request_id]
            self._n_requeued += len(orphaned)
            if not closing:
                try:
                    self._replenish()
                except Exception:
                    # A replacement that won't boot must not strand the
                    # orphans: dispatch below still tries the survivors
                    # (and fails each request cleanly if none remain).
                    pass
        if worker.proc.poll() is None:  # broken pipe but still running
            worker.proc.kill()
        for _request_id, pending in orphaned:
            if closing or pending.request is None:  # pings don't requeue
                pending.resolve(error=WorkerCrashError("worker died"))
                continue
            # Claim the orphan before requeueing: a dispatcher whose
            # write broke may be racing this same recovery pass, and an
            # unguarded double-dispatch would run the generation twice
            # and resolve the pending twice. Whoever flips
            # pending.worker under the lock first owns the re-dispatch.
            with self._lock:
                if pending.worker is not worker or pending.event.is_set():
                    continue  # the racing dispatcher already moved it
                pending.worker = None
            self._dispatch(pending)

    # Pickled as configuration only, like the async backend: a clone in
    # another process spawns its own fleet on first use.
    def __getstate__(self) -> dict:
        return {
            "llm": self.llm,
            "workers": self.workers,
            "max_restarts": self.max_restarts,
            "startup_timeout_s": self.startup_timeout_s,
            "shutdown_timeout_s": self.shutdown_timeout_s,
            "log_dir": str(self.log_dir) if self.log_dir is not None else None,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)


if __name__ == "__main__":  # pragma: no cover - the worker entry point
    sys.exit(worker_main())
