"""Remote generation workers over a pluggable transport, with crash recovery.

`SimulatorBackend` and `AsyncBatchedBackend` both execute generations
inside the calling process: one worker crash (OOM, native-extension
fault, operator SIGKILL) takes the whole sweep shard down with it, and a
GIL-bound kernel caps throughput at one core no matter how many threads
the scheduler runs. This module moves execution out of process — and,
over sockets, onto other machines:

:class:`ProcessBackend` (the supervisor)
    Manages a fleet of workers, each a request-serving loop over framed,
    length-prefixed IPC. *Where* a worker lives is a transport choice:

    * ``transport="pipe"`` (default) — N spawned subprocesses speaking
      frames on their stdin/stdout pipes (:class:`PipeTransport`);
    * ``transport="unix"`` / ``transport="tcp"`` — the supervisor binds
      a listening socket, spawns N ``repro-worker`` subprocesses that
      connect back to it, and *also* accepts unsolicited connections
      from external ``repro-worker --connect <address>`` processes on
      any machine that can reach the address (:class:`SocketTransport`).
      Socket workers introduce themselves with an identity/capabilities
      ``hello`` and send periodic ``heartbeat`` frames.

    Batches are scheduled by observed per-worker latency: each worker
    carries an EWMA of its request round-trip times and every request
    goes to the worker with the lowest expected completion time
    (``ewma × (in-flight + 1)``), so a slow or remote worker naturally
    receives less traffic than a fast local one. Worker lifecycle is
    managed end to end: liveness is checked before every batch (plus an
    explicit :meth:`ProcessBackend.ping` health check), a crashed or
    disconnected worker is replaced within a restart budget, and every
    request that was in flight on a dead worker is requeued to a
    surviving worker. Each request resolves exactly once — a kill can
    delay a generation but never lose or duplicate one.

Wire protocol
-------------
Frames are ``4-byte big-endian length + payload``; payloads are pickled
message dicts tagged with ``"op"``::

    worker -> supervisor: {"op": "hello", "pid": ..., "host": ...,
                           "token": ..., "capabilities": {...}}   (socket only)
    supervisor -> worker: {"op": "init", "llm": TransparentLLM}
    worker -> supervisor: {"op": "ready", "pid": ...,
                           "shm": {"name": ..., "size": ...}}  (arena offer)
    supervisor -> worker: {"op": "shm", "enabled": bool}    (arena accepted?)
    supervisor -> worker: {"op": "generate", "id": n, "request": GenerationRequest}
    worker -> supervisor: {"op": "result", "id": n, "trace": GenerationTrace}
                          | {"op": "result", "id": n, "trace": <stripped>,
                             "shm": {"offset", "length", "dtype", "shape"}}
                          | {"op": "error", "id": n, "error": traceback str}
    supervisor -> worker: {"op": "arena_free", "length": n}  (shm block read)
    supervisor -> worker: {"op": "ping", "id": n}   -> {"op": "pong", "id": n}
    worker -> supervisor: {"op": "heartbeat", "pid": ...}         (socket only)
    worker -> supervisor: {"op": "draining", "pid": ...}   (SIGTERM received)
    supervisor -> worker: {"op": "goodbye", "reason": ...} (hello rejected)
    supervisor -> worker: {"op": "shutdown"}        (or EOF)

The shared-memory data plane
----------------------------
Control messages always travel as framed pickles, but the dominant
bytes of a result — the trace's hidden-state tensor — can skip the
stream entirely: each worker creates a ``multiprocessing.shared_memory``
arena (a ring buffer, sized by ``REPRO_SHM_ARENA_BYTES``) and offers it
in its ready message. A supervisor on the same machine attaches and
acks ``{"op": "shm", "enabled": True}``; from then on the worker writes
each tensor block into the ring and sends the result with the hidden
states stripped plus an ``(offset, length, dtype, shape)`` descriptor.
The supervisor copies the block out, rebuilds the trace bit-exactly,
and returns the ring space with ``arena_free`` (results and acks are
both serial per worker, so the ring is a strict FIFO). Every failure
mode falls back to inline pickling — a cross-machine TCP worker whose
arena the supervisor cannot attach, an arena allocation failure, a
block too small (``< 2 KiB``) or too large for the ring — and a torn
descriptor retires the worker exactly like a torn frame, so the
kill-one-worker byte-identity invariant holds unchanged on every
transport and either data plane (``ProcessBackend(shared_memory=...)``).

Hardening: the supervisor can carry a ``fleet_token`` — socket hellos
must present it (compared with ``hmac.compare_digest``) or the
connection is dropped before any pickle of ours reaches the peer. A
``request_timeout_s`` deadline bounds every ``generate`` wait; an
expired request raises :class:`~repro.runtime.service.DeadlineExceeded`
to its caller while the supervisor disowns the in-flight id — the late
result is absorbed (not a duplicate) and a later crash will not requeue
it. ``SIGTERM`` to a worker (or :meth:`ProcessBackend.drain`) starts a
graceful drain: the worker stops receiving new dispatch, finishes its
in-flight requests, and deregisters with zero requeues — the rolling
restart primitive.

Pickle round-trips numpy arrays bit-exactly and traces are pure
functions of their requests, so :class:`ProcessBackend` is byte-identical
to :class:`~repro.runtime.service.SimulatorBackend` on every transport —
the ``--backend process`` axis changes *where* a generation runs, never
a single summary byte. ``identity()`` is the simulator identity tuple,
so all backends share one persistent-cache namespace.

Workers write nothing to their frame channel except frames (diagnostics
go to stderr, captured per worker under ``log_dir`` — defaulted to a
fresh temp directory so crash forensics always exist). The
``REPRO_WORKER_CHAOS_DELAY_MS`` environment variable makes each worker
sleep that long before every generation — a fault-injection knob used by
the kill-recovery tests and the CI smoke jobs to hold a batch open long
enough to crash a worker mid-flight.
"""

from __future__ import annotations

import argparse
import hmac
import os
import pickle
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.llm.model import GenerationTrace, TransparentLLM
from repro.runtime.service import (
    FLEET_TOKEN_ENV,
    FORCED,
    FREE,
    PIPE_TRANSPORT,
    TCP_TRANSPORT,
    TRANSPORTS,
    UNIX_TRANSPORT,
    DeadlineExceeded,
    effective_timeout,
    simulator_identity,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.service import GenerationRequest

__all__ = [
    "CHAOS_DELAY_ENV",
    "DEFAULT_HEARTBEAT_S",
    "SHM_ARENA_ENV",
    "SHM_MIN_BYTES",
    "PipeTransport",
    "ProcessBackend",
    "SocketTransport",
    "SupervisorStats",
    "WorkerCrashError",
    "WorkerError",
    "build_worker_parser",
    "connect_address",
    "create_listener",
    "main_worker",
    "parse_address",
    "read_frame",
    "recv_message",
    "send_message",
    "socket_worker_main",
    "worker_main",
    "write_frame",
]

CHAOS_DELAY_ENV = "REPRO_WORKER_CHAOS_DELAY_MS"
#: Per-worker shared-memory arena size in bytes (0 disables the arena).
SHM_ARENA_ENV = "REPRO_SHM_ARENA_BYTES"
DEFAULT_SHM_ARENA_BYTES = 8 * 1024 * 1024
#: Tensors below this ride inline — descriptor overhead beats the copy.
SHM_MIN_BYTES = 2048
DEFAULT_HEARTBEAT_S = 2.0

_HEADER = struct.Struct(">I")


class WorkerError(RuntimeError):
    """A worker computed a generation and raised; the traceback travels."""


class WorkerCrashError(RuntimeError):
    """Workers died faster than the restart budget could replace them."""


# -- framing ------------------------------------------------------------------


def _read_exact(stream, n: int) -> "bytes | None":
    """``n`` bytes from ``stream``, or None on EOF (torn reads included)."""
    chunks = []
    while n:
        chunk = stream.read(n)
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def write_frame(stream, payload: bytes) -> None:
    """One length-prefixed frame, flushed so the peer sees it now."""
    stream.write(_HEADER.pack(len(payload)))
    stream.write(payload)
    stream.flush()


def read_frame(stream) -> "bytes | None":
    """The next frame payload, or None on EOF / a torn partial frame.

    A frame cut short by a dying peer is indistinguishable from EOF on
    purpose: both mean "this channel is done", never a corrupt message.
    """
    header = _read_exact(stream, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length == 0:
        return b""
    return _read_exact(stream, length)


def send_message(stream, message: dict) -> None:
    write_frame(stream, pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))


def recv_message(stream) -> "dict | None":
    payload = read_frame(stream)
    if payload is None:
        return None
    return pickle.loads(payload)


# -- addresses ----------------------------------------------------------------


def parse_address(address: str) -> tuple:
    """``"unix:/path"`` → ``("unix", path)``; ``"tcp:host:port"`` →
    ``("tcp", (host, port))``."""
    kind, _, rest = address.partition(":")
    if kind == UNIX_TRANSPORT and rest:
        return (UNIX_TRANSPORT, rest)
    if kind == TCP_TRANSPORT and rest:
        host, _, port = rest.rpartition(":")
        if host and port.isdigit():
            return (TCP_TRANSPORT, (host, int(port)))
    raise ValueError(
        f"bad worker address {address!r}; expected unix:/path or tcp:host:port"
    )


def connect_address(address: str) -> socket.socket:
    """A connected socket to a supervisor at ``address``."""
    kind, target = parse_address(address)
    if kind == UNIX_TRANSPORT:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(target)
        return sock
    return socket.create_connection(target)


def create_listener(transport: str, address: "str | None") -> tuple:
    """A bound, listening socket plus its canonical address string.

    With no explicit ``address``, unix sockets bind in a fresh temp
    directory and TCP binds an ephemeral localhost port — both printed
    back as the address workers should ``--connect`` to.
    """
    if transport == UNIX_TRANSPORT:
        if address is not None:
            path = parse_address(address)[1]
        else:
            path = str(Path(tempfile.mkdtemp(prefix="repro-sup-")) / "supervisor.sock")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(path)
        sock.listen()
        return sock, f"unix:{path}"
    if transport == TCP_TRANSPORT:
        host, port = parse_address(address)[1] if address is not None else ("127.0.0.1", 0)
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen()
        bound_host, bound_port = sock.getsockname()[:2]
        return sock, f"tcp:{bound_host}:{bound_port}"
    raise ValueError(f"transport {transport!r} has no listener")


# -- transports ---------------------------------------------------------------


class PipeTransport:
    """Framed IPC over a spawned subprocess's stdin/stdout pipes."""

    def __init__(self, proc: subprocess.Popen):
        self.proc = proc

    def send(self, message: dict) -> None:
        send_message(self.proc.stdin, message)

    def send_bytes(self, payload: bytes) -> None:
        write_frame(self.proc.stdin, payload)

    def recv(self) -> "dict | None":
        try:
            return recv_message(self.proc.stdout)
        except Exception:  # repro-lint: ignore[exception-hygiene] torn pickle == dying worker; None tells the read loop to recover it
            return None

    def alive(self) -> bool:
        return self.proc.poll() is None

    def begin_shutdown(self) -> None:
        """Politely end the channel (the worker loop exits on EOF)."""
        try:
            self.proc.stdin.close()
        except (OSError, ValueError):
            pass

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()

    def close(self) -> None:
        self.begin_shutdown()


class SocketTransport:
    """Framed IPC over one connected unix-domain or TCP socket."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        self._closed = False

    def send(self, message: dict) -> None:
        send_message(self._wfile, message)

    def send_bytes(self, payload: bytes) -> None:
        write_frame(self._wfile, payload)

    def recv(self) -> "dict | None":
        try:
            return recv_message(self._rfile)
        except Exception:  # repro-lint: ignore[exception-hygiene] closed under us / torn pickle == dead peer; None triggers recovery
            return None

    def alive(self) -> bool:
        return not self._closed

    def begin_shutdown(self) -> None:
        """Half-close the write side so the peer's recv sees EOF."""
        try:
            self._wfile.flush()
            self.sock.shutdown(socket.SHUT_WR)
        except (OSError, ValueError):
            pass

    def kill(self) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for resource in (self._rfile, self._wfile, self.sock):
            try:
                resource.close()
            except (OSError, ValueError):
                pass


# -- the worker-side shared-memory arena --------------------------------------


def _untrack_shm(shm: shared_memory.SharedMemory) -> None:
    """Stop the resource tracker from owning ``shm``'s lifetime.

    Python 3.11/3.12 register every attach with the tracker, which would
    double-unlink (and warn about) arenas the worker already owns; the
    supervisor side only ever borrows a map, so it opts out. Best-effort
    — a tracker API change must never break the data plane.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover  # repro-lint: ignore[exception-hygiene] best-effort tracker opt-out; a tracker API change must never break the data plane
        pass


class _WorkerArena:
    """The worker's half of the data plane: an SPSC ring in shared memory.

    The worker (single-threaded request loop) is the only producer and
    the only consumer of ring *space*: blocks are placed at ``tail`` and
    freed strictly FIFO when the supervisor's ``arena_free`` acks arrive
    on the same serial channel as requests — so no locking is needed.
    ``enabled`` stays False (every result rides inline) until the
    supervisor confirms it attached.
    """

    def __init__(self, shm: shared_memory.SharedMemory):
        self.shm = shm
        self.size = shm.size
        self.enabled = False
        self.tail = 0
        self.live: "deque[tuple[int, int]]" = deque()  # (offset, length) FIFO
        self.disposed = False

    @classmethod
    def create(cls) -> "_WorkerArena | None":
        """A fresh arena sized by the environment, or None when disabled
        (``REPRO_SHM_ARENA_BYTES=0``) or shared memory is unavailable."""
        try:
            size = int(os.environ.get(SHM_ARENA_ENV, "") or DEFAULT_SHM_ARENA_BYTES)
        except ValueError:
            size = DEFAULT_SHM_ARENA_BYTES
        if size <= 0:
            return None
        try:
            return cls(shared_memory.SharedMemory(create=True, size=size))
        except (OSError, ValueError):
            return None  # no /dev/shm (or too small): inline pickling only

    def offer(self) -> dict:
        return {"name": self.shm.name, "size": self.size}

    def _place(self, length: int) -> "int | None":
        """Reserve ``length`` contiguous bytes in the ring, or None."""
        if not self.live:
            if length > self.size:
                return None
            offset = 0
        else:
            head = self.live[0][0]
            if self.tail >= head:  # live region is unwrapped
                if self.size - self.tail >= length:
                    offset = self.tail
                elif head >= length:
                    offset = 0  # wrap: the space before head fits it
                else:
                    return None
            elif head - self.tail >= length:  # already wrapped
                offset = self.tail
            else:
                return None
        self.tail = offset + length
        self.live.append((offset, length))
        return offset

    def stash(self, trace: GenerationTrace) -> "tuple[GenerationTrace, dict] | None":
        """Park a trace's tensor in the ring; stripped trace + descriptor.

        None (caller sends the trace inline) when the arena is not
        confirmed, the block is too small to be worth it, or the ring
        has no room right now.
        """
        if self.disposed or not self.enabled:
            return None
        stack = np.ascontiguousarray(trace.hidden_matrix())
        if stack.nbytes < SHM_MIN_BYTES or stack.nbytes > self.size:
            return None
        offset = self._place(stack.nbytes)
        if offset is None:
            return None
        view = np.ndarray(stack.shape, dtype=stack.dtype, buffer=self.shm.buf, offset=offset)
        view[:] = stack
        stripped = replace(
            trace,
            steps=[replace(step, hidden=None) for step in trace.steps],
            hidden_stack=None,
        )
        descriptor = {
            "offset": int(offset),
            "length": int(stack.nbytes),
            "dtype": stack.dtype.str,
            "shape": [int(n) for n in stack.shape],
        }
        return stripped, descriptor

    def free(self, length: int) -> None:
        """Return the oldest live block (the supervisor read it)."""
        if self.live:
            self.live.popleft()
        if not self.live:
            self.tail = 0
        _ = length  # FIFO by construction; the length is advisory

    def dispose(self, unlink: bool) -> None:
        """Release the arena (the worker unlinks; it owns the name)."""
        if self.disposed:
            return
        self.disposed = True
        self.enabled = False
        try:
            self.shm.close()
        except (BufferError, OSError):
            pass
        if unlink:
            try:
                self.shm.unlink()
            except (FileNotFoundError, OSError):
                pass


# -- the worker loops ---------------------------------------------------------


def _send_result(send: Callable, arena: "_WorkerArena | None", request_id, trace) -> None:
    """One result frame — tensor via the arena when possible, else inline."""
    if arena is not None and arena.enabled:
        try:
            placed = arena.stash(trace)
        except Exception:  # repro-lint: ignore[exception-hygiene] any arena failure falls back to the inline path, never a loss
            placed = None
        if placed is not None:
            stripped, descriptor = placed
            send({"op": "result", "id": request_id, "trace": stripped, "shm": descriptor})
            return
    send({"op": "result", "id": request_id, "trace": trace})


def _serve_requests(recv: Callable, send: Callable, llm, arena=None) -> int:
    """The shared request loop: generate/ping until EOF or shutdown.

    Request-level failures are reported as ``error`` messages (the loop
    keeps serving); only a broken channel or a shutdown message ends it.
    ``send`` must be safe to call from this thread while heartbeats (if
    any) use the same lock-wrapped callable from theirs. ``arena`` is
    this worker's shared-memory ring: confirmed/declined by the
    supervisor's ``shm`` ack, drained by its ``arena_free`` acks — both
    arriving on this same serial channel.
    """
    chaos_delay = float(os.environ.get(CHAOS_DELAY_ENV, "0") or 0) / 1000.0
    while True:
        message = recv()
        if message is None or message.get("op") == "shutdown":
            return 0
        op = message.get("op")
        if op == "ping":
            send({"op": "pong", "id": message["id"]})
            continue
        if op == "shm":
            if arena is not None:
                if message.get("enabled"):
                    arena.enabled = True
                else:
                    arena.dispose(unlink=True)
            continue
        if op == "arena_free":
            if arena is not None:
                arena.free(int(message.get("length", 0)))
            continue
        if op != "generate":
            continue  # future-proofing: unknown supervisor ops are ignored
        request = message["request"]
        try:
            if chaos_delay:
                time.sleep(chaos_delay)
            if request.kind == FORCED:
                trace = llm.teacher_forced_trace(request.instance)
            else:
                trace = llm.generate(request.instance)
        except Exception:
            send(
                {"op": "error", "id": message["id"], "error": traceback.format_exc()}
            )
            continue
        _send_result(send, arena, message["id"], trace)


def _drain_notifier(send: Callable, drain_event: threading.Event) -> None:
    """Announce drain intent upstream once the SIGTERM flag trips.

    The signal handler only sets the event — sending from the handler
    itself could re-enter the write lock mid-frame and deadlock — so
    this daemon thread does the actual (locked) send. The worker keeps
    serving until the supervisor answers with ``shutdown`` / EOF.
    """
    drain_event.wait()
    try:
        send({"op": "draining", "pid": os.getpid()})
    except (OSError, ValueError):
        pass  # channel gone: the main loop is exiting anyway


def worker_main(stdin=None, stdout=None, drain_event=None) -> int:
    """Serve generation requests over framed stdin/stdout until EOF.

    The first frame is the init message carrying the pickled
    :class:`TransparentLLM`; everything after is request/response.
    ``drain_event`` (set by ``main_worker``'s SIGTERM handler) makes the
    worker announce ``draining`` upstream and finish gracefully.
    """
    stdin = stdin if stdin is not None else sys.stdin.buffer
    stdout = stdout if stdout is not None else sys.stdout.buffer
    init = recv_message(stdin)
    if init is None or init.get("op") != "init":
        print("repro worker: no init message; exiting", file=sys.stderr)
        return 1
    llm = init["llm"]
    write_lock = threading.Lock()

    def send(message: dict) -> None:
        with write_lock:
            send_message(stdout, message)

    if drain_event is not None:
        threading.Thread(
            target=_drain_notifier,
            args=(send, drain_event),
            name="repro-worker-drain",
            daemon=True,
        ).start()
    arena = _WorkerArena.create()
    ready = {"op": "ready", "pid": os.getpid()}
    if arena is not None:
        ready["shm"] = arena.offer()
    send(ready)
    try:
        return _serve_requests(lambda: recv_message(stdin), send, llm, arena)
    finally:
        if arena is not None:
            arena.dispose(unlink=True)


def _heartbeat_loop(send: Callable, stop: threading.Event, interval_s: float) -> None:
    while not stop.wait(interval_s):
        try:
            send({"op": "heartbeat", "pid": os.getpid()})
        except (OSError, ValueError):
            return  # channel gone: the main loop is exiting too


def socket_worker_main(
    address: str,
    token: "str | None" = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    drain_event=None,
) -> int:
    """Connect to a supervisor, register, and serve its requests.

    This is the ``repro-worker`` entry point: the hello frame carries
    the worker's identity (pid, host) and capabilities, the supervisor
    answers with the init message, and a daemon thread heartbeats every
    ``heartbeat_s`` seconds so the supervisor can tell a slow worker
    from a dead link. ``token`` doubles as the spawn token (supervisor-
    launched workers) or the shared fleet token (external joins against
    a ``--fleet-token`` supervisor); ``drain_event`` triggers the
    graceful-drain announcement (see :func:`_drain_notifier`).
    """
    try:
        sock = connect_address(address)
    except OSError as exc:
        print(f"repro-worker: cannot connect to {address}: {exc}", file=sys.stderr)
        return 1
    transport = SocketTransport(sock)
    write_lock = threading.Lock()

    def send(message: dict) -> None:
        with write_lock:
            transport.send(message)

    try:
        send(
            {
                "op": "hello",
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "token": token,
                "capabilities": {"kinds": [FREE, FORCED]},
            }
        )
        init = transport.recv()
        if isinstance(init, dict) and init.get("op") == "goodbye":
            # The supervisor's polite rejection (fleet full, bad token):
            # report its reason and exit cleanly instead of retrying.
            reason = init.get("reason") or "no reason given"
            print(f"repro-worker: rejected by supervisor: {reason}", file=sys.stderr)
            return 1
        if init is None or init.get("op") != "init":
            print("repro-worker: no init message; exiting", file=sys.stderr)
            return 1
        llm = init["llm"]
        stop = threading.Event()
        if heartbeat_s > 0:
            threading.Thread(
                target=_heartbeat_loop,
                args=(send, stop, heartbeat_s),
                name="repro-worker-heartbeat",
                daemon=True,
            ).start()
        if drain_event is not None:
            threading.Thread(
                target=_drain_notifier,
                args=(send, drain_event),
                name="repro-worker-drain",
                daemon=True,
            ).start()
        arena = _WorkerArena.create()
        ready = {"op": "ready", "pid": os.getpid()}
        if arena is not None:
            ready["shm"] = arena.offer()
        send(ready)
        try:
            return _serve_requests(transport.recv, send, llm, arena)
        finally:
            stop.set()
            if arena is not None:
                arena.dispose(unlink=True)
    finally:
        transport.close()


WORKER_EPILOG = """\
examples:
  # join a supervisor listening on a unix-domain socket (same machine)
  repro-worker --connect unix:/tmp/repro-sup-abc/supervisor.sock

  # join a supervisor on another machine over TCP
  repro-worker --connect tcp:10.0.0.5:7431

Without --connect the worker serves framed stdio — the pipe-transport
mode ProcessBackend spawns directly. Generations are byte-identical on
every transport; REPRO_WORKER_CHAOS_DELAY_MS delays each generation for
fault-injection testing.
"""


def build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="A generation worker serving a ProcessBackend supervisor.",
        epilog=WORKER_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--connect",
        default=None,
        help="supervisor address (unix:/path or tcp:host:port); "
        "omit to serve framed stdio as a pipe-transport worker",
    )
    parser.add_argument(
        "--token",
        default=None,
        help="spawn token echoed in the hello frame (set by the supervisor "
        "when it launches its own socket workers)",
    )
    parser.add_argument(
        "--fleet-token",
        default=None,
        help="shared secret for joining a --fleet-token supervisor "
        f"(default: the {FLEET_TOKEN_ENV} environment variable, if set)",
    )
    parser.add_argument(
        "--heartbeat-s",
        type=float,
        default=DEFAULT_HEARTBEAT_S,
        help="heartbeat interval for socket transports (0 disables)",
    )
    return parser


def main_worker(argv: "list[str] | None" = None) -> int:
    args = build_worker_parser().parse_args(argv)
    # SIGTERM means drain, not die: set a flag the notifier thread turns
    # into a ``draining`` frame, keep serving until shutdown/EOF.
    drain_event = threading.Event()
    try:
        signal.signal(signal.SIGTERM, lambda _signum, _frame: drain_event.set())
    except ValueError:  # not the main thread (embedded use): no handler
        pass
    if args.connect is None:
        return worker_main(drain_event=drain_event)
    token = args.token or args.fleet_token or os.environ.get(FLEET_TOKEN_ENV) or None
    return socket_worker_main(
        args.connect,
        token=token,
        heartbeat_s=args.heartbeat_s,
        drain_event=drain_event,
    )


# -- the supervisor -----------------------------------------------------------


@dataclass(frozen=True)
class SupervisorStats:
    """Lifecycle bookkeeping for one :class:`ProcessBackend`."""

    n_workers: int
    n_alive: int
    n_spawned: int
    n_restarts: int
    n_requeued: int
    n_duplicate_results: int
    transport: str = PIPE_TRANSPORT
    n_external: int = 0
    n_heartbeats: int = 0
    n_deadline_exceeded: int = 0
    n_draining: int = 0
    n_drained: int = 0
    n_rejected_hellos: int = 0
    n_shm_results: int = 0
    n_shm_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "n_alive": self.n_alive,
            "n_spawned": self.n_spawned,
            "n_restarts": self.n_restarts,
            "n_requeued": self.n_requeued,
            "n_duplicate_results": self.n_duplicate_results,
            "transport": self.transport,
            "n_external": self.n_external,
            "n_heartbeats": self.n_heartbeats,
            "n_deadline_exceeded": self.n_deadline_exceeded,
            "n_draining": self.n_draining,
            "n_drained": self.n_drained,
            "n_rejected_hellos": self.n_rejected_hellos,
            "n_shm_results": self.n_shm_results,
            "n_shm_bytes": self.n_shm_bytes,
        }


class _Pending:
    """One dispatched request waiting for its result."""

    __slots__ = ("request", "worker", "event", "value", "error", "sent_at", "request_id")

    def __init__(self, request):
        self.request = request
        self.worker: "_Worker | None" = None
        self.event = threading.Event()
        self.value = None
        self.error: "BaseException | None" = None
        self.sent_at: "float | None" = None
        # The id of the *latest* dispatch (requeue reallocates ids);
        # deadline expiry uses it to disown exactly the in-flight copy.
        self.request_id: "int | None" = None

    def resolve(self, value=None, error=None) -> None:
        self.value = value
        self.error = error
        self.event.set()


# EWMA smoothing for per-worker request latency (higher = more reactive).
_EWMA_ALPHA = 0.3


class _Worker:
    """One fleet member: transport, lifecycle flags, latency estimate."""

    __slots__ = (
        "index",
        "transport",
        "proc",
        "log_handle",
        "write_lock",
        "ready",
        "dead",
        "draining",
        "reader",
        "pid",
        "remote",
        "ewma_s",
        "inflight",
        "last_seen",
        "arena",
    )

    def __init__(
        self,
        index: int,
        transport,
        proc: "subprocess.Popen | None" = None,
        log_handle=None,
        remote: bool = False,
    ):
        self.index = index
        self.transport = transport
        self.proc = proc
        self.log_handle = log_handle
        self.write_lock = threading.Lock()
        self.ready = threading.Event()
        self.dead = False  # guarded-by: ProcessBackend._lock
        self.draining = False  # guarded-by: ProcessBackend._lock
        self.reader: "threading.Thread | None" = None
        self.pid: "int | None" = proc.pid if proc is not None else None
        self.remote = remote  # joined over the wire, not spawned by us
        self.ewma_s: "float | None" = None  # observed request latency
        self.inflight = 0  # guarded-by: ProcessBackend._lock
        self.last_seen = time.monotonic()
        # The worker's shared-memory arena, attached supervisor-side
        # (None for cross-machine workers and the inline data plane).
        self.arena: "shared_memory.SharedMemory | None" = None

    def alive_probe(self) -> bool:
        """Cheap liveness: subprocess poll when we own one, else channel."""
        if self.proc is not None:
            return self.proc.poll() is None
        return self.transport.alive()


class ProcessBackend:
    """Supervises a fleet of generation workers over a pluggable transport.

    ``generate`` dispatches a batch over alive workers — each request to
    the worker with the lowest expected completion time (latency EWMA ×
    queue depth) — and blocks until every request resolves. A worker
    that exits or disconnects — crash, OOM kill, operator SIGKILL, a
    severed network link — triggers recovery on its reader thread: the
    worker is replaced (while ``max_restarts`` lasts, for workers the
    supervisor spawns) and all of its in-flight requests are requeued to
    surviving workers, so a killed worker delays results but never loses
    or duplicates one. When the fleet cannot be kept alive, every
    stranded caller gets a :class:`WorkerCrashError` instead of a hang.

    Transports: ``"pipe"`` spawns subprocesses over stdio frames;
    ``"unix"`` / ``"tcp"`` bind a listening socket, spawn ``workers``
    local socket workers, and additionally adopt any external
    ``repro-worker --connect`` that dials in (``workers=0`` makes the
    supervisor accept-only — it waits for remote workers to join).
    With ``fleet_token`` set, external hellos must present the token
    (``hmac.compare_digest``) or the connection is dropped unserved.

    SLO hardening: ``request_timeout_s`` (or a per-call
    :func:`~repro.runtime.service.deadline_scope`) bounds every
    ``generate`` wait — an expired request raises
    :class:`~repro.runtime.service.DeadlineExceeded` while its in-flight
    id is disowned (late result absorbed, crash-requeue suppressed,
    never duplicated). :meth:`drain` — or a worker-side SIGTERM —
    retires a worker gracefully: no new dispatch, in-flight work
    completes, polite shutdown, zero requeues.

    Data plane: with ``shared_memory=True`` (default) each same-machine
    worker's tensors travel through its shared-memory arena instead of
    the pickle stream (see the module docstring); remote workers and any
    arena failure fall back to inline pickling per result, silently.

    Determinism: workers run the same ``TransparentLLM`` code as
    :class:`~repro.runtime.service.SimulatorBackend` and both data
    planes round-trip traces bit-exactly, so results are byte-identical
    to the in-process backends and ``identity()`` (the simulator
    identity tuple) keeps the persistent-cache namespace shared across
    all of them.
    """

    def __init__(
        self,
        llm: TransparentLLM,
        workers: int = 2,
        max_restarts: "int | None" = None,
        startup_timeout_s: float = 60.0,
        shutdown_timeout_s: float = 5.0,
        log_dir: "str | Path | None" = None,
        transport: str = PIPE_TRANSPORT,
        address: "str | None" = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        request_timeout_s: "float | None" = None,
        fleet_token: "str | None" = None,
        shared_memory: bool = True,
    ):
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; pick from {TRANSPORTS}")
        if workers < 1 and transport == PIPE_TRANSPORT:
            raise ValueError("workers must be >= 1 on the pipe transport")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if max_restarts is not None and max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if request_timeout_s is not None and not request_timeout_s > 0:
            raise ValueError("request_timeout_s must be > 0 (or None)")
        if fleet_token is not None and not fleet_token:
            raise ValueError("fleet_token must be non-empty (or None)")
        self.llm = llm
        self.request_timeout_s = (
            None if request_timeout_s is None else float(request_timeout_s)
        )
        self.fleet_token = fleet_token
        self.shared_memory = bool(shared_memory)
        self.workers = int(workers)
        self.max_restarts = 2 * max(1, self.workers) if max_restarts is None else int(max_restarts)
        self.startup_timeout_s = float(startup_timeout_s)
        self.shutdown_timeout_s = float(shutdown_timeout_s)
        self.transport = transport
        self.heartbeat_s = float(heartbeat_s)
        self._address_arg = address
        self._log_dir_arg = log_dir
        self.log_dir = Path(log_dir) if log_dir is not None else None
        self._lock = threading.RLock()
        self._started = False  # guarded-by: self._lock
        self._closing = False  # guarded-by: self._lock
        self._fleet: "list[_Worker]" = []  # guarded-by: self._lock
        self._pending: "dict[int, _Pending]" = {}  # guarded-by: self._lock
        self._next_id = 0  # guarded-by: self._lock
        self._next_worker_index = 0  # guarded-by: self._lock
        self._rr = 0  # guarded-by: self._lock
        self._n_spawned = 0  # guarded-by: self._lock
        self._n_restarts = 0  # guarded-by: self._lock
        self._n_requeued = 0  # guarded-by: self._lock
        self._n_duplicate_results = 0  # guarded-by: self._lock
        self._n_external = 0  # guarded-by: self._lock
        self._n_heartbeats = 0  # guarded-by: self._lock
        self._n_deadline_exceeded = 0  # guarded-by: self._lock
        self._n_drained = 0  # guarded-by: self._lock
        self._n_rejected_hellos = 0  # guarded-by: self._lock
        self._n_shm_results = 0  # guarded-by: self._lock
        self._n_shm_bytes = 0  # guarded-by: self._lock
        # Deadline-disowned in-flight ids → the worker still computing
        # them; their late results adjust bookkeeping, never duplicate.
        self._expired: "dict[int, _Worker]" = {}  # guarded-by: self._lock
        self._init_blob: "bytes | None" = None
        self._listener: "socket.socket | None" = None
        self._listen_address: "str | None" = None
        self._acceptor: "threading.Thread | None" = None
        self._handshake_lock = threading.Lock()
        self._spawn_waiters: "dict[str, dict]" = {}  # guarded-by: self._handshake_lock
        self._last_dead: "_Worker | None" = None  # guarded-by: self._lock

    # -- protocol surface ----------------------------------------------------

    @property
    def base_llm(self) -> TransparentLLM:
        return self.llm

    def identity(self) -> tuple:
        # The shared simulator identity: process isolation must not move
        # the persistent-cache namespace (see service.simulator_identity).
        return simulator_identity(self.llm)

    @property
    def stats(self) -> SupervisorStats:
        with self._lock:
            return SupervisorStats(
                n_workers=self.workers,
                n_alive=len(self._alive()),
                n_spawned=self._n_spawned,
                n_restarts=self._n_restarts,
                n_requeued=self._n_requeued,
                n_duplicate_results=self._n_duplicate_results,
                transport=self.transport,
                n_external=self._n_external,
                n_heartbeats=self._n_heartbeats,
                n_deadline_exceeded=self._n_deadline_exceeded,
                n_draining=sum(1 for worker in self._alive() if worker.draining),
                n_drained=self._n_drained,
                n_rejected_hellos=self._n_rejected_hellos,
                n_shm_results=self._n_shm_results,
                n_shm_bytes=self._n_shm_bytes,
            )

    @property
    def restarts(self) -> int:
        with self._lock:
            return self._n_restarts

    @property
    def address(self) -> "str | None":
        """The bound listen address once started (socket transports)."""
        return self._listen_address if self._listen_address else self._address_arg

    def worker_pids(self) -> "list[int]":
        """PIDs of the alive workers (for health tooling and kill tests)."""
        with self._lock:
            return [worker.pid for worker in self._alive() if worker.pid is not None]

    def worker_snapshot(self) -> "list[dict]":
        """Per-worker scheduling state (for /v1/stats and debugging)."""
        now = time.monotonic()
        with self._lock:
            return [
                {
                    "index": worker.index,
                    "pid": worker.pid,
                    "remote": worker.remote,
                    "draining": worker.draining,
                    "inflight": worker.inflight,
                    "ewma_ms": worker.ewma_s * 1000.0 if worker.ewma_s else None,
                    "idle_s": round(now - worker.last_seen, 3),
                }
                for worker in self._alive()
            ]

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Boot the fleet eagerly (``generate`` also starts it lazily)."""
        self._ensure_started()

    def _alive(self) -> "list[_Worker]":  # caller holds self._lock
        return [worker for worker in self._fleet if not worker.dead]

    def _dispatchable(self) -> "list[_Worker]":  # caller holds self._lock
        """Alive workers accepting new requests (draining ones finish
        their in-flight work but get nothing new)."""
        return [worker for worker in self._fleet if not worker.dead and not worker.draining]

    def _worker_env(self) -> dict:
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing else f"{src_root}{os.pathsep}{existing}"
        return env

    def _ensure_log_dir(self) -> Path:
        # Worker stderr is always captured: without an explicit log_dir
        # a temp directory holds the logs so crash forensics (and the
        # restart-budget error's log tail) never come up empty.
        if self.log_dir is None:
            self.log_dir = Path(tempfile.mkdtemp(prefix="repro-worker-logs-"))
        else:
            self.log_dir.mkdir(parents=True, exist_ok=True)
        return self.log_dir

    def _ensure_listener(self) -> None:  # caller holds self._lock
        if self._listener is not None:
            return
        self._listener, self._listen_address = create_listener(
            self.transport, self._address_arg
        )
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="generation-supervisor-acceptor", daemon=True
        )
        self._acceptor.start()

    def _spawn_worker(self) -> _Worker:  # caller holds self._lock
        if self._init_blob is None:
            self._init_blob = pickle.dumps(
                {"op": "init", "llm": self.llm}, protocol=pickle.HIGHEST_PROTOCOL
            )
        index = self._next_worker_index
        self._next_worker_index += 1
        log_handle = (self._ensure_log_dir() / f"worker-{index}.log").open("ab")
        proc: "subprocess.Popen | None" = None
        try:
            if self.transport == PIPE_TRANSPORT:
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro.runtime.remote"],
                    stdin=subprocess.PIPE,
                    stdout=subprocess.PIPE,
                    stderr=log_handle,
                    env=self._worker_env(),
                )
                transport = PipeTransport(proc)
                hello: "dict | None" = None
            else:
                transport, proc, hello = self._spawn_socket_worker(index, log_handle)
        except BaseException:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
            log_handle.close()
            raise
        worker = _Worker(index, transport, proc, log_handle)
        if hello is not None and hello.get("pid") is not None:
            worker.pid = int(hello["pid"])
        worker.reader = threading.Thread(
            target=self._read_loop,
            args=(worker,),
            name=f"generation-worker-reader-{index}",
            daemon=True,
        )
        try:
            with worker.write_lock:
                try:
                    transport.send_bytes(self._init_blob)
                except (OSError, ValueError) as exc:
                    raise WorkerCrashError(
                        f"worker {index} died during handshake (see "
                        f"{self._log_path(worker)})"
                    ) from exc
            worker.reader.start()
            deadline = time.monotonic() + self.startup_timeout_s
            while not worker.ready.wait(0.05):
                if not worker.alive_probe():
                    raise WorkerCrashError(
                        f"worker {index} exited during startup (see "
                        f"{self._log_path(worker)})"
                    )
                if time.monotonic() > deadline:
                    raise WorkerCrashError(
                        f"worker {index} not ready after "
                        f"{self.startup_timeout_s}s (see {self._log_path(worker)})"
                    )
        except BaseException:
            # A worker that never booted must not leak: mark it dead
            # before killing so the reader's retirement pass no-ops,
            # and never let it into the fleet (close() would otherwise
            # join a never-started reader thread).
            worker.dead = True
            worker.transport.kill()
            if proc is not None:
                if proc.poll() is None:
                    proc.kill()
                proc.wait()
            log_handle.close()
            raise
        # Only a fully booted worker joins the fleet.
        self._fleet.append(worker)
        self._n_spawned += 1
        return worker

    def _spawn_socket_worker(self, index: int, log_handle) -> tuple:
        """Launch a local socket worker and wait for it to dial back in.

        The spawned process carries a one-shot token; the acceptor's
        handshake thread hands its connection over through
        ``_spawn_waiters`` (its own lock — never the supervisor lock, so
        external joins racing a spawn cannot deadlock either side).
        """
        self._ensure_listener()
        token = os.urandom(8).hex()
        slot = {"event": threading.Event(), "transport": None, "hello": None}
        with self._handshake_lock:
            self._spawn_waiters[token] = slot
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.runtime.remote",
                "--connect",
                self._listen_address,
                "--token",
                token,
                "--heartbeat-s",
                str(self.heartbeat_s),
            ],
            stdin=subprocess.DEVNULL,
            stdout=log_handle,
            stderr=log_handle,
            env=self._worker_env(),
        )
        try:
            deadline = time.monotonic() + self.startup_timeout_s
            while not slot["event"].wait(0.05):
                if proc.poll() is not None:
                    raise WorkerCrashError(
                        f"socket worker {index} exited before connecting (see "
                        f"{self.log_dir / f'worker-{index}.log'})"
                    )
                if time.monotonic() > deadline:
                    raise WorkerCrashError(
                        f"socket worker {index} did not connect within "
                        f"{self.startup_timeout_s}s (address {self._listen_address})"
                    )
        except BaseException:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            raise
        finally:
            with self._handshake_lock:
                self._spawn_waiters.pop(token, None)
        return slot["transport"], proc, slot["hello"]

    def _accept_loop(self) -> None:
        """One acceptor owns ``accept()``; each connection handshakes on
        its own short-lived thread so a spawn-in-progress (which waits
        while holding the supervisor lock) never blocks external joins."""
        listener = self._listener
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed: supervisor is shutting down
            threading.Thread(
                target=self._handshake, args=(conn,), daemon=True
            ).start()

    def _handshake(self, conn: socket.socket) -> None:
        transport = SocketTransport(conn)
        hello = transport.recv()
        if hello is None or hello.get("op") != "hello":
            transport.close()
            return
        token = hello.get("token")
        if token and isinstance(token, str):
            with self._handshake_lock:
                slot = self._spawn_waiters.get(token)
                if slot is not None:
                    # One-shot spawn token: this is a worker we launched
                    # ourselves, vouched for out of band — no fleet
                    # token required.
                    slot["transport"] = transport
                    slot["hello"] = hello
                    slot["event"].set()
                    return
        if self.fleet_token is not None:
            presented = token if isinstance(token, str) else ""
            if not hmac.compare_digest(
                presented.encode("utf-8"), self.fleet_token.encode("utf-8")
            ):
                with self._lock:
                    self._n_rejected_hellos += 1
                try:
                    transport.send({"op": "goodbye", "reason": "fleet token rejected"})
                except (OSError, ValueError):
                    pass
                transport.close()
                return
        self._adopt(transport, hello)

    def _adopt(self, transport: SocketTransport, hello: dict) -> None:
        """Admit an external ``repro-worker`` into the fleet."""
        with self._lock:
            if self._closing or not self._started:
                transport.close()
                return
            if self._init_blob is None:
                self._init_blob = pickle.dumps(
                    {"op": "init", "llm": self.llm}, protocol=pickle.HIGHEST_PROTOCOL
                )
            index = self._next_worker_index
            self._next_worker_index += 1
            worker = _Worker(index, transport, proc=None, remote=True)
            if hello.get("pid") is not None:
                worker.pid = int(hello["pid"])
            try:
                with worker.write_lock:
                    transport.send_bytes(self._init_blob)
            except (OSError, ValueError):
                transport.close()
                return
            worker.reader = threading.Thread(
                target=self._read_loop,
                args=(worker,),
                name=f"generation-worker-reader-{index}",
                daemon=True,
            )
            worker.reader.start()
            self._fleet.append(worker)
            self._n_spawned += 1
            self._n_external += 1

    def _log_path(self, worker: _Worker) -> str:
        if worker.remote:
            return f"remote worker pid={worker.pid} (stderr stays on its host)"
        if self.log_dir is None:
            return "worker stderr"
        return str(self.log_dir / f"worker-{worker.index}.log")

    def _log_tail(self, worker: "_Worker | None", limit: int = 50) -> str:
        """The last ``limit`` captured stderr lines of ``worker``."""
        if worker is None or worker.remote or self.log_dir is None:
            return ""
        path = self.log_dir / f"worker-{worker.index}.log"
        try:
            lines = path.read_text(errors="replace").splitlines()
        except OSError:
            return ""
        return "\n".join(lines[-limit:])

    def _crash_context(self) -> str:  # caller holds self._lock
        """Log forensics appended to the restart-budget-exhausted error."""
        worker = self._last_dead
        tail = self._log_tail(worker)
        if not tail:
            return ""
        return (
            f"; last log lines from worker {worker.index} "
            f"({self._log_path(worker)}):\n{tail}"
        )

    def _ensure_started(self) -> None:
        with self._lock:
            if self._started:
                return
            self._closing = False
            if self.transport != PIPE_TRANSPORT:
                self._ensure_listener()
            self._started = True  # adopts are legal while spawns boot
            try:
                for _ in range(self.workers):
                    self._spawn_worker()
            except BaseException:
                self._started = bool(self._fleet)
                raise

    def check_health(self) -> int:
        """Reap exited workers, replace them within budget; alive count.

        Cheap (one poll per worker), called before every batch so a
        worker that died idle is replaced *before* requests are
        dispatched at it. A remote worker whose heartbeats stopped for
        ten intervals is presumed dead and retired the same way.
        """
        with self._lock:
            if not self._started:
                return 0
            now = time.monotonic()
            stale_after = 10.0 * self.heartbeat_s if self.heartbeat_s > 0 else None
            for worker in list(self._fleet):
                if worker.dead:
                    continue
                if not worker.alive_probe():
                    self._retire_worker(worker)
                elif (
                    worker.remote
                    and stale_after is not None
                    and now - worker.last_seen > stale_after
                ):
                    self._retire_worker(worker)
            if not self._closing:
                try:
                    self._replenish()
                # repro-lint: ignore[exception-hygiene] a replacement that won't boot must not fail the health check
                except Exception:
                    # A replacement that won't boot must not fail a
                    # batch the survivors could serve; with no survivor
                    # either, dispatch fails each request cleanly.
                    pass
            return len(self._alive())

    def _replenish(self) -> None:  # caller holds self._lock
        """Restart-on-crash: refill the fleet while the budget lasts."""
        while len(self._alive()) < self.workers and self._n_restarts < self.max_restarts:
            self._n_restarts += 1
            self._spawn_worker()

    # -- graceful draining ---------------------------------------------------

    def drain(self, worker_id: int) -> bool:
        """Gracefully retire the alive worker with index ``worker_id``.

        The worker stops receiving new dispatch immediately, finishes
        everything already in flight, then gets a polite ``shutdown`` —
        zero requeues, zero duplicates. A locally-spawned worker is
        replaced up front (a deliberate rotation, so the replacement
        does not consume the restart budget); a remote worker's operator
        brings its successor. Returns False for an unknown/dead id.
        """
        with self._lock:
            worker = next(
                (candidate for candidate in self._alive() if candidate.index == worker_id),
                None,
            )
            if worker is None:
                return False
        self._begin_drain(worker)
        return True

    def _begin_drain(self, worker: _Worker) -> None:
        finish = False
        with self._lock:
            if worker.dead or worker.draining:
                return
            worker.draining = True
            if (
                worker.proc is not None
                and self._started
                and not self._closing
                and self.workers > 0
            ):
                try:
                    self._spawn_worker()
                # repro-lint: ignore[exception-hygiene] capacity dips by one; check_health's _replenish covers the gap
                except Exception:
                    # Capacity dips by one; check_health's _replenish
                    # (restart budget) covers the gap after the drain.
                    pass
            finish = self._drain_ready(worker)
        if finish:  # already idle: deregister right away
            self._finish_drain(worker)

    def _drain_ready(self, worker: _Worker) -> bool:  # caller holds self._lock
        """True when a draining worker has nothing left in flight —
        including deadline-expired requests it is still computing."""
        return (
            worker.draining
            and not worker.dead
            and worker.inflight <= 0
            and not any(pending.worker is worker for pending in self._pending.values())
            and not any(owner is worker for owner in self._expired.values())
        )

    def _finish_drain(self, worker: _Worker) -> None:
        """Deregister a fully-idle draining worker (no requeues by
        construction: nothing was in flight). Reaping happens on a
        side thread because this often runs on the worker's own reader
        thread, which must stay free to observe the closing channel."""
        with self._lock:
            if worker.dead:
                return
            worker.dead = True
            self._n_drained += 1
        with worker.write_lock:
            try:
                worker.transport.send({"op": "shutdown"})
            except (OSError, ValueError):
                pass
            worker.transport.begin_shutdown()
        proc = worker.proc

        def _reap() -> None:
            if proc is not None:
                try:
                    proc.wait(timeout=self.shutdown_timeout_s)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            worker.transport.close()
            self._detach_arena(worker)

        threading.Thread(
            target=_reap, name=f"generation-worker-reaper-{worker.index}", daemon=True
        ).start()

    def ping(self, timeout_s: float = 10.0) -> "list[int]":
        """Round-trip a ping through every alive worker; responsive PIDs."""
        self._ensure_started()
        self.check_health()
        with self._lock:
            fleet = list(self._alive())
            entries = []
            for worker in fleet:
                pending = _Pending(request=None)
                pending.worker = worker
                request_id = self._next_id
                self._next_id += 1
                self._pending[request_id] = pending
                entries.append((worker, request_id, pending))
        responsive = []
        for worker, request_id, pending in entries:
            if not self._send(worker, {"op": "ping", "id": request_id}):
                with self._lock:
                    self._pending.pop(request_id, None)
                continue
            if pending.event.wait(timeout_s) and pending.error is None:
                responsive.append(worker.pid)
            else:
                with self._lock:
                    self._pending.pop(request_id, None)
        return responsive

    def close(self) -> None:
        """Shut the fleet down: graceful first, SIGKILL stragglers.

        In-flight requests are failed with a :class:`WorkerCrashError`
        rather than left to hang their submitters. The backend restarts
        cleanly on the next ``generate`` call, like the async backend.
        """
        with self._lock:
            if not self._started and not self._fleet:
                # Not merely "not started": a partial startup failure
                # can leave booted workers behind; tear those down too.
                self._close_listener()
                return
            self._closing = True
            fleet = list(self._fleet)
            stranded = list(self._pending.values())
            self._pending.clear()
        for pending in stranded:
            pending.resolve(error=WorkerCrashError("ProcessBackend closed"))
        for worker in fleet:
            with worker.write_lock:
                try:
                    worker.transport.send({"op": "shutdown"})
                except (OSError, ValueError):
                    pass
                worker.transport.begin_shutdown()
        deadline = time.monotonic() + self.shutdown_timeout_s
        for worker in fleet:
            if worker.proc is not None:
                try:
                    worker.proc.wait(timeout=max(0.0, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    worker.proc.kill()
                    worker.proc.wait()
            worker.transport.close()
            if worker.reader is not None:
                worker.reader.join(timeout=5)
            self._detach_arena(worker)
            if worker.log_handle is not None:
                worker.log_handle.close()
        self._close_listener()
        with self._lock:
            self._fleet = []
            self._started = False
            self._closing = False

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        acceptor, self._acceptor = self._acceptor, None
        address, self._listen_address = self._listen_address, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        if acceptor is not None:
            acceptor.join(timeout=5)
        # A unix socket leaves its filesystem node behind; sweep it (and
        # the temp directory we made for it) best-effort.
        if address is not None and address.startswith(f"{UNIX_TRANSPORT}:"):
            path = Path(parse_address(address)[1])
            try:
                path.unlink(missing_ok=True)
                if self._address_arg is None:
                    path.parent.rmdir()
            except OSError:
                pass

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------------

    def generate(
        self, requests: "Sequence[GenerationRequest]"
    ) -> "list[GenerationTrace]":
        requests = list(requests)
        if not requests:
            return []
        self._ensure_started()
        self.check_health()
        timeout = effective_timeout(self.request_timeout_s)
        entries = [self._submit(request) for request in requests]
        deadline = None if timeout is None else time.monotonic() + timeout
        results = []
        for entry in entries:
            if deadline is None:
                entry.event.wait()
            elif not entry.event.wait(max(0.0, deadline - time.monotonic())):
                self._expire_batch(entries, timeout)
                raise DeadlineExceeded(timeout)
            if entry.error is not None:
                raise entry.error
            results.append(entry.value)
        return results

    def _expire_batch(self, entries: "list[_Pending]", timeout: float) -> None:
        """Disown every unresolved entry of a deadline-exceeded batch.

        Each expired id leaves ``_pending`` (so a later worker crash
        cannot requeue it) and is remembered in ``_expired`` (so the
        late result is absorbed into the worker's bookkeeping instead of
        being counted as a duplicate). Entries whose result races the
        expiry keep their resolution — the deadline only wins ties it
        actually wins.
        """
        for entry in entries:
            with self._lock:
                if entry.event.is_set():
                    continue
                if entry.request_id is not None:
                    self._pending.pop(entry.request_id, None)
                    if entry.worker is not None and not entry.worker.dead:
                        self._expired[entry.request_id] = entry.worker
                self._n_deadline_exceeded += 1
                entry.resolve(error=DeadlineExceeded(timeout))

    def _submit(self, request) -> _Pending:
        pending = _Pending(request)
        self._dispatch(pending)
        return pending

    def _pick_worker(self, fleet: "list[_Worker]") -> _Worker:  # caller holds self._lock
        """Latency-aware scheduling: least expected completion time.

        Each worker's cost is its latency EWMA scaled by queue depth, so
        a slow (or far away) worker gets proportionally less traffic.
        Workers with no sample yet cost zero — ties (including the whole
        cold fleet) rotate round-robin so startup still spreads load.
        """
        self._rr += 1

        def cost(worker: _Worker) -> tuple:
            ewma = worker.ewma_s if worker.ewma_s is not None else 0.0
            return (ewma * (worker.inflight + 1), worker.inflight)

        best = min(cost(worker) for worker in fleet)
        candidates = [worker for worker in fleet if cost(worker) == best]
        return candidates[self._rr % len(candidates)]

    def _wait_for_join(self, deadline: float) -> bool:
        """Accept-only mode: block (unlocked) until a worker connects."""
        while time.monotonic() < deadline:
            with self._lock:
                if self._closing or self._dispatchable():
                    return True
            time.sleep(0.05)
        return False

    def _dispatch(self, pending: _Pending) -> None:
        """Assign ``pending`` to an alive worker and send it (or fail it)."""
        join_deadline = time.monotonic() + self.startup_timeout_s
        while True:
            with self._lock:
                if self._closing:
                    pending.resolve(error=WorkerCrashError("ProcessBackend closed"))
                    return
                fleet = self._dispatchable()
                if not fleet and self.workers > 0:
                    try:
                        fleet = [self._replace_worker()]
                    except WorkerCrashError as exc:
                        pending.resolve(error=exc)
                        return
                if fleet:
                    worker = self._pick_worker(fleet)
                    pending.worker = worker
                    pending.sent_at = time.monotonic()
                    worker.inflight += 1
                    request_id = self._next_id
                    self._next_id += 1
                    pending.request_id = request_id
                    self._pending[request_id] = pending
            if not fleet:
                # Accept-only supervisor (workers=0): wait for a remote
                # worker to join rather than failing instantly.
                if self._wait_for_join(join_deadline):
                    continue
                pending.resolve(
                    error=WorkerCrashError(
                        f"no workers joined {self.address} within "
                        f"{self.startup_timeout_s}s"
                    )
                )
                return
            if self._send(
                worker, {"op": "generate", "id": request_id, "request": pending.request}
            ):
                return
            # The channel broke under us: recovery requeues everything
            # that was assigned to this worker — including this request,
            # unless a racing recovery pass already moved it elsewhere.
            self._retire_worker(worker)
            with self._lock:
                if pending.worker is not worker or pending.event.is_set():
                    return  # someone else already re-dispatched or failed it

    def _send(self, worker: _Worker, message: dict) -> bool:
        with worker.write_lock:
            try:
                worker.transport.send(message)
                return True
            except (OSError, ValueError):
                return False

    def _replace_worker(self) -> _Worker:  # caller holds self._lock
        if self._n_restarts >= self.max_restarts:
            raise WorkerCrashError(
                f"workers kept dying: restart budget ({self.max_restarts}) "
                f"exhausted{self._crash_context()}"
            )
        self._n_restarts += 1
        return self._spawn_worker()

    # -- the reader threads --------------------------------------------------

    def _read_loop(self, worker: _Worker) -> None:
        while True:
            message = worker.transport.recv()
            if message is None:
                break
            worker.last_seen = time.monotonic()
            op = message.get("op")
            if op == "ready":
                # Attach (or decline) the worker's arena before ready is
                # visible: the worker keeps sending inline until the ack
                # lands, so the ordering race with generate is benign.
                self._attach_arena(worker, message.get("shm"))
                worker.ready.set()
            elif op == "heartbeat":
                with self._lock:
                    self._n_heartbeats += 1
            elif op == "draining":
                # The worker caught a SIGTERM: same graceful retirement
                # as a supervisor-side drain() call.
                self._begin_drain(worker)
            elif op in ("result", "error", "pong"):
                if op == "result" and "shm" in message:
                    try:
                        message["trace"] = self._rehydrate_shm(
                            worker, message["trace"], message["shm"]
                        )
                    # repro-lint: ignore[exception-hygiene] torn data plane == torn frame: break retires the worker and requeues
                    except Exception:
                        # A descriptor we cannot honor is a torn data
                        # plane: same recovery as a torn frame — retire
                        # the worker, requeue its in-flight work, keep
                        # exactly-once intact.
                        break
                self._resolve(message, worker)
        self._retire_worker(worker)

    def _attach_arena(self, worker: _Worker, offer) -> None:
        """Map the worker's offered arena; always answer the offer."""
        if not isinstance(offer, dict) or not offer.get("name"):
            return  # nothing offered (pre-arena worker): nothing to ack
        enabled = False
        if self.shared_memory:
            try:
                arena = shared_memory.SharedMemory(name=str(offer["name"]))
                _untrack_shm(arena)  # the worker owns the unlink
                worker.arena = arena
                enabled = True
            except (OSError, ValueError):
                # Different machine (TCP) or a vanished segment: the
                # worker keeps pickling inline. Not an error.
                worker.arena = None
        self._send(worker, {"op": "shm", "enabled": enabled})

    def _rehydrate_shm(self, worker: _Worker, trace, descriptor: dict):
        """Rebuild a stripped trace from the worker's arena, bit-exactly.

        Copies the block out (the ring slot is reused after the ack),
        then immediately returns the space with ``arena_free`` — acks
        travel in result order, matching the worker's FIFO ring.
        """
        arena = worker.arena
        if arena is None:
            raise ValueError("shm result from a worker with no attached arena")
        offset = int(descriptor["offset"])
        length = int(descriptor["length"])
        dtype = np.dtype(descriptor["dtype"])
        shape = tuple(int(n) for n in descriptor["shape"])
        if offset < 0 or offset + length > arena.size:
            raise ValueError(f"shm descriptor out of bounds: {descriptor}")
        if int(np.prod(shape, dtype=np.int64)) * dtype.itemsize != length:
            raise ValueError(f"shm descriptor shape/length mismatch: {descriptor}")
        stack = np.ndarray(shape, dtype=dtype, buffer=arena.buf, offset=offset).copy()
        self._send(worker, {"op": "arena_free", "length": length})
        steps = [
            replace(step, hidden=stack[i]) for i, step in enumerate(trace.steps)
        ]
        with self._lock:
            self._n_shm_results += 1
            self._n_shm_bytes += length
        return replace(trace, steps=steps, hidden_stack=stack)

    def _detach_arena(self, worker: _Worker) -> None:
        """Drop the supervisor-side map (the worker unlinks the name)."""
        arena, worker.arena = worker.arena, None
        if arena is not None:
            try:
                arena.close()
            except (BufferError, OSError):  # pragma: no cover - live views
                pass

    def _resolve(self, message: dict, worker: _Worker) -> None:
        finish = False
        with self._lock:
            pending = self._pending.pop(message["id"], None)
            if pending is None:
                if self._expired.pop(message["id"], None) is not None:
                    # The late answer to a deadline-expired request: its
                    # caller is long gone, but the worker's bookkeeping
                    # (queue depth, drain completion) still needs the
                    # completion. Deliberately not a duplicate.
                    worker.inflight = max(0, worker.inflight - 1)
                    finish = self._drain_ready(worker)
                elif message["op"] != "pong":
                    # A requeued request answered twice (the original
                    # worker turned out to be alive after a torn
                    # write). The first resolution won; identical by
                    # purity, dropped by design. Late pongs after a
                    # ping timeout are just slow workers, not dups.
                    self._n_duplicate_results += 1
                if finish:
                    self._finish_drain(worker)
                return
            if pending.worker is worker:
                worker.inflight = max(0, worker.inflight - 1)
            if message["op"] in ("result", "error") and pending.sent_at is not None:
                latency = time.monotonic() - pending.sent_at
                worker.ewma_s = (
                    latency
                    if worker.ewma_s is None
                    else (1 - _EWMA_ALPHA) * worker.ewma_s + _EWMA_ALPHA * latency
                )
            finish = self._drain_ready(worker)
        if message["op"] == "error":
            pending.resolve(error=WorkerError(message["error"]))
        elif message["op"] == "pong":
            pending.resolve(value=True)
        else:
            pending.resolve(value=message["trace"])
        if finish:
            self._finish_drain(worker)

    # -- crash recovery ------------------------------------------------------

    def _retire_worker(self, worker: _Worker) -> None:
        """Mark a worker dead and requeue its in-flight requests.

        Runs on reader threads, dispatchers that hit a broken channel
        and ``check_health`` — idempotent under the supervisor lock, so
        the racing paths agree on exactly one recovery pass.
        """
        with self._lock:
            if worker.dead:
                return
            worker.dead = True
            self._last_dead = worker
            closing = self._closing
            orphaned = [
                (request_id, pending)
                for request_id, pending in self._pending.items()
                if pending.worker is worker
            ]
            for request_id, _pending in orphaned:
                del self._pending[request_id]
            # Deadline-expired work dies with its worker: nobody is
            # waiting, and the id must not linger as a phantom drain
            # blocker.
            self._expired = {
                request_id: owner
                for request_id, owner in self._expired.items()
                if owner is not worker
            }
            if not closing:
                try:
                    self._replenish()
                # repro-lint: ignore[exception-hygiene] a failed replacement must not strand the orphans; dispatch still tries survivors
                except Exception:
                    # A replacement that won't boot must not strand the
                    # orphans: dispatch below still tries the survivors
                    # (and fails each request cleanly if none remain).
                    pass
        if worker.proc is not None and worker.proc.poll() is None:
            worker.proc.kill()  # broken channel but still running
        worker.transport.kill()
        self._detach_arena(worker)
        for _request_id, pending in orphaned:
            if closing or pending.request is None:  # pings don't requeue
                pending.resolve(error=WorkerCrashError("worker died"))
                continue
            # Claim the orphan before requeueing: a dispatcher whose
            # write broke may be racing this same recovery pass, and an
            # unguarded double-dispatch would run the generation twice
            # and resolve the pending twice. Whoever flips
            # pending.worker under the lock first owns the re-dispatch.
            with self._lock:
                if pending.worker is not worker or pending.event.is_set():
                    continue  # the racing dispatcher already moved it
                pending.worker = None
                # Counted at the actual re-dispatch, not per orphan: an
                # orphan that resolved (or expired) in the race window
                # was not requeued and must not read as one.
                self._n_requeued += 1
            self._dispatch(pending)

    # Pickled as configuration only, like the async backend: a clone in
    # another process spawns its own fleet (and, if the log dir was
    # defaulted, its own temp log dir) on first use.
    def __getstate__(self) -> dict:
        return {
            "llm": self.llm,
            "workers": self.workers,
            "max_restarts": self.max_restarts,
            "startup_timeout_s": self.startup_timeout_s,
            "shutdown_timeout_s": self.shutdown_timeout_s,
            "log_dir": str(self._log_dir_arg) if self._log_dir_arg is not None else None,
            "transport": self.transport,
            "address": self._address_arg,
            "heartbeat_s": self.heartbeat_s,
            "request_timeout_s": self.request_timeout_s,
            "fleet_token": self.fleet_token,
            "shared_memory": self.shared_memory,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)


if __name__ == "__main__":  # pragma: no cover - the worker entry point
    sys.exit(main_worker())
