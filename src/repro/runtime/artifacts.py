"""Run artifacts: streamed JSONL records with resumable checkpoints.

A batch run appends one JSON line per evaluated example as soon as its
outcome is known, so an interrupted sweep loses at most the in-flight
examples. Re-running against the same artifact path loads the completed
records first (tolerating a truncated final line from a hard kill) and
only evaluates what is missing.

Aggregates use the same TAR / FAR / EM accounting as the paper tables
(:func:`repro.core.results.build_report`), serialized next to the
records as ``<artifact>.summary.json``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.core.results import JointOutcome, LinkOutcome, build_report
from repro.linking.instance import SchemaLinkingInstance
from repro.runtime.cache import instance_key

__all__ = [
    "RunArtifact",
    "link_record",
    "link_outcome_from_record",
    "joint_record",
    "joint_outcome_from_record",
    "summarize_link",
    "summarize_joint",
    "strict_jsonable",
]


def strict_jsonable(obj):
    """NaN/Inf → None, recursively: summaries must be strict JSON.

    ``json.dumps`` happily emits bare ``NaN``, which downstream strict
    parsers (jq, browsers, most non-Python tooling) reject.
    """
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    if isinstance(obj, dict):
        return {k: strict_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [strict_jsonable(v) for v in obj]
    return obj


# -- record (de)serialization -------------------------------------------------


def link_record(outcome: LinkOutcome) -> dict:
    """A JSON-able record of one :class:`LinkOutcome` (sans instance).

    The runner adds the artifact-level ``"key"`` (which also encodes the
    mitigation mode); ``"instance_key"`` pins the generation input so a
    record can never be rehydrated against the wrong instance.
    """
    return {
        "instance_key": instance_key(outcome.instance),
        "instance_id": outcome.instance.instance_id,
        "predicted": list(outcome.predicted) if outcome.predicted is not None else None,
        "unassisted": list(outcome.unassisted),
        "abstained": outcome.abstained,
        "flags": outcome.flags,
        "interventions": outcome.interventions,
        "questions_asked": outcome.questions_asked,
        "swaps": [list(pair) for pair in outcome.swaps],
    }


def link_outcome_from_record(
    record: dict, instance: SchemaLinkingInstance
) -> LinkOutcome:
    """Rehydrate a :class:`LinkOutcome` against its original instance."""
    if record["instance_key"] != instance_key(instance):
        raise ValueError(
            f"record {record['instance_key']!r} does not match instance "
            f"{instance_key(instance)!r}"
        )
    predicted = record["predicted"]
    return LinkOutcome(
        instance=instance,
        predicted=tuple(predicted) if predicted is not None else None,
        unassisted=tuple(record["unassisted"]),
        abstained=bool(record["abstained"]),
        flags=int(record["flags"]),
        interventions=int(record["interventions"]),
        questions_asked=int(record["questions_asked"]),
        swaps=[tuple(pair) for pair in record["swaps"]],
    )


def joint_record(outcome: JointOutcome) -> dict:
    """A JSON-able record of one :class:`JointOutcome` (self-contained)."""
    return {
        "example_id": outcome.example_id,
        "tables": list(outcome.tables) if outcome.tables is not None else None,
        "columns": list(outcome.columns) if outcome.columns is not None else None,
        "gold_tables": list(outcome.gold_tables),
        "gold_columns": list(outcome.gold_columns),
        "abstained": outcome.abstained,
        "signalled": outcome.signalled,
        "unassisted_tables_correct": outcome.unassisted_tables_correct,
        "unassisted_columns_correct": outcome.unassisted_columns_correct,
    }


def joint_outcome_from_record(record: dict) -> JointOutcome:
    tables = record["tables"]
    columns = record["columns"]
    return JointOutcome(
        example_id=record["example_id"],
        tables=tuple(tables) if tables is not None else None,
        columns=tuple(columns) if columns is not None else None,
        gold_tables=tuple(record["gold_tables"]),
        gold_columns=tuple(record["gold_columns"]),
        abstained=bool(record["abstained"]),
        signalled=bool(record["signalled"]),
        unassisted_tables_correct=bool(record["unassisted_tables_correct"]),
        unassisted_columns_correct=bool(record["unassisted_columns_correct"]),
    )


# -- aggregate summaries ------------------------------------------------------


def summarize_link(outcomes: "list[LinkOutcome]") -> dict:
    """Aggregate EM / TAR / FAR / abstention metrics over link outcomes."""
    report = build_report(outcomes)
    return {
        "n": report.n,
        "n_answered": report.n_answered,
        "n_abstained": sum(1 for o in outcomes if o.abstained),
        "n_signalled": sum(1 for o in outcomes if o.signalled),
        "em": report.em,
        "tar": report.tar,
        "far": report.far,
        "abstention_rate": report.abstention_rate,
        "precision": report.precision,
        "recall": report.recall,
    }


def summarize_joint(outcomes: "list[JointOutcome]") -> dict:
    """Aggregate Table-6-style metrics over joint outcomes."""
    n = len(outcomes)
    if not n:
        return {
            "n": 0,
            "n_abstained": 0,
            "n_signalled": 0,
            "table_em": float("nan"),
            "column_em": float("nan"),
            "tar": float("nan"),
            "far": float("nan"),
        }
    return {
        "n": n,
        "n_abstained": sum(1 for o in outcomes if o.abstained),
        "n_signalled": sum(1 for o in outcomes if o.signalled),
        "table_em": sum(o.tables_correct for o in outcomes) / n,
        "column_em": sum(o.columns_correct for o in outcomes) / n,
        "tar": sum(1 for o in outcomes if o.signalled and not o.unassisted_correct) / n,
        "far": sum(1 for o in outcomes if o.signalled and o.unassisted_correct) / n,
    }


# -- the artifact itself ------------------------------------------------------


class RunArtifact:
    """Append-only JSONL record stream with checkpoint/resume semantics.

    Each line is one record dict carrying a unique ``"key"``. A partial
    final line (the process died mid-write) is silently dropped on load,
    and the file is truncated back to its last complete record before
    appending resumes — so a crashed run can always be continued.
    """

    def __init__(self, path: "str | Path"):
        self.path = Path(path)
        self._handle = None

    @property
    def summary_path(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".summary.json")

    def load_records(self) -> "dict[str, dict]":
        """Completed records keyed by ``record["key"]`` (resume state)."""
        if not self.path.exists():
            return {}
        records: dict[str, dict] = {}
        kept = 0
        # Binary mode: ``kept`` must be an exact byte offset (universal
        # newlines would silently shrink it on \r\n files and truncate()
        # would then cut into the last valid record).
        with self.path.open("rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    break  # truncated tail from an interrupted write
                stripped = line.strip()
                if not stripped:
                    kept += len(line)
                    continue
                try:
                    record = json.loads(stripped.decode("utf8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break  # corrupt tail; drop it and everything after
                records[record["key"]] = record
                kept += len(line)
        if kept < self.path.stat().st_size:
            with self.path.open("r+b") as handle:
                handle.truncate(kept)
        return records

    def append(self, record: dict) -> None:
        """Write one record and flush, so checkpoints survive a kill."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # newline="\n" pins the record terminator across platforms so
            # byte offsets in load_records stay exact.
            self._handle = self.path.open("a", encoding="utf8", newline="\n")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    @property
    def stats_path(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".stats.json")

    def write_summary(self, summary: dict) -> None:
        self.summary_path.parent.mkdir(parents=True, exist_ok=True)
        self.summary_path.write_text(
            json.dumps(strict_jsonable(summary), indent=2, sort_keys=True)
        )

    def write_stats(self, stats) -> None:
        """Serialize this run's cache stats next to the summary.

        A separate sidecar on purpose: the summary is deterministic
        (byte-unchanged across resumed, warm and parallel re-runs) while
        cache deltas are operational bookkeeping that varies with cache
        warmth — shard merges aggregate them into fleet-wide hit rates.
        """
        payload = {
            "generation_cache": stats.as_dict()
            if hasattr(stats, "as_dict")
            else dict(stats)
        }
        self.stats_path.parent.mkdir(parents=True, exist_ok=True)
        self.stats_path.write_text(
            json.dumps(strict_jsonable(payload), indent=2, sort_keys=True)
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunArtifact":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
