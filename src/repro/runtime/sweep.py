"""Sharded sweep orchestration over the batched evaluation runtime.

The paper's headline artifacts are dense grids of repeated evaluations —
risk–coverage sweeps over (benchmark × split × task × mode × seed)
combinations. This module makes whole grids shardable, resumable and
cheap to re-run:

* :class:`SweepSpec` expands a multi-axis matrix into a deterministic,
  ordered tuple of :class:`SweepUnit` cells;
* :class:`ShardPlan` deals units round-robin onto N shards — the same
  spec always produces the same shards, so independent machines can
  each run ``repro-sweep run --shard-index i --shard-count N`` with no
  coordination;
* :class:`SweepRunner` executes one shard: every unit runs through the
  :class:`~repro.runtime.runner.BatchRunner` against a resumable
  per-unit JSONL artifact, all units share one
  :class:`~repro.runtime.persist.PersistentGenerationCache`, and the
  shard writes a manifest splitting *deterministic* unit summaries from
  *volatile* runtime bookkeeping (resume counts, cache stats);
* :func:`merge_sweep` validates complete, non-conflicting unit coverage
  across shard manifests and writes ``sweep-summary.json`` — byte
  identical no matter how the sweep was sharded — next to
  ``sweep-stats.json`` with fleet-wide aggregated cache hit rates.

Determinism contract: a unit's summary is a pure function of the spec
(seeds, scale, axes), never of shard assignment, worker count, process
boundaries or cache warmth — that is what the merge byte-identity test
and the CI ``sweep-smoke`` job pin down. The backend configuration a
shard ships with (one :class:`~repro.runtime.service.BackendSpec`,
including the ``request_timeout_s`` deadline and ``fleet_token``
worker-auth knobs) pickles to shards unchanged and never affects unit
bytes. Operator docs: ``README.md`` and ``docs/``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, fields
from pathlib import Path

from repro.core.config import ABSTAIN, HUMAN, MITIGATION_MODES, SURROGATE
from repro.corpus.generator import CorpusScale
from repro.runtime.artifacts import strict_jsonable
from repro.runtime.cache import CacheStats, GenerationCache
from repro.runtime.pool import THREAD
from repro.runtime.service import BackendSpec, SIMULATOR

__all__ = [
    "SCALES",
    "TASKS",
    "SweepSpec",
    "SweepUnit",
    "ShardPlan",
    "SweepRunner",
    "run_sweep",
    "merge_sweep",
    "SUMMARY_NAME",
    "STATS_NAME",
]

SCALES = {
    "tiny": CorpusScale.tiny,
    "small": CorpusScale.small,
    "medium": CorpusScale.medium,
}
TASKS = ("table", "column", "joint")
BENCHMARKS = ("bird", "spider")
SPLITS = ("train", "dev", "test")

SUMMARY_NAME = "sweep-summary.json"
STATS_NAME = "sweep-stats.json"


@dataclass(frozen=True)
class SweepUnit:
    """One cell of the sweep matrix."""

    benchmark: str
    split: str
    task: str
    mode: str
    seed: int

    @property
    def unit_id(self) -> str:
        return f"{self.benchmark}-{self.split}-{self.task}-{self.mode}-s{self.seed}"


@dataclass(frozen=True)
class SweepSpec:
    """A multi-axis evaluation matrix plus the knobs that pin it down.

    ``seeds`` are RTS pipeline seeds (probe training / calibration);
    the LLM and corpus seeds are scalar because generations are shared
    across the whole sweep through one persistent cache namespace.
    """

    benchmarks: "tuple[str, ...]" = ("bird",)
    splits: "tuple[str, ...]" = ("dev",)
    tasks: "tuple[str, ...]" = ("table",)
    modes: "tuple[str, ...]" = (ABSTAIN,)
    seeds: "tuple[int, ...]" = (3,)
    corpus_seed: int = 7
    llm_seed: int = 11
    scale: str = "small"
    limit: "int | None" = None

    def __post_init__(self):
        for axis in ("benchmarks", "splits", "tasks", "modes", "seeds"):
            value = tuple(getattr(self, axis))
            if not value:
                raise ValueError(f"sweep axis {axis!r} must be non-empty")
            object.__setattr__(self, axis, value)
        _validate_axis("benchmarks", self.benchmarks, BENCHMARKS)
        _validate_axis("splits", self.splits, SPLITS)
        _validate_axis("tasks", self.tasks, TASKS)
        _validate_axis("modes", self.modes, MITIGATION_MODES)
        if self.scale not in SCALES:
            raise ValueError(f"unknown scale {self.scale!r}; pick from {tuple(SCALES)}")
        if self.limit is not None and self.limit < 1:
            raise ValueError("limit must be >= 1 (or None)")

    def units(self) -> "tuple[SweepUnit, ...]":
        """The matrix, expanded in fixed axis order (deterministic)."""
        return tuple(
            SweepUnit(benchmark=b, split=sp, task=t, mode=m, seed=s)
            for b, sp, t, m, s in itertools.product(
                self.benchmarks, self.splits, self.tasks, self.modes, self.seeds
            )
        )

    def digest(self) -> str:
        """A stable identity for the whole spec (guards shard merges)."""
        from repro.utils.rng import stable_hash

        parts = tuple(getattr(self, f.name) for f in fields(self))
        return f"{stable_hash(*parts):016x}"

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        kwargs = dict(payload)
        for axis in ("benchmarks", "splits", "tasks", "modes"):
            if axis in kwargs:
                kwargs[axis] = tuple(kwargs[axis])
        if "seeds" in kwargs:
            kwargs["seeds"] = tuple(int(s) for s in kwargs["seeds"])
        return cls(**kwargs)


def _validate_axis(name: str, values, allowed) -> None:
    unknown = [v for v in values if v not in allowed]
    if unknown:
        raise ValueError(f"unknown {name} {unknown!r}; pick from {tuple(allowed)}")


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic round-robin assignment of units to shards.

    Shard ``i`` owns ``units[i::shard_count]`` — interleaving balances
    heterogeneous axes (e.g. joint units cost more than table units)
    without any knowledge of per-unit cost.
    """

    spec: SweepSpec
    shard_count: int = 1

    def __post_init__(self):
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")

    def shard(self, shard_index: int) -> "tuple[SweepUnit, ...]":
        if not 0 <= shard_index < self.shard_count:
            raise ValueError(
                f"shard_index {shard_index} out of range for {self.shard_count} shards"
            )
        return self.spec.units()[shard_index :: self.shard_count]

    def shards(self) -> "tuple[tuple[SweepUnit, ...], ...]":
        return tuple(self.shard(i) for i in range(self.shard_count))


class SweepRunner:
    """Executes sweep shards against one shared generation service.

    One :class:`~repro.experiments.common.ExperimentContext` is built
    per RTS seed (pipelines must be refit per seed), but all contexts
    share a single :class:`~repro.runtime.service.GenerationService`
    instance — one backend (``gen_backend`` picks ``simulator``, the
    microbatching ``async`` scheduler, or ``process`` worker
    subprocesses) over one cache tier stack: with
    ``cache_dir`` set, a :class:`PersistentGenerationCache` namespaced
    by the spec's LLM identity, so separate shard processes reuse each
    other's generations through the filesystem.

    ``progress`` (a callable taking one formatted line) streams per-unit
    completion events — unit id, example counts, tier hit rates — as
    they happen; the CLI points it at stderr so no JSON artifact is
    perturbed.
    """

    def __init__(
        self,
        spec: SweepSpec,
        out_dir: "str | Path",
        cache_dir: "str | Path | None" = None,
        workers: int = 1,
        pool: str = THREAD,
        gen_backend: "str | None" = None,
        max_batch: "int | None" = None,
        max_wait_ms: "float | None" = None,
        worker_log_dir: "str | Path | None" = None,
        progress=None,
        backend_spec: "BackendSpec | None" = None,
    ):
        self.spec = spec
        self.out_dir = Path(out_dir)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.workers = workers
        self.pool = pool
        # One BackendSpec describes the generation backend; the loose
        # keyword arguments are the pre-spec surface, folded in here.
        if backend_spec is None:
            overrides = {
                "kind": gen_backend,
                "workers": max(1, workers),
                "max_batch": max_batch,
                "max_wait_ms": max_wait_ms,
                "worker_log_dir": (
                    str(worker_log_dir) if worker_log_dir is not None else None
                ),
            }
            backend_spec = BackendSpec(
                **{key: value for key, value in overrides.items() if value is not None}
            )
        elif any(
            value is not None
            for value in (gen_backend, max_batch, max_wait_ms, worker_log_dir)
        ):
            raise ValueError(
                "pass backend configuration on the backend_spec, not alongside it"
            )
        self.backend_spec = backend_spec
        self.progress = progress
        self._contexts: dict = {}
        self._cache: "GenerationCache | None" = None
        self._service = None

    @property
    def gen_backend(self) -> str:
        """Back-compat alias for ``backend_spec.kind`` (pre-spec surface)."""
        return self.backend_spec.kind

    # -- shared state --------------------------------------------------------

    @property
    def cache(self) -> "GenerationCache | None":
        """The cache every context shares (None until the first unit runs)."""
        return self._cache

    @property
    def service(self):
        """The generation service every context shares (None until built)."""
        return self._service

    def context(self, seed: int):
        if seed not in self._contexts:
            from repro.experiments.common import ExperimentContext

            ctx = ExperimentContext(
                corpus_seed=self.spec.corpus_seed,
                llm_seed=self.spec.llm_seed,
                rts_seed=seed,
                scale=SCALES[self.spec.scale](),
                workers=self.workers,
                backend=self.pool,
                cache_dir=self.cache_dir,
                spec=self.backend_spec,
                service=self._service,
            )
            if self._service is None:
                # The first context builds the service (ExperimentContext
                # is the one place that derives store namespaces from
                # the LLM identity); later contexts share the instance,
                # so the backend and every cache tier span all seeds.
                self._service = ctx.service
                self._cache = ctx.llm.cache
            self._contexts[seed] = ctx
        return self._contexts[seed]

    def close(self) -> None:
        """Release the shared service (scheduler threads, worker
        subprocesses, store handles) — safe before the first unit and
        from ``finally`` blocks; the CLIs and :func:`run_sweep` route
        every exit path (success or error) through here."""
        if self._service is not None:
            self._service.close()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def unit_artifact(self, unit: SweepUnit) -> Path:
        return self.out_dir / "units" / f"{unit.unit_id}.jsonl"

    def shard_manifest_path(self, shard_index: int, shard_count: int) -> Path:
        name = f"shard-{shard_index:04d}-of-{shard_count:04d}.json"
        return self.out_dir / "shards" / name

    # -- execution -----------------------------------------------------------

    def run_unit(self, unit: SweepUnit):
        """Run one matrix cell through the batch runner (resumable)."""
        ctx = self.context(unit.seed)
        runner = ctx.runner(unit.benchmark)
        surrogate = ctx.surrogate(unit.benchmark) if unit.mode == SURROGATE else None
        human = ctx.human() if unit.mode == HUMAN else None
        artifact = str(self.unit_artifact(unit))
        if unit.task == "joint":
            bench = ctx.benchmark(unit.benchmark)
            examples = list(bench.split(unit.split))[: self.spec.limit]
            return runner.run_joint(
                examples,
                bench,
                mode=unit.mode,
                surrogate=surrogate,
                human=human,
                artifact=artifact,
            )
        instances = ctx.instances(unit.benchmark, unit.split, unit.task)
        return runner.run_link(
            instances[: self.spec.limit],
            mode=unit.mode,
            surrogate=surrogate,
            human=human,
            artifact=artifact,
        )

    def run_shard(self, shard_index: int = 0, shard_count: int = 1) -> dict:
        """Run every unit of one shard and write its manifest.

        The manifest's ``"units"`` section is deterministic (identical
        regardless of sharding, workers or cache warmth); everything
        run-dependent lives under ``"runtime"`` and is excluded from
        the merge's byte-identity guarantee.
        """
        plan = ShardPlan(self.spec, shard_count)
        units = plan.shard(shard_index)
        summaries: dict = {}
        runtime_units: dict = {}
        for position, unit in enumerate(units):
            result = self.run_unit(unit)
            summaries[unit.unit_id] = result.summary
            delta = result.cache_delta
            runtime_units[unit.unit_id] = {
                "n_resumed": result.n_resumed,
                "n_evaluated": result.n_evaluated,
                "generation_cache": delta.as_dict() if delta is not None else None,
            }
            if self.progress is not None:
                self.progress(
                    _progress_line(position, len(units), unit, result, delta)
                )
        stats = self._cache.stats if self._cache is not None else CacheStats.zero()
        manifest = {
            "spec": self.spec.to_dict(),
            "spec_digest": self.spec.digest(),
            "shard_index": shard_index,
            "shard_count": shard_count,
            "unit_ids": [u.unit_id for u in units],
            "units": summaries,
            "runtime": {
                "units": runtime_units,
                "generation_cache": stats.as_dict(),
                "cache_namespace": getattr(self._cache, "namespace", None),
                "persistent": self.cache_dir is not None,
                "gen_backend": self.gen_backend,
            },
        }
        path = self.shard_manifest_path(shard_index, shard_count)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_canonical_json(manifest))
        return manifest


def _progress_line(
    position: int, total: int, unit: SweepUnit, result, delta: "CacheStats | None"
) -> str:
    """One human-readable completion event for progress streaming."""
    parts = [
        f"[{position + 1}/{total}]",
        unit.unit_id,
        f"examples={len(result.outcomes)}",
        f"resumed={result.n_resumed}",
        f"evaluated={result.n_evaluated}",
    ]
    if delta is not None:
        rate = delta.hit_rate
        parts.append(
            f"cache mem={delta.hits} disk={delta.disk_hits} "
            f"miss={delta.misses} hit_rate={rate:.3f}"
        )
    return " ".join(parts)


def run_sweep(
    spec: SweepSpec,
    out_dir: "str | Path",
    cache_dir: "str | Path | None" = None,
    workers: int = 1,
    pool: str = THREAD,
    gen_backend: str = SIMULATOR,
    shard_count: int = 1,
) -> dict:
    """Run every shard of a sweep in this process, then merge."""
    for shard_index in range(shard_count):
        # One runner per shard: cold contexts, exactly like separate
        # processes would run it (the persistent cache still warms up).
        with SweepRunner(
            spec,
            out_dir,
            cache_dir=cache_dir,
            workers=workers,
            pool=pool,
            gen_backend=gen_backend,
        ) as runner:
            runner.run_shard(shard_index, shard_count)
    return merge_sweep(out_dir)


def merge_sweep(out_dir: "str | Path") -> dict:
    """Merge shard manifests into the canonical sweep summary.

    Validates that every manifest describes the same spec and that the
    union of shard units covers the matrix exactly once (conflicting
    duplicate summaries are an error; identical duplicates — e.g. a
    re-run under a different shard count — are tolerated). Writes
    ``sweep-summary.json`` (deterministic, byte-identical-to-unsharded)
    and ``sweep-stats.json`` (fleet-wide cache hit rates, per-shard
    runtime bookkeeping).
    """
    out_dir = Path(out_dir)
    shard_paths = sorted((out_dir / "shards").glob("shard-*.json"))
    if not shard_paths:
        raise FileNotFoundError(f"no shard manifests under {out_dir / 'shards'}")
    manifests = {path.name: json.loads(path.read_text()) for path in shard_paths}

    digests = {m["spec_digest"] for m in manifests.values()}
    if len(digests) != 1:
        raise ValueError(f"shard manifests mix different sweep specs: {sorted(digests)}")
    spec = SweepSpec.from_dict(next(iter(manifests.values()))["spec"])
    expected = [unit.unit_id for unit in spec.units()]

    seen: dict = {}
    for name, manifest in sorted(manifests.items()):
        for unit_id, summary in manifest["units"].items():
            if unit_id in seen and seen[unit_id] != summary:
                raise ValueError(f"conflicting summaries for unit {unit_id!r}")
            seen[unit_id] = summary
    missing = [u for u in expected if u not in seen]
    extra = sorted(set(seen) - set(expected))
    if missing or extra:
        raise ValueError(
            f"shard coverage mismatch: missing={missing!r} extra={extra!r}"
        )

    summary_payload = {
        "spec": spec.to_dict(),
        "spec_digest": spec.digest(),
        "n_units": len(expected),
        "units": {unit_id: seen[unit_id] for unit_id in expected},
    }
    summary_path = out_dir / SUMMARY_NAME
    summary_path.write_text(_canonical_json(summary_payload))

    fleet = CacheStats.total(
        m["runtime"].get("generation_cache") for m in manifests.values()
    )
    stats_payload = {
        "spec_digest": spec.digest(),
        "n_shards": len(manifests),
        "generation_cache": fleet.as_dict(),
        "shards": {name: m["runtime"] for name, m in sorted(manifests.items())},
    }
    stats_path = out_dir / STATS_NAME
    stats_path.write_text(_canonical_json(stats_payload))

    return {
        "summary": summary_payload,
        "stats": stats_payload,
        "summary_path": str(summary_path),
        "stats_path": str(stats_path),
    }


def _canonical_json(payload: dict) -> str:
    """The one serialization every byte-compared artifact goes through."""
    return json.dumps(strict_jsonable(payload), indent=2, sort_keys=True) + "\n"
