"""``repro-serve``: the online serving tier over the generation runtime.

The paper frames reliable text-to-SQL as an *online, per-request*
property: a query arrives, the linker answers or abstains, and the
decision ships with its diagnostics. Everything below the HTTP surface
already exists offline — this module adds the thin, faithful front end:

* ``POST /v1/query`` — question (or example id) + schema context → SQL
  or an abstention, with probe scores, the cache tier that served the
  generation, and latency diagnostics. Every request routes through the
  same fitted :class:`~repro.core.pipeline.RTSPipeline` and
  :class:`~repro.runtime.service.GenerationService` as the offline
  drivers, and the embedded ``record`` (including its artifact key) is
  byte-identical to the line ``repro-run --artifact`` would write for
  the same example — the CI ``serve-smoke`` job compares them verbatim.
* ``GET /healthz`` — liveness plus fleet summary (alive and draining
  worker counts). Never behind auth, so probes keep working.
* ``GET /v1/stats`` — per-tier cache :class:`~repro.runtime.cache.
  CacheStats`, fixed-bucket latency histograms (per endpoint and per
  cache tier) with p50/p95/p99 summaries, and, on the process backend,
  :class:`~repro.runtime.remote.SupervisorStats` with per-worker
  scheduling state.

SLO surface: ``--request-timeout-s`` (or a per-request ``timeout_s``
body field) deadlines each generation — a request past its deadline
gets HTTP 503 with a structured retryable body (see
:func:`deadline_body`) while the supervisor disowns the in-flight work
(never duplicated). ``--auth-token`` requires ``Authorization: Bearer``
on every ``/v1/*`` route; ``--fleet-token`` protects the worker socket.
The full schemas live in ``docs/http-api.md``; the runbook in
``docs/operations.md``.

The server is stdlib ``http.server`` (``ThreadingHTTPServer``) — no new
dependencies. Concurrency is safe because ``RTSPipeline.link`` already
runs under thread pools offline, and determinism makes answer bytes
independent of request interleaving. With ``--backend process
--transport unix|tcp`` the generations execute on socket workers that
may live on other machines (``repro-worker --connect`` joins the fleet
at any time); a worker SIGKILLed mid-request delays the response but
never changes or loses it.
"""

from __future__ import annotations

import argparse
import bisect
import contextlib
import hmac
import json
import os
import sys
import threading
import time
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.config import ABSTAIN, HUMAN, MITIGATION_MODES, SURROGATE
from repro.core.pipeline import RTSPipeline
from repro.corpus.generator import CorpusScale
from repro.experiments.common import ExperimentContext
from repro.runtime.artifacts import joint_record, link_record, strict_jsonable
from repro.runtime.cache import instance_key
from repro.runtime.service import (
    FREE,
    PROCESS,
    BackendSpec,
    DeadlineExceeded,
    GenerationRequest,
    deadline_scope,
)
from repro.sqlgen.generator import SqlGenerator
from repro.sqlgen.profiles import CHESS, CODES_15B, DEEPSEEK_7B

__all__ = [
    "ApiError",
    "LatencyHistogram",
    "SERVE_TOKEN_ENV",
    "ServeApp",
    "ReproServer",
    "build_serve_parser",
    "deadline_body",
    "main_serve",
]

TASKS = ("table", "column", "joint")
BENCHMARKS = ("bird", "spider")
SCALES = ("tiny", "small")
SQL_PROFILES = {p.name: p for p in (DEEPSEEK_7B, CODES_15B, CHESS)}

# Request bodies are tiny JSON objects; anything bigger is a bad client.
MAX_BODY_BYTES = 1 << 20

# Bearer-token fallback for ``--auth-token`` (kept out of argv so the
# secret never shows in ``ps`` output or shell history).
SERVE_TOKEN_ENV = "REPRO_SERVE_TOKEN"

# Fixed histogram bucket upper bounds, in milliseconds. Fixed (not
# adaptive) so two servers — or two points in time — are directly
# comparable bucket by bucket; the open-ended overflow bucket is
# reported as "+Inf".
LATENCY_BUCKETS_MS = (
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
)


class ApiError(Exception):
    """An HTTP-mappable request failure."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def deadline_body(exc: DeadlineExceeded) -> dict:
    """The documented 503 body for a deadline-exceeded request.

    ``retryable`` is the contract: the generation was disowned, not
    lost — the same request retried later (or with a larger
    ``timeout_s``) returns the identical bytes, never a duplicate.
    """
    return {
        "error": str(exc),
        "error_type": "deadline_exceeded",
        "retryable": True,
        "timeout_s": exc.timeout_s,
    }


class LatencyHistogram:
    """Thread-safe fixed-bucket latency accounting with percentiles.

    Percentiles are estimated by linear interpolation inside the bucket
    holding the target rank (the Prometheus ``histogram_quantile``
    method), so p50/p95/p99 are stable summaries even though only
    bucket counts are stored. The overflow bucket is clamped to the
    largest finite bound — a deliberate under-estimate that keeps the
    summary finite.
    """

    def __init__(self, bounds: "tuple[float, ...]" = LATENCY_BUCKETS_MS):
        self.bounds = tuple(float(bound) for bound in bounds)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)  # guarded-by: self._lock
        self._count = 0  # guarded-by: self._lock
        self._sum_ms = 0.0  # guarded-by: self._lock

    def record(self, value_ms: float) -> None:
        value = float(value_ms)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum_ms += value

    def _percentile(self, counts: "list[int]", total: int, q: float) -> "float | None":
        if total == 0:
            return None
        target = q * total
        cumulative = 0.0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= target and count:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.bounds[-1]  # clamp the +Inf bucket
                )
                return lower + (upper - lower) * (target - previous) / count
        return self.bounds[-1]

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            sum_ms = self._sum_ms
        percentile = self._percentile
        return {
            "count": total,
            "sum_ms": round(sum_ms, 3),
            "bucket_le_ms": [*self.bounds, "+Inf"],
            "bucket_counts": counts,
            "p50_ms": _round3(percentile(counts, total, 0.50)),
            "p95_ms": _round3(percentile(counts, total, 0.95)),
            "p99_ms": _round3(percentile(counts, total, 0.99)),
        }


def _round3(value: "float | None") -> "float | None":
    return None if value is None else round(value, 3)


class ServeApp:
    """The request handlers behind the HTTP surface (transport-free).

    Holds one :class:`~repro.experiments.common.ExperimentContext` —
    benchmarks, fitted pipelines, the generation service — shared by
    every request thread, plus the per-process serving counters. All
    pipeline state is fitted once in :meth:`warm` (before the server
    accepts traffic), so request handling is read-only apart from the
    generation cache, which is already thread-safe.
    """

    def __init__(
        self,
        ctx: ExperimentContext,
        benchmarks: "tuple[str, ...]" = ("bird",),
        sql_profile=CHESS,
        sql_seed: int = 21,
        auth_token: "str | None" = None,
    ):
        self.ctx = ctx
        self.benchmarks = tuple(benchmarks)
        self.sql_generator = SqlGenerator(sql_profile, seed=sql_seed)
        self.auth_token = auth_token
        self._started_at = time.monotonic()
        self._counter_lock = threading.Lock()
        self._n_queries = 0  # guarded-by: self._counter_lock
        self._n_abstained = 0  # guarded-by: self._counter_lock
        self._n_errors = 0  # guarded-by: self._counter_lock
        self._n_deadline_exceeded = 0  # guarded-by: self._counter_lock
        self._n_unauthorized = 0  # guarded-by: self._counter_lock
        self._by_question: "dict[tuple[str, str], str]" = {}  # guarded-by: self._counter_lock
        self._latency_lock = threading.Lock()
        # Fixed keys, never rebound after __init__; the histograms do
        # their own locking — only _tier_latency grows at runtime.
        self._endpoint_latency = {
            name: LatencyHistogram() for name in ("query", "healthz", "stats")
        }
        self._tier_latency: "dict[str, LatencyHistogram]" = {}  # guarded-by: self._latency_lock

    # -- lifecycle -----------------------------------------------------------

    def warm(self) -> None:
        """Fit every pipeline and index questions before taking traffic.

        Fitting triggers the first generations, which also boots the
        backend (spawning / accepting workers on the process backend) —
        the ready line only prints once all of this has succeeded.
        Warm-up traffic is exempt from the request deadline: a tight
        ``--request-timeout-s`` is an SLO for queries, not a cap on the
        one-time fit (the backend knob is restored before serving).
        """
        backend = self.backend
        saved = getattr(backend, "request_timeout_s", None)
        if saved is not None:
            backend.request_timeout_s = None
        try:
            with deadline_scope(None):
                for name in self.benchmarks:
                    bench = self.ctx.benchmark(name)
                    self.ctx.pipeline(name)
                    for split_name in ("train", "dev", "test"):
                        for example in bench.split(split_name):
                            with self._counter_lock:
                                self._by_question.setdefault(
                                    (name, example.question), example.example_id
                                )
        finally:
            if saved is not None:
                backend.request_timeout_s = saved

    @property
    def backend(self):
        return self.ctx.service.backend

    # -- GET endpoints -------------------------------------------------------

    def health(self) -> dict:
        backend = self.backend
        pids = getattr(backend, "worker_pids", None)
        payload = {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "benchmarks": list(self.benchmarks),
            "backend": type(backend).__name__,
        }
        if callable(pids):
            payload["workers_alive"] = len(pids())
        supervisor = getattr(backend, "stats", None)
        if supervisor is not None and hasattr(supervisor, "n_draining"):
            payload["workers_draining"] = supervisor.n_draining
        return payload

    def stats(self) -> dict:
        service = self.ctx.service
        with self._counter_lock:
            requests = {
                "n_queries": self._n_queries,
                "n_abstained": self._n_abstained,
                "n_errors": self._n_errors,
                "n_deadline_exceeded": self._n_deadline_exceeded,
                "n_unauthorized": self._n_unauthorized,
            }
        with self._latency_lock:
            tier_histograms = sorted(self._tier_latency.items())
        payload = {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "requests": requests,
            "cache": service.stats.as_dict(),
            "tiers": {
                name: stats.as_dict() for name, stats in service.tier_stats.items()
            },
            "latency": {
                "endpoints": {
                    name: histogram.snapshot()
                    for name, histogram in self._endpoint_latency.items()
                },
                "tiers": {
                    name: histogram.snapshot() for name, histogram in tier_histograms
                },
            },
            "namespace": service.namespace(),
        }
        backend = self.backend
        supervisor = getattr(backend, "stats", None)
        if supervisor is not None and hasattr(supervisor, "as_dict"):
            payload["supervisor"] = supervisor.as_dict()
            payload["workers"] = backend.worker_snapshot()
            payload["worker_pids"] = backend.worker_pids()
            payload["worker_address"] = backend.address
        return payload

    # -- latency accounting --------------------------------------------------

    def observe_latency(self, endpoint: str, latency_ms: float) -> None:
        self._endpoint_latency[endpoint].record(latency_ms)

    def _observe_query(self, latency_ms: float, tier: str) -> None:
        """One measurement feeds both views: the ``query`` endpoint
        histogram and the per-cache-tier histogram. The caller returns
        the *same* number in ``diagnostics.latency_ms``, so the
        response field and the stats registry can never disagree."""
        self.observe_latency("query", latency_ms)
        with self._latency_lock:
            histogram = self._tier_latency.get(tier)
            if histogram is None:
                histogram = self._tier_latency.setdefault(tier, LatencyHistogram())
        histogram.record(latency_ms)

    # -- POST /v1/query ------------------------------------------------------

    def query(self, payload: dict) -> dict:
        t0 = time.perf_counter()
        if not isinstance(payload, dict):
            raise ApiError(400, "request body must be a JSON object")
        name = payload.get("benchmark", self.benchmarks[0])
        if name not in self.benchmarks:
            raise ApiError(
                404, f"benchmark {name!r} not served (have {list(self.benchmarks)})"
            )
        task = payload.get("task", "table")
        if task not in TASKS:
            raise ApiError(400, f"unknown task {task!r}; pick from {TASKS}")
        mode = payload.get("mode", ABSTAIN)
        if mode not in MITIGATION_MODES:
            raise ApiError(
                400, f"unknown mode {mode!r}; pick from {sorted(MITIGATION_MODES)}"
            )
        timeout_s = self._request_timeout(payload)
        example = self._resolve_example(name, payload)
        bench = self.ctx.benchmark(name)
        pipeline = self.ctx.pipeline(name)
        runner = self.ctx.runner(name)
        surrogate = self.ctx.surrogate(name) if mode == SURROGATE else None
        human = self.ctx.human() if mode == HUMAN else None
        fingerprint = runner.fingerprint(mode, surrogate, human)
        # Tier diagnostics peek *before* evaluation (stats-free): after
        # the request, the generation is in L1 by definition.
        probe_task = "table" if task == "joint" else task
        peek_instance = RTSPipeline.instance_for(example, bench, probe_task)
        cache_tier = self.ctx.service.peek_tier(
            GenerationRequest(FREE, peek_instance)
        )
        # The per-request override deadlines only this thread's
        # generations; with no override the backend's configured
        # --request-timeout-s applies on its own.
        scope = (
            deadline_scope(timeout_s)
            if timeout_s is not None
            else contextlib.nullcontext()
        )
        if task == "joint":
            with scope:
                outcome = pipeline.link_joint(
                    example, bench, mode=mode, surrogate=surrogate, human=human
                )
            record = dict(
                joint_record(outcome), key=f"{fingerprint}:{example.example_id}"
            )
            abstained = outcome.abstained
            answered_tables = outcome.tables
            answered_columns = self._group_columns(outcome.columns)
            probe = {
                "signalled": outcome.signalled,
                "table_mean_auc": pipeline.mbpp("table").mean_auc,
                "column_mean_auc": pipeline.mbpp("column").mean_auc,
            }
        else:
            instance = peek_instance
            with scope:
                outcome = pipeline.link(
                    instance, mode=mode, surrogate=surrogate, human=human
                )
            record = dict(
                link_record(outcome), key=f"{fingerprint}:{instance_key(instance)}"
            )
            abstained = outcome.abstained
            if task == "table":
                answered_tables = outcome.predicted
                answered_columns = None
            else:
                answered_columns = self._group_columns(outcome.predicted)
                answered_tables = (
                    tuple(answered_columns) if answered_columns is not None else None
                )
            mbpp = pipeline.mbpp(task)
            probe = {
                "flags": outcome.flags,
                "questions_asked": outcome.questions_asked,
                "interventions": outcome.interventions,
                "signalled": outcome.signalled,
                "mean_auc": mbpp.mean_auc,
                "layer_aucs": list(mbpp.aucs),
            }
        sql = None
        if answered_tables is not None:
            provided = bench.database(example.db_id).schema.subset(
                list(answered_tables), answered_columns
            )
            sql = self.sql_generator.generate(example, provided)
        with self._counter_lock:
            self._n_queries += 1
            if abstained:
                self._n_abstained += 1
        # Measured once, recorded once, returned once: the histogram
        # entry and the per-response field are the same number.
        latency_ms = round((time.perf_counter() - t0) * 1000.0, 3)
        self._observe_query(latency_ms, cache_tier if cache_tier else "compute")
        return {
            "benchmark": name,
            "example_id": example.example_id,
            "question": example.question,
            "task": task,
            "mode": mode,
            "abstained": abstained,
            "sql": sql,
            "record": record,
            "probe": probe,
            "diagnostics": {
                "cache_tier": cache_tier,
                "latency_ms": latency_ms,
                "namespace": self.ctx.service.namespace(),
            },
        }

    @staticmethod
    def _request_timeout(payload: dict) -> "float | None":
        value = payload.get("timeout_s")
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)) or not value > 0:
            raise ApiError(400, "timeout_s must be a positive number of seconds")
        return float(value)

    def _resolve_example(self, name: str, payload: dict):
        bench = self.ctx.benchmark(name)
        example_id = payload.get("example_id")
        if example_id is None:
            question = payload.get("question")
            if question is None:
                raise ApiError(400, "pass an example_id or a question")
            with self._counter_lock:
                example_id = self._by_question.get((name, question))
            if example_id is None:
                raise ApiError(404, f"no {name} example asks {question!r}")
        for split_name in ("train", "dev", "test"):
            for example in bench.split(split_name):
                if example.example_id == example_id:
                    return example
        raise ApiError(404, f"no {name} example with id {example_id!r}")

    @staticmethod
    def _group_columns(items) -> "dict[str, list[str]] | None":
        """Qualified ``table.column`` items → the subset() columns map."""
        if items is None:
            return None
        grouped: "dict[str, list[str]]" = {}
        for item in items:
            table, _, column = item.partition(".")
            grouped.setdefault(table, []).append(column)
        return grouped

    def count_error(self) -> None:
        with self._counter_lock:
            self._n_errors += 1

    def count_deadline(self) -> None:
        with self._counter_lock:
            self._n_errors += 1
            self._n_deadline_exceeded += 1

    def count_unauthorized(self) -> None:
        with self._counter_lock:
            self._n_unauthorized += 1

    def authorized(self, header: "str | None") -> bool:
        """Whether an ``Authorization`` header clears the bearer gate."""
        if self.auth_token is None:
            return True
        scheme, _, presented = (header or "").partition(" ")
        return scheme.lower() == "bearer" and hmac.compare_digest(
            presented.strip().encode("utf-8"), self.auth_token.encode("utf-8")
        )


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServeApp:
        return self.server.app

    def log_message(self, format: str, *args) -> None:
        print(
            f"repro-serve: {self.address_string()} {format % args}",
            file=sys.stderr,
            flush=True,
        )

    def _send_json(
        self, status: int, payload: dict, headers: "dict[str, str] | None" = None
    ) -> None:
        body = json.dumps(strict_jsonable(payload), sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _require_auth(self) -> bool:
        """Gate ``/v1/*`` behind the bearer token; 401 and False if not
        cleared. ``/healthz`` never calls this: liveness probes must
        keep working without credentials."""
        if self.app.authorized(self.headers.get("Authorization")):
            return True
        self.app.count_unauthorized()
        self._send_json(
            401,
            {
                "error": "missing or invalid bearer token",
                "error_type": "unauthorized",
            },
            headers={"WWW-Authenticate": "Bearer"},
        )
        return False

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        t0 = time.perf_counter()
        if self.path == "/healthz":
            self._send_json(200, self.app.health())
            self.app.observe_latency("healthz", (time.perf_counter() - t0) * 1000.0)
        elif self.path == "/v1/stats":
            if not self._require_auth():
                return
            self._send_json(200, self.app.stats())
            self.app.observe_latency("stats", (time.perf_counter() - t0) * 1000.0)
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/v1/query":
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        if not self._require_auth():
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            if not 0 < length <= MAX_BODY_BYTES:
                raise ApiError(400, "request body required (JSON, <= 1 MiB)")
            try:
                payload = json.loads(self.rfile.read(length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ApiError(400, f"malformed JSON body: {exc}") from exc
            self._send_json(200, self.app.query(payload))
        except ApiError as exc:
            self.app.count_error()
            self._send_json(exc.status, {"error": str(exc)})
        except DeadlineExceeded as exc:
            # 503 + retryable: the work was disowned upstream (never
            # duplicated); the client may retry, ideally with backoff.
            self.app.count_deadline()
            self._send_json(503, deadline_body(exc), headers={"Retry-After": "1"})
        except Exception:
            self.app.count_error()
            traceback.print_exc(file=sys.stderr)
            self._send_json(500, {"error": "internal error (see server log)"})


class ReproServer(ThreadingHTTPServer):
    """One serving process: threaded HTTP over a shared :class:`ServeApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: "tuple[str, int]", app: ServeApp):
        super().__init__(address, _Handler)
        self.app = app


SERVE_EPILOG = """\
examples:
  # serve bird on an ephemeral port, generations on two unix-socket
  # workers (the ready line on stdout reports the bound port)
  repro-serve --benchmark bird --scale tiny --backend process \\
      --transport unix --gen-workers 2 --cache-dir out/gen

  # accept-only supervisor over TCP: workers join from other machines
  repro-serve --backend process --transport tcp \\
      --address tcp:0.0.0.0:7431 --gen-workers 0 &
  repro-worker --connect tcp:10.0.0.5:7431   # on each worker machine

  # query it
  curl -s localhost:8000/v1/query -d '{"benchmark": "bird",
      "example_id": "bird-dev-0", "task": "table", "mode": "abstain"}'
  curl -s localhost:8000/healthz
  curl -s localhost:8000/v1/stats

Answers are byte-identical to the offline drivers: the "record" field
of a /v1/query response equals the line repro-run --artifact writes for
the same (benchmark, example, task, mode) — same key, same bytes.
"""


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Online text-to-SQL serving with adaptive abstention, "
        "over the shared generation runtime.",
        epilog=SERVE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--benchmark",
        nargs="+",
        choices=BENCHMARKS,
        default=["bird"],
        help="benchmarks to fit and serve",
    )
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default="small",
        help="synthetic corpus scale (tiny is the test/CI size)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="default worker count for the generation backend "
        "(--gen-workers overrides)",
    )
    BackendSpec.add_arguments(parser, defaults=BackendSpec(workers=2))
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent generation cache shared with the offline drivers "
        "(default: $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--sql-profile",
        choices=sorted(SQL_PROFILES),
        default=CHESS.name,
        help="downstream text-to-SQL generator profile",
    )
    parser.add_argument("--sql-seed", type=int, default=21)
    parser.add_argument("--corpus-seed", type=int, default=7)
    parser.add_argument("--llm-seed", type=int, default=11)
    parser.add_argument("--rts-seed", type=int, default=3)
    parser.add_argument(
        "--auth-token",
        default=None,
        help="require 'Authorization: Bearer <token>' on /v1/* routes "
        "(default: $REPRO_SERVE_TOKEN; /healthz always stays open)",
    )
    return parser


def main_serve(argv: "list[str] | None" = None) -> int:
    args = build_serve_parser().parse_args(argv)
    spec = BackendSpec.from_args(args, workers=args.workers)
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    scale = CorpusScale.tiny() if args.scale == "tiny" else CorpusScale.small()
    ctx = ExperimentContext(
        corpus_seed=args.corpus_seed,
        llm_seed=args.llm_seed,
        rts_seed=args.rts_seed,
        scale=scale,
        workers=max(1, args.workers),
        cache_dir=cache_dir,
        spec=spec,
    )
    app = ServeApp(
        ctx,
        benchmarks=tuple(args.benchmark),
        sql_profile=SQL_PROFILES[args.sql_profile],
        sql_seed=args.sql_seed,
        auth_token=args.auth_token or os.environ.get(SERVE_TOKEN_ENV) or None,
    )
    try:
        app.warm()
        server = ReproServer((args.host, args.port), app)
        backend = app.backend
        ready = {
            "event": "ready",
            "host": server.server_address[0],
            "port": server.server_address[1],
            "benchmarks": list(app.benchmarks),
            "backend": spec.kind,
            "transport": spec.transport if spec.kind == PROCESS else None,
            "worker_address": getattr(backend, "address", None),
            "worker_pids": (
                backend.worker_pids() if hasattr(backend, "worker_pids") else []
            ),
        }
        print(json.dumps(strict_jsonable(ready), sort_keys=True), flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0
    finally:
        ctx.close()


if __name__ == "__main__":  # pragma: no cover - the serve entry point
    sys.exit(main_serve())
