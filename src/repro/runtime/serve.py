"""``repro-serve``: the online serving tier over the generation runtime.

The paper frames reliable text-to-SQL as an *online, per-request*
property: a query arrives, the linker answers or abstains, and the
decision ships with its diagnostics. Everything below the HTTP surface
already exists offline — this module adds the thin, faithful front end:

* ``POST /v1/query`` — question (or example id) + schema context → SQL
  or an abstention, with probe scores, the cache tier that served the
  generation, and latency diagnostics. Every request routes through the
  same fitted :class:`~repro.core.pipeline.RTSPipeline` and
  :class:`~repro.runtime.service.GenerationService` as the offline
  drivers, and the embedded ``record`` (including its artifact key) is
  byte-identical to the line ``repro-run --artifact`` would write for
  the same example — the CI ``serve-smoke`` job compares them verbatim.
* ``GET /healthz`` — liveness plus fleet summary.
* ``GET /v1/stats`` — per-tier cache :class:`~repro.runtime.cache.
  CacheStats`, and, on the process backend,
  :class:`~repro.runtime.remote.SupervisorStats` with per-worker
  scheduling state.

The server is stdlib ``http.server`` (``ThreadingHTTPServer``) — no new
dependencies. Concurrency is safe because ``RTSPipeline.link`` already
runs under thread pools offline, and determinism makes answer bytes
independent of request interleaving. With ``--backend process
--transport unix|tcp`` the generations execute on socket workers that
may live on other machines (``repro-worker --connect`` joins the fleet
at any time); a worker SIGKILLed mid-request delays the response but
never changes or loses it.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.config import ABSTAIN, HUMAN, MITIGATION_MODES, SURROGATE
from repro.core.pipeline import RTSPipeline
from repro.corpus.generator import CorpusScale
from repro.experiments.common import ExperimentContext
from repro.runtime.artifacts import joint_record, link_record, strict_jsonable
from repro.runtime.cache import instance_key
from repro.runtime.service import FREE, PROCESS, BackendSpec, GenerationRequest
from repro.sqlgen.generator import SqlGenerator
from repro.sqlgen.profiles import CHESS, CODES_15B, DEEPSEEK_7B

__all__ = [
    "ApiError",
    "ServeApp",
    "ReproServer",
    "build_serve_parser",
    "main_serve",
]

TASKS = ("table", "column", "joint")
BENCHMARKS = ("bird", "spider")
SCALES = ("tiny", "small")
SQL_PROFILES = {p.name: p for p in (DEEPSEEK_7B, CODES_15B, CHESS)}

# Request bodies are tiny JSON objects; anything bigger is a bad client.
MAX_BODY_BYTES = 1 << 20


class ApiError(Exception):
    """An HTTP-mappable request failure."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServeApp:
    """The request handlers behind the HTTP surface (transport-free).

    Holds one :class:`~repro.experiments.common.ExperimentContext` —
    benchmarks, fitted pipelines, the generation service — shared by
    every request thread, plus the per-process serving counters. All
    pipeline state is fitted once in :meth:`warm` (before the server
    accepts traffic), so request handling is read-only apart from the
    generation cache, which is already thread-safe.
    """

    def __init__(
        self,
        ctx: ExperimentContext,
        benchmarks: "tuple[str, ...]" = ("bird",),
        sql_profile=CHESS,
        sql_seed: int = 21,
    ):
        self.ctx = ctx
        self.benchmarks = tuple(benchmarks)
        self.sql_generator = SqlGenerator(sql_profile, seed=sql_seed)
        self._started_at = time.monotonic()
        self._counter_lock = threading.Lock()
        self._n_queries = 0
        self._n_abstained = 0
        self._n_errors = 0
        self._by_question: "dict[tuple[str, str], str]" = {}

    # -- lifecycle -----------------------------------------------------------

    def warm(self) -> None:
        """Fit every pipeline and index questions before taking traffic.

        Fitting triggers the first generations, which also boots the
        backend (spawning / accepting workers on the process backend) —
        the ready line only prints once all of this has succeeded.
        """
        for name in self.benchmarks:
            bench = self.ctx.benchmark(name)
            self.ctx.pipeline(name)
            for split_name in ("train", "dev", "test"):
                for example in bench.split(split_name):
                    self._by_question.setdefault(
                        (name, example.question), example.example_id
                    )

    @property
    def backend(self):
        return self.ctx.service.backend

    # -- GET endpoints -------------------------------------------------------

    def health(self) -> dict:
        pids = getattr(self.backend, "worker_pids", None)
        payload = {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "benchmarks": list(self.benchmarks),
            "backend": type(self.backend).__name__,
        }
        if callable(pids):
            payload["workers_alive"] = len(pids())
        return payload

    def stats(self) -> dict:
        service = self.ctx.service
        with self._counter_lock:
            requests = {
                "n_queries": self._n_queries,
                "n_abstained": self._n_abstained,
                "n_errors": self._n_errors,
            }
        payload = {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "requests": requests,
            "cache": service.stats.as_dict(),
            "tiers": {
                name: stats.as_dict() for name, stats in service.tier_stats.items()
            },
            "namespace": service.namespace(),
        }
        backend = self.backend
        supervisor = getattr(backend, "stats", None)
        if supervisor is not None and hasattr(supervisor, "as_dict"):
            payload["supervisor"] = supervisor.as_dict()
            payload["workers"] = backend.worker_snapshot()
            payload["worker_pids"] = backend.worker_pids()
            payload["worker_address"] = backend.address
        return payload

    # -- POST /v1/query ------------------------------------------------------

    def query(self, payload: dict) -> dict:
        t0 = time.perf_counter()
        if not isinstance(payload, dict):
            raise ApiError(400, "request body must be a JSON object")
        name = payload.get("benchmark", self.benchmarks[0])
        if name not in self.benchmarks:
            raise ApiError(
                404, f"benchmark {name!r} not served (have {list(self.benchmarks)})"
            )
        task = payload.get("task", "table")
        if task not in TASKS:
            raise ApiError(400, f"unknown task {task!r}; pick from {TASKS}")
        mode = payload.get("mode", ABSTAIN)
        if mode not in MITIGATION_MODES:
            raise ApiError(
                400, f"unknown mode {mode!r}; pick from {sorted(MITIGATION_MODES)}"
            )
        example = self._resolve_example(name, payload)
        bench = self.ctx.benchmark(name)
        pipeline = self.ctx.pipeline(name)
        runner = self.ctx.runner(name)
        surrogate = self.ctx.surrogate(name) if mode == SURROGATE else None
        human = self.ctx.human() if mode == HUMAN else None
        fingerprint = runner.fingerprint(mode, surrogate, human)
        # Tier diagnostics peek *before* evaluation (stats-free): after
        # the request, the generation is in L1 by definition.
        probe_task = "table" if task == "joint" else task
        peek_instance = RTSPipeline.instance_for(example, bench, probe_task)
        cache_tier = self.ctx.service.peek_tier(
            GenerationRequest(FREE, peek_instance)
        )
        if task == "joint":
            outcome = pipeline.link_joint(
                example, bench, mode=mode, surrogate=surrogate, human=human
            )
            record = dict(
                joint_record(outcome), key=f"{fingerprint}:{example.example_id}"
            )
            abstained = outcome.abstained
            answered_tables = outcome.tables
            answered_columns = self._group_columns(outcome.columns)
            probe = {
                "signalled": outcome.signalled,
                "table_mean_auc": pipeline.mbpp("table").mean_auc,
                "column_mean_auc": pipeline.mbpp("column").mean_auc,
            }
        else:
            instance = peek_instance
            outcome = pipeline.link(
                instance, mode=mode, surrogate=surrogate, human=human
            )
            record = dict(
                link_record(outcome), key=f"{fingerprint}:{instance_key(instance)}"
            )
            abstained = outcome.abstained
            if task == "table":
                answered_tables = outcome.predicted
                answered_columns = None
            else:
                answered_columns = self._group_columns(outcome.predicted)
                answered_tables = (
                    tuple(answered_columns) if answered_columns is not None else None
                )
            mbpp = pipeline.mbpp(task)
            probe = {
                "flags": outcome.flags,
                "questions_asked": outcome.questions_asked,
                "interventions": outcome.interventions,
                "signalled": outcome.signalled,
                "mean_auc": mbpp.mean_auc,
                "layer_aucs": list(mbpp.aucs),
            }
        sql = None
        if answered_tables is not None:
            provided = bench.database(example.db_id).schema.subset(
                list(answered_tables), answered_columns
            )
            sql = self.sql_generator.generate(example, provided)
        with self._counter_lock:
            self._n_queries += 1
            if abstained:
                self._n_abstained += 1
        return {
            "benchmark": name,
            "example_id": example.example_id,
            "question": example.question,
            "task": task,
            "mode": mode,
            "abstained": abstained,
            "sql": sql,
            "record": record,
            "probe": probe,
            "diagnostics": {
                "cache_tier": cache_tier,
                "latency_ms": round((time.perf_counter() - t0) * 1000.0, 3),
                "namespace": self.ctx.service.namespace(),
            },
        }

    def _resolve_example(self, name: str, payload: dict):
        bench = self.ctx.benchmark(name)
        example_id = payload.get("example_id")
        if example_id is None:
            question = payload.get("question")
            if question is None:
                raise ApiError(400, "pass an example_id or a question")
            example_id = self._by_question.get((name, question))
            if example_id is None:
                raise ApiError(404, f"no {name} example asks {question!r}")
        for split_name in ("train", "dev", "test"):
            for example in bench.split(split_name):
                if example.example_id == example_id:
                    return example
        raise ApiError(404, f"no {name} example with id {example_id!r}")

    @staticmethod
    def _group_columns(items) -> "dict[str, list[str]] | None":
        """Qualified ``table.column`` items → the subset() columns map."""
        if items is None:
            return None
        grouped: "dict[str, list[str]]" = {}
        for item in items:
            table, _, column = item.partition(".")
            grouped.setdefault(table, []).append(column)
        return grouped

    def count_error(self) -> None:
        with self._counter_lock:
            self._n_errors += 1


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServeApp:
        return self.server.app

    def log_message(self, format: str, *args) -> None:
        print(
            f"repro-serve: {self.address_string()} {format % args}",
            file=sys.stderr,
            flush=True,
        )

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(strict_jsonable(payload), sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(200, self.app.health())
        elif self.path == "/v1/stats":
            self._send_json(200, self.app.stats())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/v1/query":
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            if not 0 < length <= MAX_BODY_BYTES:
                raise ApiError(400, "request body required (JSON, <= 1 MiB)")
            try:
                payload = json.loads(self.rfile.read(length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ApiError(400, f"malformed JSON body: {exc}") from exc
            self._send_json(200, self.app.query(payload))
        except ApiError as exc:
            self.app.count_error()
            self._send_json(exc.status, {"error": str(exc)})
        except Exception:
            self.app.count_error()
            traceback.print_exc(file=sys.stderr)
            self._send_json(500, {"error": "internal error (see server log)"})


class ReproServer(ThreadingHTTPServer):
    """One serving process: threaded HTTP over a shared :class:`ServeApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: "tuple[str, int]", app: ServeApp):
        super().__init__(address, _Handler)
        self.app = app


SERVE_EPILOG = """\
examples:
  # serve bird on an ephemeral port, generations on two unix-socket
  # workers (the ready line on stdout reports the bound port)
  repro-serve --benchmark bird --scale tiny --backend process \\
      --transport unix --gen-workers 2 --cache-dir out/gen

  # accept-only supervisor over TCP: workers join from other machines
  repro-serve --backend process --transport tcp \\
      --address tcp:0.0.0.0:7431 --gen-workers 0 &
  repro-worker --connect tcp:10.0.0.5:7431   # on each worker machine

  # query it
  curl -s localhost:8000/v1/query -d '{"benchmark": "bird",
      "example_id": "bird-dev-0", "task": "table", "mode": "abstain"}'
  curl -s localhost:8000/healthz
  curl -s localhost:8000/v1/stats

Answers are byte-identical to the offline drivers: the "record" field
of a /v1/query response equals the line repro-run --artifact writes for
the same (benchmark, example, task, mode) — same key, same bytes.
"""


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Online text-to-SQL serving with adaptive abstention, "
        "over the shared generation runtime.",
        epilog=SERVE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--benchmark",
        nargs="+",
        choices=BENCHMARKS,
        default=["bird"],
        help="benchmarks to fit and serve",
    )
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default="small",
        help="synthetic corpus scale (tiny is the test/CI size)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="default worker count for the generation backend "
        "(--gen-workers overrides)",
    )
    BackendSpec.add_arguments(parser, defaults=BackendSpec(workers=2))
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent generation cache shared with the offline drivers "
        "(default: $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--sql-profile",
        choices=sorted(SQL_PROFILES),
        default=CHESS.name,
        help="downstream text-to-SQL generator profile",
    )
    parser.add_argument("--sql-seed", type=int, default=21)
    parser.add_argument("--corpus-seed", type=int, default=7)
    parser.add_argument("--llm-seed", type=int, default=11)
    parser.add_argument("--rts-seed", type=int, default=3)
    return parser


def main_serve(argv: "list[str] | None" = None) -> int:
    import os

    args = build_serve_parser().parse_args(argv)
    spec = BackendSpec.from_args(args, workers=args.workers)
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None
    scale = CorpusScale.tiny() if args.scale == "tiny" else CorpusScale.small()
    ctx = ExperimentContext(
        corpus_seed=args.corpus_seed,
        llm_seed=args.llm_seed,
        rts_seed=args.rts_seed,
        scale=scale,
        workers=max(1, args.workers),
        cache_dir=cache_dir,
        spec=spec,
    )
    app = ServeApp(
        ctx,
        benchmarks=tuple(args.benchmark),
        sql_profile=SQL_PROFILES[args.sql_profile],
        sql_seed=args.sql_seed,
    )
    try:
        app.warm()
        server = ReproServer((args.host, args.port), app)
        backend = app.backend
        ready = {
            "event": "ready",
            "host": server.server_address[0],
            "port": server.server_address[1],
            "benchmarks": list(app.benchmarks),
            "backend": spec.kind,
            "transport": spec.transport if spec.kind == PROCESS else None,
            "worker_address": getattr(backend, "address", None),
            "worker_pids": (
                backend.worker_pids() if hasattr(backend, "worker_pids") else []
            ),
        }
        print(json.dumps(strict_jsonable(ready), sort_keys=True), flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0
    finally:
        ctx.close()


if __name__ == "__main__":  # pragma: no cover - the serve entry point
    sys.exit(main_serve())
