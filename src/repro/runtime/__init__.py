"""Batched evaluation runtime.

The experiment tables and figures all reduce to fanning a fitted
:class:`~repro.core.pipeline.RTSPipeline` out over a benchmark split.
This package provides the shared substrate for doing that at scale:

* :mod:`repro.runtime.pool` — one `WorkerPool` abstraction over serial,
  thread-pool and process-pool execution with order-preserving maps;
* :mod:`repro.runtime.cache` — a keyed generation cache so repeated
  ``llm.generate`` / ``teacher_forced_trace`` calls (unassisted
  baselines, joint passes, ablation sweeps) are computed once;
* :mod:`repro.runtime.artifacts` — JSONL run artifacts with resumable
  checkpoints and aggregate TAR/FAR/abstention summaries;
* :mod:`repro.runtime.runner` — the `BatchRunner` that ties them
  together;
* :mod:`repro.runtime.service` — the backend-agnostic
  `GenerationService`: a `GenerationBackend` protocol with
  `SimulatorBackend` (direct simulator calls) and `AsyncBatchedBackend`
  (asyncio microbatch coalescing with backpressure) implementations,
  composed with the tiered cache (L1 memory → L2 segments → L3 SQLite
  index) that every consumer layer now routes generations through;
* :mod:`repro.runtime.persist` — the cross-process
  `PersistentGenerationCache` (content-addressed JSONL segment store,
  safe concurrent writers, compacted SQLite index tier) that lets
  separate shards and re-runs reuse generations through the filesystem;
* :mod:`repro.runtime.sweep` — `SweepSpec` / `ShardPlan` /
  `SweepRunner` / `merge_sweep`: deterministic sharding of multi-axis
  evaluation matrices with byte-identical merged summaries;
* :mod:`repro.runtime.cli` — the ``repro-run``, ``repro-sweep`` and
  ``repro-cache`` console entry points.

Every path is deterministic: a batch run with ``workers=4`` produces
byte-identical aggregate metrics to the serial fallback, a sweep split
into N shards merges byte-identically to the unsharded run, and the
``simulator`` and ``async`` generation backends produce byte-identical
summaries, because all randomness in the library is derived from named
streams, never from execution order, batching or process boundaries.
"""

from repro.runtime.artifacts import (
    RunArtifact,
    link_record,
    summarize_joint,
    summarize_link,
)
from repro.runtime.cache import CacheStats, CachingLLM, GenerationCache, instance_key
from repro.runtime.persist import (
    PersistentGenerationCache,
    SqliteSegmentIndex,
    generation_namespace,
    store_stats,
)
from repro.runtime.pool import BACKENDS, PROCESS, SERIAL, THREAD, WorkerPool
from repro.runtime.runner import BatchResult, BatchRunner
from repro.runtime.service import (
    ASYNC,
    GEN_BACKENDS,
    SIMULATOR,
    AsyncBatchedBackend,
    GenerationBackend,
    GenerationRequest,
    GenerationService,
    SimulatorBackend,
)
from repro.runtime.sweep import (
    ShardPlan,
    SweepRunner,
    SweepSpec,
    SweepUnit,
    merge_sweep,
    run_sweep,
)

__all__ = [
    "ASYNC",
    "BACKENDS",
    "BatchResult",
    "BatchRunner",
    "CacheStats",
    "CachingLLM",
    "GEN_BACKENDS",
    "GenerationBackend",
    "GenerationCache",
    "GenerationRequest",
    "GenerationService",
    "AsyncBatchedBackend",
    "PROCESS",
    "PersistentGenerationCache",
    "RunArtifact",
    "SERIAL",
    "SIMULATOR",
    "ShardPlan",
    "SimulatorBackend",
    "SqliteSegmentIndex",
    "SweepRunner",
    "SweepSpec",
    "SweepUnit",
    "THREAD",
    "WorkerPool",
    "generation_namespace",
    "instance_key",
    "link_record",
    "merge_sweep",
    "run_sweep",
    "store_stats",
    "summarize_joint",
    "summarize_link",
]
