"""Batched evaluation runtime.

The experiment tables and figures all reduce to fanning a fitted
:class:`~repro.core.pipeline.RTSPipeline` out over a benchmark split.
This package provides the shared substrate for doing that at scale:

* :mod:`repro.runtime.pool` — one `WorkerPool` abstraction over serial,
  thread-pool and process-pool execution with order-preserving maps;
* :mod:`repro.runtime.cache` — a keyed generation cache so repeated
  ``llm.generate`` / ``teacher_forced_trace`` calls (unassisted
  baselines, joint passes, ablation sweeps) are computed once;
* :mod:`repro.runtime.artifacts` — JSONL run artifacts with resumable
  checkpoints and aggregate TAR/FAR/abstention summaries;
* :mod:`repro.runtime.runner` — the `BatchRunner` that ties them
  together;
* :mod:`repro.runtime.service` — the backend-agnostic
  `GenerationService`: a `GenerationBackend` protocol with
  `SimulatorBackend` (direct simulator calls) and `AsyncBatchedBackend`
  (asyncio microbatch coalescing with backpressure) implementations,
  composed with the tiered cache (L1 memory → L2 segments → L3 SQLite
  index) that every consumer layer now routes generations through;
* :mod:`repro.runtime.persist` — the cross-process
  `PersistentGenerationCache` (content-addressed JSONL segment store,
  safe concurrent writers, compacted SQLite index tier) that lets
  separate shards and re-runs reuse generations through the filesystem;
* :mod:`repro.runtime.sweep` — `SweepSpec` / `ShardPlan` /
  `SweepRunner` / `merge_sweep`: deterministic sharding of multi-axis
  evaluation matrices with byte-identical merged summaries;
* :mod:`repro.runtime.remote` — the process/socket worker substrate:
  a `Transport` seam (stdio pipes, unix-domain and TCP sockets) under
  the `ProcessBackend` supervisor, with hello/heartbeat registration,
  EWMA latency-aware scheduling, restart-on-crash and in-flight
  requeue; ``repro-worker --connect`` joins a fleet from any machine;
* :mod:`repro.runtime.serve` — the ``repro-serve`` online tier:
  ``POST /v1/query`` answers (or abstains) through the same service,
  byte-identically to the offline drivers;
* :mod:`repro.runtime.cli` — the ``repro-run``, ``repro-sweep`` and
  ``repro-cache`` console entry points, sharing one
  :class:`~repro.runtime.service.BackendSpec` flag vocabulary with
  ``repro-serve`` and ``repro-worker``.

The stable public API of this package is its ``__all__``: the service
layer (`GenerationService`, `BackendSpec`, the backends), the stores,
the runner/sweep orchestration and the record helpers. Old keyword
spellings (``GenerationService.build(backend=...)``) keep working for
one release behind deprecation shims.

Every path is deterministic: a batch run with ``workers=4`` produces
byte-identical aggregate metrics to the serial fallback, a sweep split
into N shards merges byte-identically to the unsharded run, and the
``simulator`` and ``async`` generation backends produce byte-identical
summaries, because all randomness in the library is derived from named
streams, never from execution order, batching or process boundaries.
"""

from repro.runtime.artifacts import (
    RunArtifact,
    link_record,
    summarize_joint,
    summarize_link,
)
from repro.runtime.cache import CacheStats, CachingLLM, GenerationCache, instance_key
from repro.runtime.persist import (
    PersistentGenerationCache,
    SqliteSegmentIndex,
    generation_namespace,
    store_stats,
)
from repro.runtime.pool import BACKENDS, PROCESS, SERIAL, THREAD, WorkerPool
from repro.runtime.remote import ProcessBackend, SupervisorStats, WorkerCrashError
from repro.runtime.runner import BatchResult, BatchRunner
from repro.runtime.service import (
    ASYNC,
    GEN_BACKENDS,
    PIPE_TRANSPORT,
    SIMULATOR,
    TCP_TRANSPORT,
    TRANSPORTS,
    UNIX_TRANSPORT,
    AsyncBatchedBackend,
    BackendSpec,
    GenerationBackend,
    GenerationRequest,
    GenerationService,
    SimulatorBackend,
)
from repro.runtime.sweep import (
    ShardPlan,
    SweepRunner,
    SweepSpec,
    SweepUnit,
    merge_sweep,
    run_sweep,
)

__all__ = [
    "ASYNC",
    "BACKENDS",
    "BackendSpec",
    "BatchResult",
    "BatchRunner",
    "CacheStats",
    "CachingLLM",
    "GEN_BACKENDS",
    "GenerationBackend",
    "GenerationCache",
    "GenerationRequest",
    "GenerationService",
    "AsyncBatchedBackend",
    "PIPE_TRANSPORT",
    "PROCESS",
    "PersistentGenerationCache",
    "ProcessBackend",
    "RunArtifact",
    "SERIAL",
    "SIMULATOR",
    "ShardPlan",
    "SimulatorBackend",
    "SqliteSegmentIndex",
    "SupervisorStats",
    "SweepRunner",
    "SweepSpec",
    "SweepUnit",
    "TCP_TRANSPORT",
    "THREAD",
    "TRANSPORTS",
    "UNIX_TRANSPORT",
    "WorkerCrashError",
    "WorkerPool",
    "generation_namespace",
    "instance_key",
    "link_record",
    "merge_sweep",
    "run_sweep",
    "store_stats",
    "summarize_joint",
    "summarize_link",
]
