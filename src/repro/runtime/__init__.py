"""Batched evaluation runtime.

The experiment tables and figures all reduce to fanning a fitted
:class:`~repro.core.pipeline.RTSPipeline` out over a benchmark split.
This package provides the shared substrate for doing that at scale:

* :mod:`repro.runtime.pool` — one `WorkerPool` abstraction over serial,
  thread-pool and process-pool execution with order-preserving maps;
* :mod:`repro.runtime.cache` — a keyed generation cache so repeated
  ``llm.generate`` / ``teacher_forced_trace`` calls (unassisted
  baselines, joint passes, ablation sweeps) are computed once;
* :mod:`repro.runtime.artifacts` — JSONL run artifacts with resumable
  checkpoints and aggregate TAR/FAR/abstention summaries;
* :mod:`repro.runtime.runner` — the `BatchRunner` that ties them
  together;
* :mod:`repro.runtime.persist` — the cross-process
  `PersistentGenerationCache` (content-addressed JSONL segment store,
  safe concurrent writers) that lets separate shards and re-runs reuse
  generations through the filesystem;
* :mod:`repro.runtime.sweep` — `SweepSpec` / `ShardPlan` /
  `SweepRunner` / `merge_sweep`: deterministic sharding of multi-axis
  evaluation matrices with byte-identical merged summaries;
* :mod:`repro.runtime.cli` — the ``repro-run`` and ``repro-sweep``
  console entry points.

Every path is deterministic: a batch run with ``workers=4`` produces
byte-identical aggregate metrics to the serial fallback, and a sweep
split into N shards merges byte-identically to the unsharded run,
because all randomness in the library is derived from named streams,
never from execution order or process boundaries.
"""

from repro.runtime.artifacts import (
    RunArtifact,
    link_record,
    summarize_joint,
    summarize_link,
)
from repro.runtime.cache import CacheStats, CachingLLM, GenerationCache, instance_key
from repro.runtime.persist import PersistentGenerationCache, generation_namespace
from repro.runtime.pool import BACKENDS, PROCESS, SERIAL, THREAD, WorkerPool
from repro.runtime.runner import BatchResult, BatchRunner
from repro.runtime.sweep import (
    ShardPlan,
    SweepRunner,
    SweepSpec,
    SweepUnit,
    merge_sweep,
    run_sweep,
)

__all__ = [
    "BACKENDS",
    "BatchResult",
    "BatchRunner",
    "CacheStats",
    "CachingLLM",
    "GenerationCache",
    "PROCESS",
    "PersistentGenerationCache",
    "RunArtifact",
    "SERIAL",
    "ShardPlan",
    "SweepRunner",
    "SweepSpec",
    "SweepUnit",
    "THREAD",
    "WorkerPool",
    "generation_namespace",
    "instance_key",
    "link_record",
    "merge_sweep",
    "run_sweep",
    "summarize_joint",
    "summarize_link",
]
