"""Batched evaluation runtime.

The experiment tables and figures all reduce to fanning a fitted
:class:`~repro.core.pipeline.RTSPipeline` out over a benchmark split.
This package provides the shared substrate for doing that at scale:

* :mod:`repro.runtime.pool` — one `WorkerPool` abstraction over serial,
  thread-pool and process-pool execution with order-preserving maps;
* :mod:`repro.runtime.cache` — a keyed generation cache so repeated
  ``llm.generate`` / ``teacher_forced_trace`` calls (unassisted
  baselines, joint passes, ablation sweeps) are computed once;
* :mod:`repro.runtime.artifacts` — JSONL run artifacts with resumable
  checkpoints and aggregate TAR/FAR/abstention summaries;
* :mod:`repro.runtime.runner` — the `BatchRunner` that ties them
  together;
* :mod:`repro.runtime.cli` — the ``repro-run`` console entry point.

Every path is deterministic: a batch run with ``workers=4`` produces
byte-identical aggregate metrics to the serial fallback because all
randomness in the library is derived from named streams, never from
execution order.
"""

from repro.runtime.artifacts import (
    RunArtifact,
    link_record,
    summarize_joint,
    summarize_link,
)
from repro.runtime.cache import CacheStats, CachingLLM, GenerationCache, instance_key
from repro.runtime.pool import BACKENDS, PROCESS, SERIAL, THREAD, WorkerPool
from repro.runtime.runner import BatchResult, BatchRunner

__all__ = [
    "BACKENDS",
    "BatchResult",
    "BatchRunner",
    "CacheStats",
    "CachingLLM",
    "GenerationCache",
    "PROCESS",
    "RunArtifact",
    "SERIAL",
    "THREAD",
    "WorkerPool",
    "instance_key",
    "link_record",
    "summarize_joint",
    "summarize_link",
]
