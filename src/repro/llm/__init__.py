"""The simulated transparent-box schema-linking LLM.

This package substitutes for the paper's fine-tuned Deepseek-7B (see
DESIGN.md §2): a deterministic simulator exposing exactly the interfaces
RTS consumes — subword tokenization, trie-constrained decoding, per-layer
hidden states, overconfident softmax probabilities, token-by-token
sessions supporting teacher forcing and mid-generation intervention.
"""

from repro.llm.tokenizer import EOS, SEP, tokenize_identifier, tokenize_items, detokenize
from repro.llm.trie import ItemTrie
from repro.llm.errors import ErrorEvent, ErrorModelConfig, plan_errors, error_propensity
from repro.llm.hidden import HiddenStateSynthesizer, HiddenConfig, TraceStreams
from repro.llm.model import (
    SIMULATOR_VERSION,
    GenerationSession,
    GenerationStep,
    GenerationTrace,
    LLMConfig,
    TransparentLLM,
)

__all__ = [
    "EOS",
    "SEP",
    "tokenize_identifier",
    "tokenize_items",
    "detokenize",
    "ItemTrie",
    "ErrorEvent",
    "ErrorModelConfig",
    "plan_errors",
    "error_propensity",
    "HiddenStateSynthesizer",
    "HiddenConfig",
    "TraceStreams",
    "SIMULATOR_VERSION",
    "GenerationSession",
    "GenerationStep",
    "GenerationTrace",
    "LLMConfig",
    "TransparentLLM",
]
