"""Subword tokenizer over schema identifiers.

Properties the rest of the system relies on:

* **Lossless**: ``"".join(tokenize_identifier(name)) == name`` — the
  decode step of Algorithm 2 (Table Trace Back) reconstructs item names
  by concatenation.
* **Subword granularity**: identifiers split at case/underscore
  boundaries and long word pieces are chunked, so one table name spans
  several tokens and a generation can branch *mid-name* — the regime the
  paper's branching-point machinery is designed for.
"""

from __future__ import annotations

import re
from functools import lru_cache

__all__ = ["SEP", "EOS", "MAX_PIECE", "tokenize_identifier", "tokenize_items", "detokenize"]

SEP = ","
EOS = "<eos>"
MAX_PIECE = 6

_RUNS = re.compile(r"[0-9A-Za-z]+|[^0-9A-Za-z]")
_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")


@lru_cache(maxsize=65536)
def tokenize_identifier(name: str) -> tuple[str, ...]:
    """Tokenize one identifier into subword tokens.

    A pure function of ``name``, so results are memoized: generation
    sessions re-tokenize the same schema identifiers for every plan,
    re-plan and gold annotation, and the regex split was a measurable
    slice of the symbolic phase. The returned tuple is immutable and
    safely shared.

    >>> tokenize_identifier("lapTimes")
    ('lap', 'Times')
    >>> tokenize_identifier("L_TMS")
    ('L', '_', 'TMS')
    >>> tokenize_identifier("milliseconds")
    ('millis', 'econds')
    """
    if not name:
        raise ValueError("cannot tokenize an empty identifier")
    tokens: list[str] = []
    for run in _RUNS.findall(name):
        if not run[0].isalnum():
            tokens.append(run)
            continue
        for piece in _CAMEL_BOUNDARY.split(run):
            while len(piece) > MAX_PIECE:
                tokens.append(piece[:MAX_PIECE])
                piece = piece[MAX_PIECE:]
            if piece:
                tokens.append(piece)
    return tuple(tokens)


def tokenize_items(items: "list[str] | tuple[str, ...]") -> tuple[str, ...]:
    """Token stream for an item list: items joined by SEP, ending in EOS.

    >>> tokenize_items(["races", "drivers"])
    ('races', ',', 'driver', 's', '<eos>')
    """
    tokens: list[str] = []
    for i, item in enumerate(items):
        if i:
            tokens.append(SEP)
        tokens.extend(tokenize_identifier(item))
    tokens.append(EOS)
    return tuple(tokens)


def detokenize(tokens: "list[str] | tuple[str, ...]") -> list[str]:
    """Inverse of :func:`tokenize_items` (EOS optional, trailing partial kept).

    >>> detokenize(('races', ',', 'driver', 's', '<eos>'))
    ['races', 'drivers']
    """
    items: list[str] = []
    current: list[str] = []
    for tok in tokens:
        if tok == EOS:
            break
        if tok == SEP:
            items.append("".join(current))
            current = []
        else:
            current.append(tok)
    if current:
        items.append("".join(current))
    return items
